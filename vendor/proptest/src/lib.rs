//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro over functions whose arguments are
//! drawn from integer range strategies (`lo..hi`, `lo..=hi`), the
//! `#![proptest_config(ProptestConfig { cases, .. })]` header, and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Differences from real proptest, acceptable for this workspace:
//!
//! * no shrinking — a failing case reports its inputs and panics as-is;
//! * sampling is driven by a fixed-seed deterministic generator, so runs
//!   are reproducible (case `i` of test `t` always sees the same inputs).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::RngCore;

/// Per-test configuration (`cases` is the number of sampled executions).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
    /// Unused compatibility field (real proptest: max global rejects).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A value source: anything a `proptest!` argument can be drawn from.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng as _;
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng as _;
                rng.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Fixed set of choices, sampled uniformly.
impl<T: Clone> Strategy for Vec<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        assert!(!self.is_empty(), "cannot sample from an empty choice set");
        self[rng.random_range(0..self.len())].clone()
    }
}

/// Failure value of a property body (real proptest threads this through
/// instead of panicking; the stand-in only needs the type to exist so that
/// bodies may `return Ok(())` early).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message (mirrors `proptest::test_runner`'s
    /// constructor).
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }
}

/// Runs `cases` deterministic executions of a property body.
///
/// The per-case RNG is seeded from the test name and case index, so adding
/// or removing sibling tests never changes a test's inputs.
pub fn run_property<F: FnMut(&mut StdRng)>(name: &str, config: &ProptestConfig, mut body: F) {
    use rand::SeedableRng as _;
    let name_hash = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(name_hash ^ (case as u64).wrapping_mul(0x9E37_79B9));
        body(&mut rng);
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing a `Vec` of values drawn from an element
    /// strategy, with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` whose length lies in `size` and whose elements come from
    /// `element` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let len = rng.random_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Commonly imported names.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// The property-test declaration macro (see crate docs for coverage).
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)*
                    // Result-returning wrapper so bodies may `return Ok(())`
                    // early, as under real proptest.
                    let mut __proptest_case =
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                    if let Err(e) = __proptest_case() {
                        panic!("property {} failed: {e:?}", stringify!($name));
                    }
                });
            }
        )*
    };
    // Without a config header: default configuration.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body (panics with the inputs'
/// values formatted by the caller; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        #[test]
        fn ranges_give_in_bounds_values(a in 3u32..10, b in 0usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4, "b = {b}");
        }

        #[test]
        fn multiple_functions_in_one_block(x in 1u64..100) {
            prop_assert_eq!(x.max(1), x);
            prop_assert_ne!(x, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_block(v in 0u8..255) {
            prop_assert!(v < 255);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u32> = Vec::new();
        let cfg = ProptestConfig::with_cases(10);
        crate::run_property("det", &cfg, |rng| {
            first.push(Strategy::sample(&(0u32..1000), rng));
        });
        let mut second: Vec<u32> = Vec::new();
        crate::run_property("det", &cfg, |rng| {
            second.push(Strategy::sample(&(0u32..1000), rng));
        });
        assert_eq!(first, second);
    }
}
