//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a plain
//! wall-clock sampler: each benchmark runs `sample_size` timed samples and
//! reports min / mean / max to stdout. No statistical analysis, no HTML
//! reports, no comparison to saved baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }

    /// Id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{param}", function.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark that closes over a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {}/{id}: no samples", self.name);
            return;
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "  {}/{id}: min {min:?}  mean {mean:?}  max {max:?}  ({} samples)",
            self.name,
            samples.len()
        );
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(&mut self) {}
}

/// Times closure executions, one sample per call.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` for the configured number of samples, timing each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up execution.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
