//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access and no crates cache, so this
//! workspace vendors the *exact* API surface it consumes: a seedable,
//! deterministic generator (`rngs::StdRng`), the `Rng` extension methods
//! `random_range` / `random_bool` / `random`, and `seq::SliceRandom::shuffle`.
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand_chacha`-backed `StdRng` guarantees nothing
//! about either, and all workspace users only require determinism for a
//! fixed seed, which this provides.

#![forbid(unsafe_code)]

/// Core generator trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (low, high_inclusive) = range.bounds();
        T::sample_between(self, low, high_inclusive)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.random_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types uniformly sampleable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high_inclusive]`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_inclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high_inclusive: Self,
            ) -> Self {
                assert!(low <= high_inclusive, "empty sample range");
                let span = (high_inclusive as u128)
                    .wrapping_sub(low as u128)
                    .wrapping_add(1) as u128;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                // Debiased via rejection on the top of the 64-bit space.
                let zone = u64::MAX - ((u64::MAX as u128 + 1) % span) as u64;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v as u128 % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_inclusive: Self) -> Self {
        low + (high_inclusive - low) * ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait IntoUniformRange<T> {
    /// `(low, high_inclusive)` bounds of the range.
    fn bounds(self) -> (T, T);
}

impl IntoUniformRange<usize> for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty sample range");
        (self.start, self.end - 1)
    }
}

macro_rules! impl_range_forms {
    ($($t:ty),*) => {$(
        impl IntoUniformRange<$t> for std::ops::Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty sample range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for std::ops::RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_range_forms!(u8, u16, u32, u64, i8, i16, i32, i64);

impl IntoUniformRange<f64> for std::ops::Range<f64> {
    fn bounds(self) -> (f64, f64) {
        assert!(self.start < self.end, "empty sample range");
        (self.start, self.end)
    }
}

impl IntoUniformRange<f64> for std::ops::RangeInclusive<f64> {
    fn bounds(self) -> (f64, f64) {
        (*self.start(), *self.end())
    }
}

impl IntoUniformRange<usize> for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic, seedable generator (xoshiro256++ seeded via
    /// SplitMix64). Stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom as _;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.random_range(5..=5);
            assert_eq!(w, 5);
            let x: u64 = rng.random_range(0..2);
            assert!(x < 2);
        }
    }

    #[test]
    fn bool_probabilities_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "p=0.5 gave {hits}/2000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
