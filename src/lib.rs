//! **rewire** — a from-scratch reproduction of *Rewire: Advancing CGRA
//! Mapping Through a Consolidated Routing Paradigm* (Li et al., DAC 2025).
//!
//! This facade re-exports the workspace crates so downstream users (and
//! the bundled examples/integration tests) can depend on a single crate:
//!
//! * [`arch`] — parametric CGRA architecture model,
//! * [`dfg`] — data-flow graphs, MII analysis, the kernel benchmark suite,
//! * [`mrrg`] — modulo routing resource graph, occupancy and routers,
//! * [`mappers`] — mapping state/validation and the PF* / SA baselines,
//! * [`core`] — the Rewire mapper itself,
//! * [`obs`] — zero-dependency metrics: counters, histograms, span timers,
//! * [`sim`] — cycle-accurate functional simulation and configuration
//!   generation.
//!
//! # Quickstart
//!
//! ```
//! use rewire::prelude::*;
//!
//! let cgra = presets::paper_4x4_r4();
//! let dfg = kernels::fir();
//! let outcome = RewireMapper::new().map(&dfg, &cgra, &MapLimits::fast());
//! if let Some(mapping) = &outcome.mapping {
//!     println!(
//!         "mapped {} at II {} (MII {})",
//!         dfg.name(),
//!         mapping.ii(),
//!         outcome.stats.mii
//!     );
//!     assert!(mapping.is_valid(&dfg, &cgra));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rewire_arch as arch;
pub use rewire_core as core;
pub use rewire_dfg as dfg;
pub use rewire_mappers as mappers;
pub use rewire_mrrg as mrrg;
pub use rewire_obs as obs;
pub use rewire_sim as sim;

/// The items most programs need, under one import.
pub mod prelude {
    pub use rewire_arch::{presets, Cgra, CgraBuilder, OpKind, PeId};
    pub use rewire_core::{RewireConfig, RewireMapper, RewireStats};
    pub use rewire_dfg::{kernels, Dfg, NodeId};
    pub use rewire_mappers::engine::{
        EventSink, JsonlTrace, MapEvent, MetricsSink, Silent, StderrProgress,
    };
    pub use rewire_mappers::{
        AttemptVerdict, ExactSatMapper, MapLimits, MapOutcome, MapStats, Mapper, Mapping,
        PathFinderMapper, SaMapper,
    };
    pub use rewire_mrrg::{FanoutMode, Mrrg, Occupancy, Route, Router, RouterMode, UnitCost};
    pub use rewire_sim::{verify_semantics, Inputs};
}
