//! `rewire-map` — command-line CGRA mapping driver.
//!
//! Maps a bundled kernel (or a `.dfg` text file) onto a preset or custom
//! fabric with any of the three mappers, then optionally renders the
//! per-slot grid, dumps the configuration words, writes a DOT file, and
//! verifies the mapping semantically in the functional simulator.
//!
//! ```text
//! rewire-map --kernel gesummv --arch 4x4r4 --mapper rewire --show-grid --verify 8
//! rewire-map --dfg my_kernel.dfg --rows 6 --cols 6 --regs 2 --mem-cols 0 --banks 4
//! rewire-map --artifact fuzz/corpus/seed0004-pass.dfg --flight flight.json
//! ```
//!
//! Exit status: 0 = mapped, 1 = no mapping within budget, 2 = usage error.

use rewire::prelude::*;
use rewire::sim::config::Configuration;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    kernel: Option<String>,
    dfg_path: Option<String>,
    artifact: Option<String>,
    arch: Option<String>,
    rows: u16,
    cols: u16,
    regs: u8,
    banks: u16,
    mem_cols: Vec<u16>,
    torus: bool,
    mapper: String,
    budget_ms: u64,
    max_ii: Option<u32>,
    seed: Option<u64>,
    show_grid: bool,
    show_config: bool,
    dot: Option<String>,
    verify: u32,
    trace: Option<String>,
    metrics: Option<String>,
    flight: Option<String>,
    chrome_trace: Option<String>,
    progress: bool,
    router: RouterMode,
    fanout: FanoutMode,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut a = Args {
            kernel: None,
            dfg_path: None,
            artifact: None,
            arch: None,
            rows: 4,
            cols: 4,
            regs: 4,
            banks: 2,
            mem_cols: vec![0],
            torus: false,
            mapper: "rewire".into(),
            budget_ms: 2000,
            max_ii: None,
            seed: None,
            show_grid: false,
            show_config: false,
            dot: None,
            verify: 0,
            trace: None,
            metrics: None,
            flight: None,
            chrome_trace: None,
            progress: false,
            router: rewire::mrrg::default_router_mode(),
            fanout: rewire::mrrg::default_fanout_mode(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--kernel" => a.kernel = Some(val("--kernel")?),
                "--dfg" => a.dfg_path = Some(val("--dfg")?),
                "--artifact" => a.artifact = Some(val("--artifact")?),
                "--arch" => a.arch = Some(val("--arch")?),
                "--rows" => a.rows = val("--rows")?.parse().map_err(|e| format!("--rows: {e}"))?,
                "--cols" => a.cols = val("--cols")?.parse().map_err(|e| format!("--cols: {e}"))?,
                "--regs" => a.regs = val("--regs")?.parse().map_err(|e| format!("--regs: {e}"))?,
                "--banks" => {
                    a.banks = val("--banks")?
                        .parse()
                        .map_err(|e| format!("--banks: {e}"))?
                }
                "--mem-cols" => {
                    a.mem_cols = val("--mem-cols")?
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("--mem-cols: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--torus" => a.torus = true,
                "--mapper" => a.mapper = val("--mapper")?,
                "--budget-ms" => {
                    a.budget_ms = val("--budget-ms")?
                        .parse()
                        .map_err(|e| format!("--budget-ms: {e}"))?;
                }
                "--max-ii" => {
                    a.max_ii = Some(
                        val("--max-ii")?
                            .parse()
                            .map_err(|e| format!("--max-ii: {e}"))?,
                    )
                }
                "--seed" => {
                    a.seed = Some(val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?)
                }
                "--show-grid" => a.show_grid = true,
                "--show-config" => a.show_config = true,
                "--dot" => a.dot = Some(val("--dot")?),
                "--verify" => {
                    a.verify = val("--verify")?
                        .parse()
                        .map_err(|e| format!("--verify: {e}"))?
                }
                "--trace" => a.trace = Some(val("--trace")?),
                "--metrics" => a.metrics = Some(val("--metrics")?),
                "--flight" => a.flight = Some(val("--flight")?),
                "--chrome-trace" => a.chrome_trace = Some(val("--chrome-trace")?),
                "--progress" => a.progress = true,
                "--router" => match val("--router")?.as_str() {
                    "dense" => a.router = RouterMode::Dense,
                    "pruned" => a.router = RouterMode::Pruned,
                    "tree" => a.fanout = FanoutMode::Tree,
                    "per-edge" => a.fanout = FanoutMode::PerEdge,
                    other => {
                        return Err(format!("--router: `{other}` (dense|pruned|tree|per-edge)"))
                    }
                },
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
            }
        }
        if a.kernel.is_none() && a.dfg_path.is_none() && a.artifact.is_none() {
            return Err(format!(
                "one of --kernel, --dfg or --artifact is required\n{USAGE}"
            ));
        }
        Ok(a)
    }
}

const USAGE: &str = "\
usage: rewire-map (--kernel <name> | --dfg <file> | --artifact <file>) [options]
  --artifact <file>                load a rewire-fuzz corpus artifact (fabric, kernel,
                                   seed and II ceiling all come from the file; --seed,
                                   --max-ii and fabric flags still override)
  --arch 4x4r4|4x4r2|4x4r1|8x8r4   preset fabric (default: custom/4x4r4)
  --rows R --cols C --regs N       custom fabric dimensions
  --banks B --mem-cols 0,3         memory banks and memory columns
  --torus                          wrap-around links
  --mapper rewire|pf|sa|exact      mapper (default rewire; exact = SAT backend with
                                   per-II optimality/infeasibility proofs)
  --budget-ms N                    per-II wall-clock budget (default 2000)
  --max-ii N                       II ceiling (default 20, or the artifact's)
  --seed N                         RNG seed
  --show-grid                      render the per-slot placement grid
  --show-config                    dump the per-slot configuration words
  --dot <file>                     write the DFG in Graphviz DOT
  --verify N                       simulate N iterations and check semantics
  --trace <file>                   write a JSONL MapEvent trace of the run
  --metrics <file>                 write a metrics snapshot (counters, span timers) as JSON
  --flight <file>                  write the flight-recorder decision log as JSON
  --chrome-trace <file>            write a Chrome trace_event JSON (load in Perfetto)
  --progress                       print per-II mapping progress to stderr
  --router dense|pruned            router sweep mode (default pruned; same results, A/B the work)
  --router tree|per-edge           fan-out mode (default tree: multi-sink signals share one
                                   route tree; per-edge is the independent-path baseline);
                                   repeatable, orthogonal to dense|pruned";

fn build_cgra(a: &Args) -> Result<Cgra, String> {
    if let Some(arch) = &a.arch {
        return match arch.as_str() {
            "4x4r4" => Ok(presets::paper_4x4_r4()),
            "4x4r2" => Ok(presets::paper_4x4_r2()),
            "4x4r1" => Ok(presets::paper_4x4_r1()),
            "8x8r4" => Ok(presets::paper_8x8_r4()),
            other => Err(format!("unknown --arch `{other}`")),
        };
    }
    CgraBuilder::new(a.rows, a.cols)
        .regs_per_pe(a.regs)
        .memory_banks(a.banks)
        .memory_columns(a.mem_cols.iter().copied())
        .torus(a.torus)
        .build()
        .map_err(|e| e.to_string())
}

fn load_dfg(a: &Args) -> Result<Dfg, String> {
    if let Some(name) = &a.kernel {
        return kernels::by_name(name).ok_or_else(|| format!("unknown kernel `{name}`"));
    }
    let path = a.dfg_path.as_ref().expect("checked in parse");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Dfg::from_text(&text).map_err(|e| e.to_string())
}

/// Loads a fuzz-corpus artifact: the fabric, kernel, seed, and II ceiling
/// all come from the file unless overridden on the command line. Fabric
/// flags (`--arch`/`--rows`/...) win over the artifact's spec so a hard
/// case can be replayed on a different fabric.
fn load_artifact(a: &mut Args) -> Result<Option<(Cgra, Dfg)>, String> {
    let Some(path) = a.artifact.clone() else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let artifact = rewire_fuzz::Artifact::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
    if a.max_ii.is_none() {
        a.max_ii = Some(artifact.max_ii);
    }
    if a.seed.is_none() {
        a.seed = Some(artifact.seed);
    }
    if !artifact.note.is_empty() {
        println!("artifact: {} ({})", path, artifact.note);
    }
    let cgra = if a.arch.is_some() {
        build_cgra(a)?
    } else {
        artifact.spec.build().map_err(|e| format!("{path}: {e}"))?
    };
    Ok(Some((cgra, artifact.dfg)))
}

fn main() -> ExitCode {
    let mut args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    rewire::mrrg::set_default_router_mode(args.router);
    rewire::mrrg::set_default_fanout_mode(args.fanout);
    let loaded = match load_artifact(&mut args) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let args = args;
    let (cgra, dfg) = match loaded {
        Some(pair) => pair,
        None => match (build_cgra(&args), load_dfg(&args)) {
            (Ok(c), Ok(d)) => (c, d),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
    };

    println!("fabric:  {cgra}");
    println!("kernel:  {dfg}");
    match dfg.mii(&cgra) {
        Some(mii) => println!(
            "MII:     {mii} (RecMII {}, ResMII {:?})",
            dfg.rec_mii(),
            dfg.res_mii(&cgra)
        ),
        None => {
            eprintln!("this kernel can never map on this fabric (missing memory capacity)");
            return ExitCode::from(1);
        }
    }
    if let Some(path) = &args.dot {
        if let Err(e) = std::fs::write(path, dfg.to_dot()) {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
        println!("DOT written to {path}");
    }

    let mapper: Box<dyn Mapper> = match args.mapper.as_str() {
        "rewire" => Box::new(RewireMapper::new()),
        "pf" => Box::new(PathFinderMapper::new()),
        "sa" => Box::new(SaMapper::new()),
        "exact" => Box::new(ExactSatMapper::new()),
        other => {
            eprintln!("unknown --mapper `{other}` (rewire|pf|sa|exact)");
            return ExitCode::from(2);
        }
    };
    let seed = args.seed.unwrap_or(0xC0FFEE);
    let limits = MapLimits::fast()
        .with_ii_time_budget(Duration::from_millis(args.budget_ms))
        .with_max_ii(args.max_ii.unwrap_or(20))
        .with_seed(seed);

    // The forensics collectors are process-global and off by default;
    // asking for either output file switches them on for this run.
    if args.flight.is_some() || args.chrome_trace.is_some() {
        rewire::obs::flight().enable(0);
    }
    if args.chrome_trace.is_some() {
        rewire::obs::chrome().enable(0);
    }

    // Compose the requested sinks: trace and progress can run together.
    let mut sinks = rewire::mappers::engine::Fanout::default();
    if let Some(path) = &args.trace {
        match JsonlTrace::create(path) {
            Ok(sink) => sinks.0.push(Box::new(sink)),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if args.metrics.is_some() {
        sinks.0.push(Box::new(MetricsSink::new()));
    }
    if args.progress {
        sinks.0.push(Box::new(StderrProgress));
    }

    let outcome = mapper.map_with_events(&dfg, &cgra, &limits, &mut sinks);
    sinks.finish(); // flush the trace file before reporting
    if let Some(path) = &args.trace {
        println!("trace written to {path}");
    }
    if let Some(path) = &args.metrics {
        let mut json = rewire::obs::metrics().snapshot().to_json();
        json.push('\n');
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
        println!("metrics written to {path}");
    }
    if args.flight.is_some() || args.chrome_trace.is_some() {
        let flight_log = rewire::obs::flight().snapshot();
        if let Some(path) = &args.flight {
            let mut json = flight_log.to_json();
            json.push('\n');
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
            println!("flight log written to {path}");
        }
        if let Some(path) = &args.chrome_trace {
            let mut json = rewire::obs::chrome().export_json(Some(&flight_log));
            json.push('\n');
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
            println!("chrome trace written to {path}");
        }
    }
    // The one-line summary below is the same `MapStats` Display that
    // `rewire-report` prints per run, so the two tools read identically.
    let report_verdicts = |stats: &MapStats| {
        if !stats.verdicts.is_empty() {
            let line: Vec<String> = stats
                .verdicts
                .iter()
                .map(|(ii, v)| format!("II {ii}: {}", v.label()))
                .collect();
            println!("verdicts: {}", line.join(", "));
            if stats.proven_optimal() {
                println!("achieved II is PROVEN optimal (every lower II refuted by SAT)");
            }
        }
    };
    let Some(mapping) = &outcome.mapping else {
        eprintln!("{}", outcome.stats);
        report_verdicts(&outcome.stats);
        return ExitCode::from(1);
    };
    println!("{}", outcome.stats);
    report_verdicts(&outcome.stats);
    println!(
        "throughput 1/{} iter/cycle, pipeline fill {} cycles, 1000 iterations take {} cycles",
        mapping.ii(),
        mapping.schedule_length(),
        mapping.cycles_for(1000)
    );
    {
        let cfg = Configuration::from_mapping(&dfg, mapping);
        let util = rewire::sim::Utilization::of(&cfg, &cgra);
        println!("utilization: {util}");
    }

    if args.show_grid {
        println!("\n{}", mapping.render_grid(&dfg, &cgra));
    }
    if args.show_config {
        let cfg = Configuration::from_mapping(&dfg, mapping);
        println!("\n{cfg}\n{}", cfg.render(&dfg, &cgra));
    }
    if args.verify > 0 {
        match verify_semantics(&dfg, &cgra, mapping, &Inputs::new(seed), args.verify) {
            Ok(()) => println!("semantics verified over {} iterations", args.verify),
            Err(e) => {
                eprintln!("SEMANTIC DIVERGENCE: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
