//! End-to-end test on a diagonal-interconnect fabric: mapping and
//! semantics hold on richer NoCs too.

use rewire::prelude::*;
use std::time::Duration;

#[test]
fn kernels_map_and_execute_on_a_diagonal_fabric() {
    let cgra = CgraBuilder::new(4, 4)
        .regs_per_pe(2)
        .memory_banks(2)
        .memory_columns([0])
        .diagonals(true)
        .build()
        .unwrap();
    let dfg = kernels::fir();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let outcome = PathFinderMapper::new().map(&dfg, &cgra, &limits);
    let mapping = outcome.mapping.expect("fir maps on the richer fabric");
    assert!(mapping.is_valid(&dfg, &cgra));
    verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(3), 5).expect("semantics hold");
}

#[test]
fn diagonals_never_hurt_achievable_ii() {
    let plain = presets::paper_4x4_r2();
    let rich = CgraBuilder::new(4, 4)
        .regs_per_pe(2)
        .memory_banks(2)
        .memory_columns([0])
        .diagonals(true)
        .build()
        .unwrap();
    let dfg = kernels::atax();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let a = PathFinderMapper::new().map(&dfg, &plain, &limits);
    let b = PathFinderMapper::new().map(&dfg, &rich, &limits);
    if let (Some(ia), Some(ib)) = (a.stats.achieved_ii, b.stats.achieved_ii) {
        assert!(
            ib <= ia + 1,
            "richer NoC should not map much worse: {ib} vs {ia}"
        );
    }
}
