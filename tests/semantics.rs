//! Golden-model integration tests: every mapping any mapper produces must
//! compute exactly what the DFG computes, cycle by cycle.

use rewire::prelude::*;
use rewire::sim::config::Configuration;
use std::time::Duration;

fn limits(ms: u64) -> MapLimits {
    MapLimits::fast().with_ii_time_budget(Duration::from_millis(ms))
}

#[test]
fn rewire_mappings_execute_correctly() {
    let cgra = presets::paper_4x4_r4();
    for name in ["fir", "atax", "bicg", "gesummv", "viterbi", "jacobi2d"] {
        let dfg = kernels::by_name(name).unwrap();
        let Some(mapping) = RewireMapper::new().map(&dfg, &cgra, &limits(2500)).mapping else {
            continue;
        };
        verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(7), 6)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn baseline_mappings_execute_correctly() {
    let cgra = presets::paper_4x4_r2();
    for name in ["fir", "atax", "mvt"] {
        let dfg = kernels::by_name(name).unwrap();
        for mapper in [&PathFinderMapper::new() as &dyn Mapper, &SaMapper::new()] {
            let Some(mapping) = mapper.map(&dfg, &cgra, &limits(2500)).mapping else {
                continue;
            };
            verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(13), 5)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", mapper.name()));
        }
    }
}

#[test]
fn semantics_hold_across_input_seeds() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::fir();
    let mapping = RewireMapper::new()
        .map(&dfg, &cgra, &limits(2000))
        .mapping
        .expect("fir maps");
    for seed in 0..8 {
        verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(seed), 4)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn configuration_covers_the_whole_mapping() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::atax();
    let mapping = RewireMapper::new()
        .map(&dfg, &cgra, &limits(2000))
        .mapping
        .expect("atax maps");
    let cfg = Configuration::from_mapping(&dfg, &mapping);
    let (fu, links, regs) = cfg.utilization();
    assert_eq!(fu, dfg.num_nodes());
    assert!(links + regs > 0);
    assert_eq!(cfg.ii(), mapping.ii());
}
