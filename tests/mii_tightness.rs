//! Golden-snapshot gate for the MII-tightness study (EXPERIMENTS.md §
//! "MII tightness"): the exact SAT backend's verdict table — proven
//! minimal II, refuted IIs, capped-heuristic IIs — over the 30-kernel
//! suite on the fig5 4×4 fabrics, pinned as a checked-in text snapshot.
//!
//! Any change to the CNF encoding, the CDCL core, or the heuristics
//! that shifts a verdict or an II fails this test with a line-level
//! diff. Intentional changes are blessed with:
//!
//! ```text
//! REWIRE_BLESS=1 cargo test --release --test mii_tightness
//! ```
//!
//! and the regenerated `tests/golden/mii_tightness.txt` is reviewed
//! like code (a flipped `*`/`?` marker is a change in what the backend
//! claims to have *proven*). Release-only: a triple-fabric SAT sweep is
//! impractical under the debug profile, like the mapping-heavy release
//! suites recorded in EXPERIMENTS.md.

use rewire_bench::{mii_tightness_rows, render_snapshot};
use std::fmt::Write as _;
use std::path::PathBuf;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/mii_tightness.txt")
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: the SAT sweep over three fabrics is impractical under the debug profile"
)]
fn study_matches_the_golden_snapshot() {
    let rows = mii_tightness_rows(|_| {});

    // Invariants the snapshot's shape must always satisfy, bless or not:
    // an optimality claim means every II from MII up to the achieved II
    // was refuted, and no heuristic may beat a proven floor.
    for r in &rows {
        assert!(
            r.exact_ii.is_none() || r.exact_ii >= Some(r.mii),
            "{}/{}: exact below MII",
            r.fabric,
            r.kernel
        );
        if r.exact_optimal {
            let ii = r.exact_ii.unwrap();
            let expected: Vec<u32> = (r.mii..ii).collect();
            assert_eq!(
                r.refuted, expected,
                "{}/{}: optimality without a contiguous refutation trail",
                r.fabric, r.kernel
            );
        }
        for (label, ii) in &r.heuristics {
            if let (Some(h), Some(floor)) = (ii, r.exact_ii) {
                if r.exact_optimal {
                    assert!(
                        *h >= floor,
                        "{}/{}: {label} beats the proven minimal II",
                        r.fabric,
                        r.kernel
                    );
                }
            }
        }
    }
    // The acceptance bar: on the paper's 4x4 fabric the backend decides
    // (model or refutation trail) at least 20 of the 30 kernels.
    let decided = rows
        .iter()
        .filter(|r| r.fabric == "4x4 4reg")
        .filter(|r| r.exact_ii.is_some() || !r.refuted.is_empty())
        .count();
    assert!(
        decided >= 20,
        "exact backend decided only {decided} kernels on 4x4 4reg"
    );

    let current = render_snapshot(&rows);
    let path = snapshot_path();
    if std::env::var_os("REWIRE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &current).unwrap();
        eprintln!(
            "blessed {} ({} lines)",
            path.display(),
            current.lines().count()
        );
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run REWIRE_BLESS=1 cargo test --release --test mii_tightness",
            path.display()
        )
    });
    if golden == current {
        return;
    }
    let mut drifted = String::new();
    for (g, c) in golden.lines().zip(current.lines()) {
        if g != c {
            writeln!(drifted, "  -{g}\n  +{c}").unwrap();
        }
    }
    let (gn, cn) = (golden.lines().count(), current.lines().count());
    if gn != cn {
        writeln!(drifted, "  (line count {gn} -> {cn})").unwrap();
    }
    panic!(
        "the MII-tightness study drifted from {}:\n{drifted}\
         if intentional, re-bless with REWIRE_BLESS=1 cargo test --release --test mii_tightness",
        snapshot_path().display()
    );
}
