//! The shared `Mapper` conformance suite: every mapper in the workspace —
//! Rewire, PF*, SA, and the exact SAT backend — must satisfy the
//! documented contract of `Mapper::map` / `map_with_events`, now that all
//! of them route through the shared `IiSearch` engine.
//!
//! Audited invariants:
//!
//! * a returned mapping validates against the DFG/CGRA and its II equals
//!   `stats.achieved_ii`,
//! * budget exhaustion returns `None` with still-populated stats,
//! * identical seed ⇒ identical outcome (down to the exact placement),
//! * the event stream is well-formed: balanced `IiStarted` /
//!   `AttemptFinished` pairs and exactly one terminal event.

use rewire::prelude::*;
use rewire_mappers::engine::{EventSink, GiveUpReason, MapEvent, RunMeta};
use std::time::Duration;

/// The heuristic mappers of the evaluation plus the exact SAT backend,
/// freshly built per call. The exact backend must honor the same engine
/// contract as the heuristics — same event shapes, same give-up paths.
fn mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(RewireMapper::new()),
        Box::new(PathFinderMapper::new()),
        Box::new(SaMapper::new()),
        Box::new(ExactSatMapper::new()),
    ]
}

/// A small kernel every mapper handles quickly at its first feasible II.
fn small_kernel() -> Dfg {
    let mut dfg = Dfg::new("conf-chain");
    let mut prev = dfg.add_node("ld", OpKind::Load);
    for i in 0..5 {
        let n = dfg.add_node(format!("a{i}"), OpKind::Add);
        dfg.add_edge(prev, n, 0).unwrap();
        prev = n;
    }
    dfg
}

/// Full placement fingerprint for byte-identical comparisons.
fn placements(dfg: &Dfg, mapping: &Mapping) -> Vec<Option<(PeId, u32)>> {
    dfg.node_ids().map(|n| mapping.placement(n)).collect()
}

#[derive(Default)]
struct Recorder(Vec<MapEvent>);

impl EventSink for Recorder {
    fn emit(&mut self, _meta: &RunMeta<'_>, event: &MapEvent) {
        self.0.push(event.clone());
    }
}

#[test]
fn returned_mappings_validate_and_match_achieved_ii() {
    let cgra = presets::paper_4x4_r4();
    let dfg = small_kernel();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(30));
    for mapper in mappers() {
        let out = mapper.map(&dfg, &cgra, &limits);
        let m = out
            .mapping
            .unwrap_or_else(|| panic!("{} maps the conformance chain", mapper.name()));
        assert!(m.is_valid(&dfg, &cgra), "{}", mapper.name());
        assert_eq!(
            Some(m.ii()),
            out.stats.achieved_ii,
            "{}: mapping II must equal stats.achieved_ii",
            mapper.name()
        );
        assert!(out.stats.achieved_ii.unwrap() >= out.stats.mii);
        assert!(out.stats.iis_explored >= 1);
        assert!(out.stats.elapsed > Duration::ZERO);
    }
}

#[test]
fn exhausted_total_budget_returns_none_with_populated_stats() {
    let cgra = presets::paper_4x4_r4();
    let dfg = small_kernel();
    // A zero total budget deterministically exhausts before the first II.
    let limits = MapLimits::fast().with_total_time_budget(Duration::ZERO);
    for mapper in mappers() {
        let mut recorder = Recorder::default();
        let out = mapper.map_with_events(&dfg, &cgra, &limits, &mut recorder);
        assert!(out.mapping.is_none(), "{}", mapper.name());
        assert_eq!(out.stats.mapper, mapper.name());
        assert_eq!(out.stats.kernel, dfg.name());
        assert!(out.stats.mii >= 1, "{}: MII still computed", mapper.name());
        assert_eq!(out.stats.achieved_ii, None);
        assert_eq!(out.stats.iis_explored, 0);
        assert_eq!(
            recorder.0,
            vec![MapEvent::GaveUp {
                reason: GiveUpReason::TotalBudget,
                iis_explored: 0,
                elapsed_us: match &recorder.0[..] {
                    [MapEvent::GaveUp { elapsed_us, .. }] => *elapsed_us,
                    other => panic!("{}: expected a lone GaveUp, got {other:?}", mapper.name()),
                },
            }],
            "{}",
            mapper.name()
        );
    }
}

#[test]
fn exhausted_max_ii_returns_none_with_populated_stats() {
    // An accumulator loop (RecMII 2) cannot map at II 1, so capping the
    // search at max_ii = 1 exhausts the sweep without any timing effects.
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("acc");
    let phi = dfg.add_node("phi", OpKind::Phi);
    let c = dfg.add_node("c", OpKind::Const);
    let add = dfg.add_node("add", OpKind::Add);
    dfg.add_edge(phi, add, 0).unwrap();
    dfg.add_edge(c, add, 0).unwrap();
    dfg.add_edge(add, phi, 1).unwrap();
    let mii = dfg.mii(&cgra).unwrap();
    assert!(mii >= 2, "accumulator RecMII");
    let limits = MapLimits::fast().with_max_ii(1);
    for mapper in mappers() {
        let out = mapper.map(&dfg, &cgra, &limits);
        assert!(out.mapping.is_none(), "{}", mapper.name());
        assert_eq!(out.stats.mii, mii, "{}", mapper.name());
        assert_eq!(out.stats.achieved_ii, None);
        assert_eq!(
            out.stats.iis_explored,
            0,
            "{}: mii > max_ii explores nothing",
            mapper.name()
        );
    }
}

#[test]
fn identical_seed_gives_identical_outcome() {
    let cgra = presets::paper_4x4_r4();
    let dfg = small_kernel();
    // A generous per-II budget keeps the deterministic attempt caps (not
    // the wall-clock deadline) binding — the precondition for determinism.
    let limits = MapLimits::fast()
        .with_seed(0xD15EA5E)
        .with_ii_time_budget(Duration::from_secs(60));
    for mapper in mappers() {
        let a = mapper.map(&dfg, &cgra, &limits);
        let b = mapper.map(&dfg, &cgra, &limits);
        assert_eq!(
            a.stats.achieved_ii,
            b.stats.achieved_ii,
            "{}",
            mapper.name()
        );
        assert_eq!(
            a.stats.iis_explored,
            b.stats.iis_explored,
            "{}",
            mapper.name()
        );
        assert_eq!(
            a.stats.remap_iterations,
            b.stats.remap_iterations,
            "{}",
            mapper.name()
        );
        let (ma, mb) = (a.mapping.unwrap(), b.mapping.unwrap());
        assert_eq!(
            placements(&dfg, &ma),
            placements(&dfg, &mb),
            "{}: identical seeds must reproduce the exact placement",
            mapper.name()
        );
    }
}

#[test]
fn event_stream_is_well_formed() {
    let cgra = presets::paper_4x4_r4();
    let dfg = small_kernel();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(30));
    for mapper in mappers() {
        let mut recorder = Recorder::default();
        let out = mapper.map_with_events(&dfg, &cgra, &limits, &mut recorder);
        assert!(out.mapping.is_some(), "{}", mapper.name());
        let events = &recorder.0;
        let starts = events
            .iter()
            .filter(|e| matches!(e, MapEvent::IiStarted { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, MapEvent::AttemptFinished { .. }))
            .count();
        assert_eq!(
            starts,
            finishes,
            "{}: balanced attempt events",
            mapper.name()
        );
        assert_eq!(
            starts as u32,
            out.stats.iis_explored,
            "{}: one IiStarted per explored II",
            mapper.name()
        );
        let terminals = events
            .iter()
            .filter(|e| matches!(e, MapEvent::Mapped { .. } | MapEvent::GaveUp { .. }))
            .count();
        assert_eq!(
            terminals,
            1,
            "{}: exactly one terminal event",
            mapper.name()
        );
        match events.last() {
            Some(MapEvent::Mapped {
                ii, iis_explored, ..
            }) => {
                assert_eq!(Some(*ii), out.stats.achieved_ii, "{}", mapper.name());
                assert_eq!(*iis_explored, out.stats.iis_explored, "{}", mapper.name());
            }
            other => panic!("{}: expected Mapped last, got {other:?}", mapper.name()),
        }
        // The last AttemptFinished must be the successful one.
        match events
            .iter()
            .rev()
            .find(|e| matches!(e, MapEvent::AttemptFinished { .. }))
        {
            Some(MapEvent::AttemptFinished {
                routed, overuse, ..
            }) => {
                assert!(*routed, "{}", mapper.name());
                assert_eq!(*overuse, 0, "{}: success carries no overuse", mapper.name());
            }
            _ => unreachable!(),
        }
    }
}
