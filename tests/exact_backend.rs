//! Encoder soundness for the exact SAT backend.
//!
//! Two directions, mirroring the two things a CNF encoding can get
//! wrong:
//!
//! * **SAT side** — every model the backend decodes on the bundled
//!   kernel sweep must survive `Mapping::validate` (structural) *and*
//!   `verify_semantics` (golden-model execution). A satisfying
//!   assignment that decodes into a mapping computing the wrong values
//!   would mean the clauses under-constrain the hardware.
//! * **UNSAT side** — every `InfeasibleAtII` verdict is cross-checked
//!   differentially: no heuristic mapper, and on small graphs not even
//!   the exhaustive enumerator, may ever produce a mapping at an II the
//!   backend proved infeasible. A false UNSAT would mean the clauses
//!   over-constrain the hardware.
//!
//! The sweep runs with a deliberately small conflict budget so hard
//! instances degrade to `Unknown` (which claims nothing) instead of
//! stalling a debug CI run; the bench-side MII-tightness study is where
//! the full-budget sweep lives.

use rewire::prelude::*;
use rewire_mappers::ExhaustiveMapper;
use std::time::Duration;

/// Conflict budget for the kernel sweep: small enough that pigeonhole
/// instances bail to `Unknown` quickly in debug builds, large enough
/// that most of the suite still resolves (the release-mode study uses
/// the full default budget).
const SWEEP_CONFLICTS: u64 = 20_000;

fn sweep_limits() -> MapLimits {
    // Wall clock must not bind before the conflict budget, or verdicts
    // would depend on machine speed.
    MapLimits::fast()
        .with_ii_time_budget(Duration::from_secs(120))
        .with_max_ii(8)
}

/// Debug builds sweep a deterministic slice of the suite (every fifth
/// kernel) so tier-1 `cargo test` stays fast; the release run in CI's
/// exact-backend step covers all 30 kernels and enforces the
/// paper-level resolution floor.
fn sweep_kernels() -> Vec<(&'static str, Dfg)> {
    let all = kernels::all();
    if cfg!(debug_assertions) {
        all.into_iter().step_by(5).collect()
    } else {
        all
    }
}

/// Minimum number of kernels the backend must map outright at sweep
/// budgets — soundness without usefulness would be vacuous.
fn resolution_floor() -> usize {
    if cfg!(debug_assertions) {
        3
    } else {
        20
    }
}

/// Heuristic mappers used for the differential infeasibility check.
fn heuristics() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(RewireMapper::new()),
        Box::new(PathFinderMapper::new()),
        Box::new(SaMapper::new()),
    ]
}

/// SAT direction: every mapping decoded from a model on the kernel
/// sweep validates and executes identically to the reference
/// interpreter. UNSAT direction: every infeasibility proof collected on
/// the way is re-attacked by all three heuristics pinned to that II.
#[test]
fn kernel_sweep_models_decode_sound_and_unsat_is_differential() {
    let cgra = presets::paper_4x4_r4();
    let limits = sweep_limits();
    let mut resolved = 0usize;
    let mut proofs: Vec<(Dfg, u32)> = Vec::new();
    for (name, dfg) in sweep_kernels() {
        let mapper = ExactSatMapper::new().with_conflict_budget(SWEEP_CONFLICTS);
        let out = mapper.map(&dfg, &cgra, &limits);
        if let Some(m) = &out.mapping {
            assert!(
                m.validate(&dfg, &cgra).is_ok(),
                "{name}: decoded model fails structural validation"
            );
            verify_semantics(&dfg, &cgra, m, &Inputs::new(0xE5AC7), 6).unwrap_or_else(|e| {
                panic!("{name}: decoded model diverges from the reference interpreter: {e}")
            });
            assert_eq!(Some(m.ii()), out.stats.achieved_ii, "{name}");
            resolved += 1;
        }
        for ii in out.stats.proven_infeasible_iis() {
            proofs.push((dfg.clone(), ii));
        }
    }
    // The backend must stay useful at sweep budgets, not merely sound.
    assert!(
        resolved >= resolution_floor(),
        "exact backend mapped only {resolved} kernels on the 4x4 sweep"
    );
    for (dfg, ii) in proofs {
        let capped = MapLimits::fast().with_max_ii(ii);
        for h in heuristics() {
            let out = h.map(&dfg, &cgra, &capped);
            assert!(
                out.mapping.is_none(),
                "{}: {} maps {} at II {ii}, which the SAT backend proved infeasible",
                dfg.name(),
                h.name(),
                dfg.name()
            );
        }
    }
}

/// A family of small graph/fabric pairs where both the SAT backend and
/// the exhaustive enumerator are complete, so their answers must agree
/// exactly: same achieved II, and every SAT infeasibility proof matched
/// by an exhaustive failure at that II.
#[test]
fn small_graphs_agree_with_the_exhaustive_enumerator() {
    let mut cases: Vec<(&'static str, Dfg, Cgra)> = Vec::new();

    // Chains of growing length on a 1x2 sliver: FU pressure forces the
    // II up as the chain no longer fits the two modulo slots.
    for n in [2usize, 3, 4, 5] {
        let mut dfg = Dfg::new(format!("chain{n}"));
        let mut prev = dfg.add_node("n0", OpKind::Add);
        for i in 1..n {
            let next = dfg.add_node(format!("n{i}"), OpKind::Add);
            dfg.add_edge(prev, next, 0).unwrap();
            prev = next;
        }
        cases.push(("sliver", dfg, CgraBuilder::new(1, 2).build().unwrap()));
    }

    // The island star: a severed 2x2 makes II 1 a pigeonhole conflict.
    let mut star = Dfg::new("star3");
    let hub = star.add_node("hub", OpKind::Add);
    for i in 0..2 {
        let leaf = star.add_node(format!("l{i}"), OpKind::Add);
        star.add_edge(hub, leaf, 0).unwrap();
    }
    cases.push((
        "island",
        star,
        CgraBuilder::new(2, 2).cut_row(1).build().unwrap(),
    ));

    // The accumulator recurrence: RecMII 2, optimal at its MII.
    let mut acc = Dfg::new("acc");
    let phi = acc.add_node("phi", OpKind::Phi);
    let c = acc.add_node("c", OpKind::Const);
    let add = acc.add_node("add", OpKind::Add);
    acc.add_edge(phi, add, 0).unwrap();
    acc.add_edge(c, add, 0).unwrap();
    acc.add_edge(add, phi, 1).unwrap();
    cases.push(("acc", acc, CgraBuilder::new(2, 2).build().unwrap()));

    let limits = MapLimits::fast()
        .with_ii_time_budget(Duration::from_secs(60))
        .with_max_ii(8);
    for (fabric, dfg, cgra) in cases {
        let exact = ExactSatMapper::new().map(&dfg, &cgra, &limits);
        let brute = ExhaustiveMapper::new().map(&dfg, &cgra, &limits);
        assert_eq!(
            exact.stats.achieved_ii,
            brute.stats.achieved_ii,
            "{fabric}/{}: exact and exhaustive disagree on the minimal II",
            dfg.name()
        );
        if exact.stats.achieved_ii.is_some() {
            assert!(
                exact.stats.proven_optimal(),
                "{fabric}/{}: complete run must carry an optimality verdict",
                dfg.name()
            );
        }
        for ii in exact.stats.proven_infeasible_iis() {
            let pinned = limits.with_max_ii(ii);
            let at_ii = ExhaustiveMapper::new().map(&dfg, &cgra, &pinned);
            assert!(
                at_ii.mapping.is_none(),
                "{fabric}/{}: exhaustive maps at II {ii} despite a SAT infeasibility proof",
                dfg.name()
            );
        }
    }
}

/// Budget truncation must degrade monotonically: a tiny conflict budget
/// may lose verdicts (`Unknown`) and may lose mappings, but any mapping
/// it does return still validates, still executes correctly, and never
/// undercuts the II the full-budget run proved minimal.
#[test]
fn truncated_budgets_never_flip_verdicts() {
    let cgra = presets::paper_4x4_r2();
    let dfg = kernels::fir();
    let limits = sweep_limits();
    let full = ExactSatMapper::new().map(&dfg, &cgra, &limits);
    let full_ii = full
        .stats
        .achieved_ii
        .expect("fir maps on 4x4 with the default budget");
    assert!(
        full.stats.proven_optimal(),
        "full budget proves fir optimal"
    );
    for budget in [1u64, 64, 1024] {
        let out = ExactSatMapper::new()
            .with_conflict_budget(budget)
            .map(&dfg, &cgra, &limits);
        if let Some(m) = &out.mapping {
            assert!(m.validate(&dfg, &cgra).is_ok(), "budget {budget}");
            verify_semantics(&dfg, &cgra, m, &Inputs::new(9), 5)
                .unwrap_or_else(|e| panic!("budget {budget}: {e}"));
            assert!(
                m.ii() >= full_ii,
                "budget {budget}: truncated run undercuts the proven minimum"
            );
        }
        for ii in out.stats.proven_infeasible_iis() {
            assert!(
                ii < full_ii,
                "budget {budget}: infeasibility claimed at II {ii} >= achievable {full_ii}"
            );
        }
    }
}
