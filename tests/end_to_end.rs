//! Cross-crate integration tests: the full compile flow through the public
//! facade, exactly as a downstream user drives it.

use rewire::prelude::*;
use std::time::Duration;

fn limits(ms: u64) -> MapLimits {
    MapLimits::fast().with_ii_time_budget(Duration::from_millis(ms))
}

#[test]
fn rewire_maps_the_core_suite_on_the_baseline_cgra() {
    let cgra = presets::paper_4x4_r4();
    for name in ["atax", "bicg", "fir", "jacobi2d", "viterbi"] {
        let dfg = kernels::by_name(name).unwrap();
        let outcome = RewireMapper::new().map(&dfg, &cgra, &limits(2000));
        let mapping = outcome
            .mapping
            .unwrap_or_else(|| panic!("{name} must map on 4x4/r4"));
        assert!(mapping.is_valid(&dfg, &cgra), "{name}");
        assert!(mapping.ii() >= outcome.stats.mii, "{name}");
    }
}

#[test]
fn all_three_mappers_agree_on_validity() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::atax();
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(RewireMapper::new()),
        Box::new(PathFinderMapper::new()),
        Box::new(SaMapper::new()),
    ];
    for mapper in mappers {
        let outcome = mapper.map(&dfg, &cgra, &limits(2000));
        if let Some(m) = outcome.mapping {
            assert!(m.is_valid(&dfg, &cgra), "{}", mapper.name());
            assert_eq!(Some(m.ii()), outcome.stats.achieved_ii, "{}", mapper.name());
        }
    }
}

#[test]
fn mapping_respects_memory_columns() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::spmv();
    let outcome = RewireMapper::new().map(&dfg, &cgra, &limits(2500));
    let mapping = outcome.mapping.expect("spmv maps");
    for node in dfg.nodes() {
        if node.op().is_memory() {
            let (pe, _) = mapping.placement(node.id()).unwrap();
            assert!(
                cgra.pe(pe).memory_capable(),
                "{} placed on non-memory {pe}",
                node.name()
            );
        }
    }
}

#[test]
fn routes_arrive_exactly_when_consumers_read() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::fir();
    let outcome = RewireMapper::new().map(&dfg, &cgra, &limits(2000));
    let mapping = outcome.mapping.expect("fir maps");
    let ii = mapping.ii();
    for e in dfg.edges() {
        let (_, t_src) = mapping.placement(e.src()).unwrap();
        let (_, t_dst) = mapping.placement(e.dst()).unwrap();
        let route = mapping.route(e.id()).unwrap();
        let req = route.request();
        assert_eq!(req.depart_cycle, t_src + 1);
        assert_eq!(req.arrive_cycle, t_dst + e.distance() * ii);
        // One resource cell per cycle of the path (plus at most the
        // delivery hop).
        let steps = (req.arrive_cycle - req.depart_cycle) as usize;
        assert!(route.resources().len() == steps || route.resources().len() == steps + 1);
    }
}

#[test]
fn unrolled_kernel_maps_on_the_8x8_fabric() {
    let cgra = presets::paper_8x8_r4();
    let dfg = kernels::by_name("fir(u)").unwrap();
    assert_eq!(dfg.num_nodes(), 2 * kernels::fir().num_nodes());
    let outcome = RewireMapper::new().map(&dfg, &cgra, &limits(3000));
    let mapping = outcome.mapping.expect("fir(u) maps on 8x8");
    assert!(mapping.is_valid(&dfg, &cgra));
}

#[test]
fn rewire_amends_a_partial_mapping_from_any_producer() {
    // Rewire is orthogonal to the initial-mapping producer: feed it a
    // partially built mapping directly.
    use rand::SeedableRng;
    use rewire::mrrg::Mrrg;
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::fir();
    let ii = 4;
    let mrrg = Mrrg::new(&cgra, ii);
    let mapping = Mapping::new(&dfg, &mrrg); // nothing placed at all
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut stats = RewireStats::default();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let amended = RewireMapper::new().amend(&dfg, &cgra, mapping, deadline, &mut rng, &mut stats);
    if let Some(m) = amended {
        assert!(m.is_valid(&dfg, &cgra));
        assert_eq!(m.ii(), ii);
    }
}

#[test]
fn serialization_round_trip_through_text_and_remap() {
    // The parsed copy must be mappable just like the original. (Exact II
    // equality is not asserted: the mapper's wall-clock restart budget
    // makes the achieved II load-sensitive.)
    let cgra = presets::paper_4x4_r4();
    let original = kernels::atax();
    let parsed = Dfg::from_text(&original.to_text()).unwrap();
    assert_eq!(parsed.mii(&cgra), original.mii(&cgra));
    let a = RewireMapper::new().map(&original, &cgra, &limits(1500));
    let b = RewireMapper::new().map(&parsed, &cgra, &limits(1500));
    let (ma, mb) = (
        a.mapping.expect("original maps"),
        b.mapping.expect("parsed maps"),
    );
    assert!(ma.is_valid(&original, &cgra));
    assert!(mb.is_valid(&parsed, &cgra));
}
