//! Perf-regression gate: the work counters of the capped deterministic
//! mappers on the fig5 smoke kernels, pinned as a checked-in JSON
//! baseline with a tolerance band.
//!
//! The golden-results suite pins *what* the mappers produce; this suite
//! pins *how much work* they do to produce it. A change that silently
//! doubles `router.expansions` or `pf.rip_ups` while leaving every II
//! intact passes the golden gate but fails here. The band (±10%) absorbs
//! benign drift — a few extra negotiation iterations from a reordered
//! tie-break — while catching order-of-magnitude regressions.
//!
//! Intentional changes are blessed with:
//!
//! ```text
//! REWIRE_BLESS=1 cargo test --test metrics_baseline
//! ```
//!
//! and the regenerated `tests/golden/metrics_baseline.json` is reviewed
//! like code: the diff shows exactly how much more (or less) work the
//! new mapper does.

use rewire::prelude::*;
use rewire_mappers::PathFinderConfig;
use rewire_obs as obs;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// The fig5 smoke set CI maps for the observability pipeline.
const SMOKE_KERNELS: [&str; 5] = ["fir", "atax", "bicg", "mvt", "gesummv"];

/// Counters the gate pins. Totals are summed over every metrics scope the
/// runs touched, so per-kernel scoping does not matter here.
const TRACKED: [&str; 3] = ["router.expansions", "pf.rip_ups", "engine.attempts"];

/// Relative drift the gate absorbs before failing.
const TOLERANCE: f64 = 0.10;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_baseline.json")
}

/// Capped deterministic configurations: every stochastic loop bound by an
/// iteration cap and the wall clock never binding, so the counters are
/// machine-independent.
fn capped_pathfinder() -> PathFinderMapper {
    PathFinderMapper::with_config(PathFinderConfig {
        max_iterations_per_ii: 60,
        max_full_evals: 6,
        ..Default::default()
    })
}

fn capped_rewire() -> RewireMapper {
    RewireMapper::with_config(RewireConfig {
        max_cluster_attempts: 6,
        max_restarts_per_ii: 1,
        ..Default::default()
    })
}

fn limits_for(dfg: &Dfg, cgra: &Cgra) -> MapLimits {
    let mii = dfg.mii(cgra).expect("smoke kernels are feasible");
    MapLimits::fast()
        .with_seed(0xFACADE)
        .with_ii_time_budget(Duration::from_secs(600))
        .with_max_ii(mii + 1)
}

/// Sum of one counter over every scope in the global registry.
fn total(name: &str) -> u64 {
    obs::metrics()
        .snapshot()
        .scopes
        .values()
        .filter_map(|s| s.counters.get(name).copied())
        .sum()
}

/// Runs the smoke kernels under both capped mappers and returns the
/// before/after delta of each tracked counter.
fn measure() -> BTreeMap<String, u64> {
    let cgra = presets::paper_4x4_r4();
    let suite = kernels::all();
    let before: Vec<u64> = TRACKED.iter().map(|n| total(n)).collect();
    for name in SMOKE_KERNELS {
        let (_, dfg) = suite
            .iter()
            .find(|(k, _)| *k == name)
            .unwrap_or_else(|| panic!("smoke kernel {name} missing from the suite"));
        // Success is pinned by the golden-results suite; here only the
        // work spent matters, so failed attempts count too.
        let limits = limits_for(dfg, &cgra);
        let _ = capped_pathfinder().map(dfg, &cgra, &limits);
        let _ = capped_rewire().map(dfg, &cgra, &limits);
    }
    TRACKED
        .iter()
        .zip(before)
        .map(|(name, b)| ((*name).to_string(), total(name) - b))
        .collect()
}

fn render(baseline: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n");
    let body: Vec<String> = baseline
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n}\n");
    out
}

/// Parses the flat `{"name": count, ...}` baseline. Hand-rolled because
/// the format is one object of string-to-integer pairs and the workspace
/// vendors no JSON crate.
fn parse(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or("baseline must be a JSON object")?;
    let mut map = BTreeMap::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("bad pair {pair:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key in {pair:?}"))?;
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad count for {key}: {e}"))?;
        map.insert(key.to_string(), value);
    }
    Ok(map)
}

#[test]
fn work_counters_stay_within_the_baseline_band() {
    let current = measure();
    let path = baseline_path();
    if std::env::var_os("REWIRE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(&current)).unwrap();
        eprintln!("blessed {}: {current:?}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing baseline {} ({e}); run REWIRE_BLESS=1 cargo test --test metrics_baseline",
            path.display()
        )
    });
    let golden = parse(&golden).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut drifted = String::new();
    for name in TRACKED {
        let expect = *golden
            .get(name)
            .unwrap_or_else(|| panic!("baseline is missing {name}; re-bless"));
        let got = current[name];
        let band = (expect as f64 * TOLERANCE).max(1.0);
        let delta = got as f64 - expect as f64;
        if delta.abs() > band {
            writeln!(
                drifted,
                "  {name}: {expect} -> {got} ({:+.1}%, band ±{:.0}%)",
                delta / expect.max(1) as f64 * 100.0,
                TOLERANCE * 100.0
            )
            .unwrap();
        }
    }
    assert!(
        drifted.is_empty(),
        "work counters drifted outside the baseline band:\n{drifted}\
         if intentional, re-bless with REWIRE_BLESS=1 cargo test --test metrics_baseline"
    );
}

#[test]
fn baseline_parser_round_trips() {
    let mut sample = BTreeMap::new();
    sample.insert("router.expansions".to_string(), 12_345u64);
    sample.insert("pf.rip_ups".to_string(), 0u64);
    sample.insert("engine.attempts".to_string(), 7u64);
    assert_eq!(parse(&render(&sample)).unwrap(), sample);
    assert!(parse("[1,2]").is_err());
    assert!(parse("{\"a\": x}").is_err());
}
