//! Cross-thread determinism: for a fixed seed, the achieved IIs must not
//! depend on how many worker threads the experiment harness uses, nor on
//! whether Rewire races a restart portfolio internally.
//!
//! The precondition (see DESIGN.md, "Threading model & determinism") is
//! that the *attempt caps* bind, not the wall-clock deadline — so these
//! tests use small kernels with a budget far larger than they need.

use rewire::prelude::*;
use rewire_bench::{run_workloads_jobs, MapperKind, Workload};

fn workloads() -> Vec<Workload> {
    // bicg and mvt both map at their first feasible II on this fabric, so
    // no mapper ever reaches the wall-clock deadline — the precondition
    // for jobs-independence (restarts at a *failing* II run until the
    // deadline and would reintroduce timing sensitivity).
    vec![Workload {
        label: "det-4x4r4",
        budget_scale: 1.0,
        cgra: presets::paper_4x4_r4(),
        kernels: vec![
            kernels::by_name("bicg").unwrap(),
            kernels::by_name("mvt").unwrap(),
        ],
    }]
}

fn achieved(rows: &[rewire_bench::Row]) -> Vec<(String, Vec<Option<u32>>)> {
    rows.iter()
        .map(|r| {
            (
                r.kernel.clone(),
                r.results.iter().map(|m| m.achieved_ii).collect(),
            )
        })
        .collect()
}

#[test]
fn final_ii_is_independent_of_jobs() {
    let mappers = [MapperKind::Rewire, MapperKind::PathFinder];
    // 60 s per II dwarfs what these kernels need (< 1 s release, a few
    // seconds debug), so every mapper terminates on its deterministic
    // attempt caps, never the deadline.
    let serial = run_workloads_jobs(&workloads(), &mappers, 60.0, 1, |_| {});
    let parallel = run_workloads_jobs(&workloads(), &mappers, 60.0, 8, |_| {});
    assert!(!serial.is_empty());
    assert_eq!(achieved(&serial), achieved(&parallel));
    for row in &serial {
        for result in &row.results {
            assert!(
                result.achieved_ii.is_some(),
                "{} should map under a generous budget",
                row.kernel
            );
        }
    }
}

#[test]
fn portfolio_width_changes_threads_not_the_seed_contract() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::by_name("mvt").unwrap();
    let limits = MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(60));
    // A finite restart cap makes every worker's trajectory end on its
    // attempt caps; with the generous budget above the deadline is never
    // the binding constraint, so the reduction sees the same candidate set
    // on every run.
    let config = RewireConfig {
        portfolio_width: 4,
        max_restarts_per_ii: 4,
        ..Default::default()
    };
    let once = RewireMapper::with_config(config.clone()).map(&dfg, &cgra, &limits);
    let again = RewireMapper::with_config(config).map(&dfg, &cgra, &limits);
    assert_eq!(once.stats.achieved_ii, again.stats.achieved_ii);
    let mapping = once.mapping.expect("mvt maps on 4x4/r4");
    assert!(mapping.is_valid(&dfg, &cgra));
}
