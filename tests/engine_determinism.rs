//! The refactor-safety net for the shared `IiSearch` engine: per-mapper
//! results on the full kernel suite must be byte-identical run to run, and
//! identical to a hand-rolled replica of the pre-engine ascending-II loop
//! driving the same `IiAttempt` adapters (same seeds, same achieved IIs,
//! same iteration counts, same placements).
//!
//! All configs bound every stochastic loop by *deterministic caps*
//! (iterations, restarts, cluster attempts) under a budget so generous the
//! wall-clock deadline never binds — the precondition for byte-identical
//! reruns.

use rewire::prelude::*;
use rewire_mappers::engine::{
    worker_seed, AttemptCtx, Emitter, Fanout, IiAttempt, JsonlTrace, MetricsSink, RunMeta, Silent,
};
use rewire_mappers::{PathFinderConfig, SaConfig};
use std::time::{Duration, Instant};

/// Everything a mapping run produces, down to the exact placement.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    achieved_ii: Option<u32>,
    iis_explored: u32,
    remap_iterations: u64,
    placements: Option<Vec<Option<(PeId, u32)>>>,
}

fn fingerprint(dfg: &Dfg, out: &MapOutcome) -> Fingerprint {
    Fingerprint {
        achieved_ii: out.stats.achieved_ii,
        iis_explored: out.stats.iis_explored,
        remap_iterations: out.stats.remap_iterations,
        placements: out
            .mapping
            .as_ref()
            .map(|m| dfg.node_ids().map(|n| m.placement(n)).collect()),
    }
}

/// Per-kernel limits: deterministic caps bind, the deadline never does,
/// and the sweep stops one II past the theoretical minimum to keep the
/// debug-mode suite fast.
fn limits_for(dfg: &Dfg, cgra: &Cgra) -> Option<MapLimits> {
    let mii = dfg.mii(cgra)?;
    Some(
        MapLimits::fast()
            .with_seed(0xFACADE)
            .with_ii_time_budget(Duration::from_secs(600))
            .with_max_ii(mii + 1),
    )
}

/// Mappers with every stochastic loop capped deterministically.
fn capped_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(RewireMapper::with_config(RewireConfig {
            max_cluster_attempts: 6,
            max_restarts_per_ii: 1,
            ..Default::default()
        })),
        Box::new(PathFinderMapper::with_config(PathFinderConfig {
            max_iterations_per_ii: 60,
            max_full_evals: 6,
            ..Default::default()
        })),
        Box::new(SaMapper::with_config(SaConfig {
            max_iterations_per_ii: 150,
            max_restarts_per_ii: 1,
            ..Default::default()
        })),
    ]
}

#[test]
fn suite_results_are_byte_identical_run_to_run() {
    let cgra = presets::paper_4x4_r4();
    let suite = kernels::all();
    assert!(suite.len() >= 30, "the full benchmark suite");
    for mapper in capped_mappers() {
        for (name, dfg) in &suite {
            let Some(limits) = limits_for(dfg, &cgra) else {
                continue;
            };
            let a = fingerprint(dfg, &mapper.map(dfg, &cgra, &limits));
            let b = fingerprint(dfg, &mapper.map(dfg, &cgra, &limits));
            assert_eq!(a, b, "{} on {name} diverged between reruns", mapper.name());
        }
    }
}

/// Observability must be observe-only: attaching the full sink stack
/// (JSONL trace + metrics counters) to a run must leave its result —
/// achieved II, iteration counts, every single placement — byte-identical
/// to the silent run. Counting and timing never feed back into search
/// decisions.
#[test]
fn metrics_and_trace_sinks_never_change_results() {
    let cgra = presets::paper_4x4_r4();
    let suite = kernels::all();
    let mut covered = 0usize;
    for mapper in capped_mappers() {
        covered = 0;
        for (name, dfg) in suite.iter().take(12) {
            let Some(limits) = limits_for(dfg, &cgra) else {
                continue;
            };
            covered += 1;
            let silent = fingerprint(dfg, &mapper.map(dfg, &cgra, &limits));
            let mut observed_sinks = Fanout::default();
            observed_sinks.0.push(Box::new(JsonlTrace::new(Vec::new())));
            observed_sinks.0.push(Box::new(MetricsSink::new()));
            let observed = fingerprint(
                dfg,
                &mapper.map_with_events(dfg, &cgra, &limits, &mut observed_sinks),
            );
            assert_eq!(
                silent,
                observed,
                "{} on {name}: trace/metrics sinks changed the result",
                mapper.name()
            );
        }
    }
    assert!(covered >= 10, "only {covered} kernels were comparable");
}

/// The full observability stack — JSONL trace and metrics sinks *plus* the
/// process-global flight recorder and Chrome span collector — must also be
/// observe-only. This is the strongest form of the guarantee: the flight
/// recorder samples congestion inside PF*'s negotiation loop and the
/// Chrome collector timestamps every span, yet no placement may move.
#[test]
fn flight_recorder_and_chrome_collectors_never_change_results() {
    let cgra = presets::paper_4x4_r4();
    let suite = kernels::all();
    let mut covered = 0usize;
    for mapper in capped_mappers() {
        covered = 0;
        for (name, dfg) in suite.iter().take(12) {
            let Some(limits) = limits_for(dfg, &cgra) else {
                continue;
            };
            covered += 1;
            let silent = fingerprint(dfg, &mapper.map(dfg, &cgra, &limits));

            rewire_obs::flight().enable(0);
            rewire_obs::chrome().enable(0);
            let before = rewire_obs::flight().events_emitted();
            let mut observed_sinks = Fanout::default();
            observed_sinks.0.push(Box::new(JsonlTrace::new(Vec::new())));
            observed_sinks.0.push(Box::new(MetricsSink::new()));
            let observed = fingerprint(
                dfg,
                &mapper.map_with_events(dfg, &cgra, &limits, &mut observed_sinks),
            );
            let recorded = rewire_obs::flight().events_emitted() - before;
            rewire_obs::flight().disable();
            rewire_obs::chrome().disable();

            assert_eq!(
                silent,
                observed,
                "{} on {name}: flight recorder / chrome collector changed the result",
                mapper.name()
            );
            // The comparison is only meaningful if the collectors actually
            // saw the run: every engine attempt stamps a phase heartbeat.
            assert!(
                recorded > 0,
                "{} on {name}: flight recorder captured nothing",
                mapper.name()
            );
        }
    }
    assert!(covered >= 10, "only {covered} kernels were comparable");
}

/// A faithful replica of the outer loop every mapper used to hand-roll
/// before the engine existed: `iis_explored` incremented per II, the per-II
/// deadline computed at the top of each iteration, the attempt invoked, and
/// the first success returned.
fn legacy_loop(
    name: &str,
    attempt: &mut dyn IiAttempt,
    dfg: &Dfg,
    cgra: &Cgra,
    limits: &MapLimits,
) -> Fingerprint {
    let mut iis_explored = 0u32;
    let mut remap_iterations = 0u64;
    let Some(mii) = dfg.mii(cgra) else {
        return Fingerprint {
            achieved_ii: None,
            iis_explored,
            remap_iterations,
            placements: None,
        };
    };
    for ii in mii..=limits.max_ii {
        iis_explored += 1;
        let deadline = Instant::now() + limits.ii_time_budget;
        let ctx = AttemptCtx {
            ii,
            mii,
            deadline,
            seed: worker_seed(limits.seed, ii, 0),
            limits,
        };
        let mut sink = Silent;
        let mut emitter = Emitter::new(
            RunMeta {
                mapper: name,
                kernel: dfg.name(),
                seed: limits.seed,
            },
            &mut sink,
        );
        let out = attempt.attempt(dfg, cgra, &ctx, &mut emitter);
        remap_iterations += out.iterations;
        if let Some(m) = out.mapping {
            return Fingerprint {
                achieved_ii: Some(ii),
                iis_explored,
                remap_iterations,
                placements: Some(dfg.node_ids().map(|n| m.placement(n)).collect()),
            };
        }
    }
    Fingerprint {
        achieved_ii: None,
        iis_explored,
        remap_iterations,
        placements: None,
    }
}

#[test]
fn engine_matches_the_legacy_hand_rolled_loop() {
    let cgra = presets::paper_4x4_r4();
    let suite = kernels::all();
    let pf_config = PathFinderConfig {
        max_iterations_per_ii: 60,
        max_full_evals: 6,
        ..Default::default()
    };
    let sa_config = SaConfig {
        max_iterations_per_ii: 150,
        max_restarts_per_ii: 1,
        ..Default::default()
    };
    let rw_config = RewireConfig {
        max_cluster_attempts: 6,
        max_restarts_per_ii: 1,
        ..Default::default()
    };
    for (name, dfg) in &suite {
        let Some(limits) = limits_for(dfg, &cgra) else {
            continue;
        };

        let pf = PathFinderMapper::with_config(pf_config.clone());
        let engine = fingerprint(dfg, &pf.map(dfg, &cgra, &limits));
        let legacy = legacy_loop("PF*", &mut pf.ii_attempt(&limits), dfg, &cgra, &limits);
        assert_eq!(engine, legacy, "PF* on {name}: engine vs legacy loop");

        let sa = SaMapper::with_config(sa_config.clone());
        let engine = fingerprint(dfg, &sa.map(dfg, &cgra, &limits));
        let legacy = legacy_loop("SA", &mut sa.ii_attempt(&limits), dfg, &cgra, &limits);
        assert_eq!(engine, legacy, "SA on {name}: engine vs legacy loop");

        let rw = RewireMapper::with_config(rw_config.clone());
        let engine = fingerprint(dfg, &rw.map(dfg, &cgra, &limits));
        let legacy = legacy_loop("Rewire", &mut rw.ii_attempt(&limits), dfg, &cgra, &limits);
        assert_eq!(engine, legacy, "Rewire on {name}: engine vs legacy loop");
    }
}
