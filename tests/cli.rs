//! Integration tests of the `rewire-map` CLI binary.

use std::process::Command;

fn rewire_map() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rewire-map"))
}

#[test]
fn maps_a_kernel_and_reports() {
    let out = rewire_map()
        .args(["--kernel", "fir", "--budget-ms", "2000", "--verify", "4"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The success summary is the `MapStats` Display one-liner.
    assert!(stdout.contains("Rewire/fir: II "), "summary: {stdout}");
    assert!(stdout.contains("semantics verified"));
}

#[test]
fn unknown_kernel_is_a_usage_error() {
    let out = rewire_map()
        .args(["--kernel", "not-a-kernel"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_input_prints_usage() {
    let out = rewire_map().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn maps_a_dfg_file_on_a_custom_fabric() {
    let dir = std::env::temp_dir().join("rewire-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.dfg");
    std::fs::write(
        &path,
        "dfg tiny\nnode a ld\nnode b add\nnode c st\nedge a b\nedge b c\n",
    )
    .unwrap();
    let out = rewire_map()
        .args([
            "--dfg",
            path.to_str().unwrap(),
            "--rows",
            "3",
            "--cols",
            "3",
            "--regs",
            "2",
            "--banks",
            "1",
            "--mem-cols",
            "0",
            "--mapper",
            "pf",
            "--show-grid",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("slot 0"), "grid rendered: {stdout}");
}

#[test]
fn maps_a_corpus_artifact_and_dumps_forensics() {
    let dir = std::env::temp_dir().join(format!("rewire-cli-forensics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let flight = dir.join("flight.json");
    let chrome = dir.join("chrome.json");
    let artifact = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz/corpus/seed0004-pass.dfg");
    let out = rewire_map()
        .args([
            "--artifact",
            artifact,
            "--mapper",
            "pf",
            "--flight",
            flight.to_str().unwrap(),
            "--chrome-trace",
            chrome.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Fabric, kernel and II ceiling all come from the artifact file.
    assert!(stdout.contains("artifact:"), "provenance line: {stdout}");
    assert!(stdout.contains("CGRA 3x3"), "artifact fabric: {stdout}");
    assert!(stdout.contains("PF*/hand-backedge-hub: II "), "{stdout}");
    let flight_json = std::fs::read_to_string(&flight).unwrap();
    assert!(flight_json.contains("\"version\""), "{flight_json}");
    let chrome_json = std::fs::read_to_string(&chrome).unwrap();
    assert!(chrome_json.contains("traceEvents"), "{chrome_json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dot_export_writes_a_file() {
    let dir = std::env::temp_dir().join("rewire-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let dot = dir.join("out.dot");
    let out = rewire_map()
        .args([
            "--kernel",
            "atax",
            "--dot",
            dot.to_str().unwrap(),
            "--budget-ms",
            "1500",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&dot).unwrap();
    assert!(text.starts_with("digraph"));
}
