//! Corpus regression replay plus the fuzz harness's own contracts.
//!
//! Every artifact under `fuzz/corpus/` is a self-contained scenario with
//! a pinned expectation: `expect pass` cases must clear the whole oracle
//! stack, `expect fail <check>` cases must keep reproducing the named
//! violation until the underlying bug is fixed. This test replays all of
//! them in CI so a regression anywhere in the mapper stack trips a
//! shrunk, named reproducer instead of a flaky fuzz run.
//!
//! The harness contracts mirror `tests/engine_determinism.rs`: the fuzz
//! loop must be deterministic per seed (same seed ⇒ byte-identical
//! scenario, outcomes, violations, shrink trace) and observe-only with
//! respect to the mappers (a mapper run inside the harness is
//! fingerprint-identical to the same run outside it).

use rewire::prelude::*;
use rewire_fuzz::{differential_mappers, evaluate, fuzz_one, replay, Artifact, FuzzConfig};
use rewire_mrrg::{set_default_fanout_mode, FanoutMode};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// The fan-out routing mode is process-global (`rewire-fuzz --router`
/// flips it once for a whole run), so the tests here serialize on a mutex:
/// the default-mode tests must not observe a half-flipped mode from the
/// per-edge replay arm.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Restores the previous default fan-out mode on drop.
struct ModeGuard(FanoutMode);

impl ModeGuard {
    fn set(mode: FanoutMode) -> Self {
        Self(set_default_fanout_mode(mode))
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_default_fanout_mode(self.0);
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

fn corpus_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("fuzz/corpus exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dfg"))
        .collect();
    paths.sort();
    paths
}

/// Generous budgets so wall clocks never bind in debug CI runs; the
/// deterministic caps inside `differential_mappers` do the bounding.
/// The exact SAT oracle runs on every replay so corpus artifacts pin
/// its verdicts too — the conflict budget, not the wall clock, bounds
/// it at this setting.
fn replay_cfg() -> FuzzConfig {
    FuzzConfig {
        budget_ms: 10_000,
        sim_iterations: 8,
        exact_budget_ms: 20_000,
        ..FuzzConfig::default()
    }
}

#[test]
fn corpus_replays_with_pinned_expectations() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let paths = corpus_paths();
    assert!(
        paths.len() >= 5,
        "the seeded corpus holds at least 5 artifacts, found {}",
        paths.len()
    );
    let cfg = replay_cfg();
    for path in paths {
        let text = fs::read_to_string(&path).expect("readable artifact");
        let artifact =
            Artifact::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        replay(&artifact, &cfg).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

/// The oracle stack is mode-agnostic: every pinned expectation must also
/// hold with the fan-out router forced to the per-edge baseline (the
/// `rewire-fuzz --router per-edge` CI arm). In particular the
/// `subtree-delta` divergence artifacts stay `expect pass` — the per-edge
/// arm merely fails to map them, and a heuristic give-up is never an
/// oracle violation.
#[test]
fn corpus_replays_clean_under_per_edge_routing() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _mode = ModeGuard::set(FanoutMode::PerEdge);
    let cfg = replay_cfg();
    for path in corpus_paths() {
        let text = fs::read_to_string(&path).expect("readable artifact");
        let artifact =
            Artifact::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        replay(&artifact, &cfg).unwrap_or_else(|e| panic!("{} (per-edge): {e}", path.display()));
    }
}

#[test]
fn fuzz_loop_is_deterministic_per_seed() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = replay_cfg();
    for mode in [FanoutMode::Tree, FanoutMode::PerEdge] {
        let _mode = ModeGuard::set(mode);
        for seed in [0, 7, 42] {
            let a = fuzz_one(seed, &cfg);
            let b = fuzz_one(seed, &cfg);
            assert_eq!(
                a.render(),
                b.render(),
                "seed {seed} diverged between reruns ({mode:?})"
            );
        }
    }
}

/// The harness is observe-only: running a mapper through `evaluate` must
/// leave its outcome fingerprint-identical to invoking the same mapper
/// directly with the same limits — the oracle stack, metrics, and shrink
/// machinery never feed back into the search.
#[test]
fn fuzz_harness_is_observe_only() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in [FanoutMode::Tree, FanoutMode::PerEdge] {
        let _mode = ModeGuard::set(mode);
        harness_is_observe_only_under_current_mode();
    }
}

fn harness_is_observe_only_under_current_mode() {
    let cfg = replay_cfg();
    let scenario = rewire_fuzz::Scenario::generate(11);
    let (runs, _) = evaluate(
        &scenario.dfg,
        &scenario.cgra,
        scenario.mapper_seed(),
        scenario.input_seed(),
        &cfg,
    );

    let mii = scenario.dfg.mii(&scenario.cgra);
    let max_ii = mii.map_or(1, |m| m + cfg.extra_ii);
    let limits = MapLimits::fast()
        .with_seed(scenario.mapper_seed())
        .with_ii_time_budget(Duration::from_millis(cfg.budget_ms))
        .with_max_ii(max_ii);
    for (mapper, inside) in differential_mappers().iter().zip(&runs) {
        let outside = mapper.map(&scenario.dfg, &scenario.cgra, &limits);
        assert_eq!(mapper.name(), inside.name);
        assert_eq!(
            outside.stats.achieved_ii, inside.outcome.stats.achieved_ii,
            "{}: harness changed the achieved II",
            inside.name
        );
        assert_eq!(
            outside.stats.iis_explored, inside.outcome.stats.iis_explored,
            "{}: harness changed the sweep",
            inside.name
        );
        assert_eq!(
            outside.stats.remap_iterations, inside.outcome.stats.remap_iterations,
            "{}: harness changed the iteration count",
            inside.name
        );
        let placements = |m: &Mapping| -> Vec<Option<(PeId, u32)>> {
            scenario.dfg.node_ids().map(|n| m.placement(n)).collect()
        };
        assert_eq!(
            outside.mapping.as_ref().map(&placements),
            inside.outcome.mapping.as_ref().map(&placements),
            "{}: harness changed the placement",
            inside.name
        );
    }
}
