//! Golden-snapshot regression gate: the achieved II and mapping cost of
//! the capped deterministic Rewire mapper, for every kernel in the suite
//! on all four paper presets, pinned as a checked-in text snapshot.
//!
//! Any router or mapper change that shifts a result — a different II, a
//! different number of occupied MRRG cells, a kernel flipping between
//! mapped and unmapped — fails this test loudly with a line-level diff
//! instead of drifting silently. Intentional changes are blessed with:
//!
//! ```text
//! REWIRE_BLESS=1 cargo test --test golden_results
//! ```
//!
//! and the regenerated `tests/golden/results.txt` is reviewed like code.

use rewire::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/results.txt")
}

/// The same capped deterministic configuration the determinism and
/// differential suites use: stochastic loops bound by iteration caps, the
/// wall clock never binding, so the snapshot is machine-independent.
fn capped_rewire() -> RewireMapper {
    RewireMapper::with_config(RewireConfig {
        max_cluster_attempts: 6,
        max_restarts_per_ii: 1,
        ..Default::default()
    })
}

fn limits_for(dfg: &Dfg, cgra: &Cgra) -> Option<MapLimits> {
    let mii = dfg.mii(cgra)?;
    Some(
        MapLimits::fast()
            .with_seed(0xFACADE)
            .with_ii_time_budget(Duration::from_secs(600))
            .with_max_ii(mii + 1),
    )
}

fn render_current() -> String {
    let presets: [(&str, Cgra); 4] = [
        ("paper_4x4_r4", presets::paper_4x4_r4()),
        ("paper_8x8_r4", presets::paper_8x8_r4()),
        ("paper_4x4_r2", presets::paper_4x4_r2()),
        ("paper_4x4_r1", presets::paper_4x4_r1()),
    ];
    let suite = kernels::all();
    assert!(suite.len() >= 30, "the full benchmark suite");
    let mut out = String::new();
    out.push_str("# Golden mapping results: capped deterministic Rewire (seed 0xFACADE).\n");
    out.push_str("# <preset> <kernel> ii=<achieved> cost=<occupied MRRG cells> | unmapped\n");
    out.push_str("# Regenerate with: REWIRE_BLESS=1 cargo test --test golden_results\n");
    let mapper = capped_rewire();
    for (preset_name, cgra) in &presets {
        for (kernel, dfg) in &suite {
            let Some(limits) = limits_for(dfg, cgra) else {
                writeln!(out, "{preset_name} {kernel} infeasible").unwrap();
                continue;
            };
            let outcome = mapper.map(dfg, cgra, &limits);
            match (&outcome.mapping, outcome.stats.achieved_ii) {
                (Some(m), Some(ii)) => {
                    writeln!(
                        out,
                        "{preset_name} {kernel} ii={ii} cost={}",
                        m.occupancy().used_cells()
                    )
                    .unwrap();
                }
                _ => writeln!(out, "{preset_name} {kernel} unmapped").unwrap(),
            }
        }
    }
    out
}

#[test]
fn results_match_the_golden_snapshot() {
    let current = render_current();
    let path = snapshot_path();
    if std::env::var_os("REWIRE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &current).unwrap();
        eprintln!(
            "blessed {} ({} lines)",
            path.display(),
            current.lines().count()
        );
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run REWIRE_BLESS=1 cargo test --test golden_results",
            path.display()
        )
    });
    if golden == current {
        return;
    }
    // Line-level diff: show exactly which kernels moved.
    let mut drifted = String::new();
    for (g, c) in golden.lines().zip(current.lines()) {
        if g != c {
            writeln!(drifted, "  -{g}\n  +{c}").unwrap();
        }
    }
    let (gn, cn) = (golden.lines().count(), current.lines().count());
    if gn != cn {
        writeln!(drifted, "  (line count {gn} -> {cn})").unwrap();
    }
    panic!(
        "mapping results drifted from {}:\n{drifted}\
         if intentional, re-bless with REWIRE_BLESS=1 cargo test --test golden_results",
        snapshot_path().display()
    );
}
