//! Property-based mutation tests: take a *real* mapper-produced mapping,
//! corrupt it the way a buggy mapper would, and assert structural
//! validation rejects every corruption with the right issue.
//!
//! This pins the discriminating power of `Mapping::validate` — the first
//! layer of the fuzz oracle stack. (Slot-level route corruption is
//! invisible to structural validation by design; the semantic layer
//! catches it, see `crates/fuzz/src/oracle.rs` and
//! `crates/sim/tests/edge_cases.rs`.)

use proptest::prelude::*;
use rewire::dfg::generate::{random_dfg, RandomDfgParams};
use rewire::dfg::EdgeId;
use rewire::mappers::MappingIssue;
use rewire::prelude::*;
use std::time::Duration;

/// A mapper-produced mapping to mutate, or `None` when the instance is
/// unmappable under the small budget (the property then holds vacuously).
fn mapped(seed: u64, nodes: usize, mem: f64) -> Option<(Dfg, Cgra, Mapping)> {
    let dfg = random_dfg(
        &RandomDfgParams {
            nodes,
            memory_fraction: mem,
            ..Default::default()
        },
        seed,
    );
    let cgra = presets::paper_4x4_r4();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(400));
    let m = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping?;
    assert!(m.is_valid(&dfg, &cgra));
    Some((dfg, cgra, m))
}

fn pick_node(dfg: &Dfg, pick: usize) -> NodeId {
    dfg.node_ids().nth(pick % dfg.num_nodes()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Unplacing any node is rejected as `NodeUnplaced` (plus unrouted
    /// edges for everything that hung off it).
    #[test]
    fn validation_rejects_an_unplaced_node(seed in 0u64..5000, pick in 0usize..64) {
        let Some((dfg, cgra, mut m)) = mapped(seed, 10, 0.1) else { return Ok(()) };
        let victim = pick_node(&dfg, pick);
        m.unplace(&dfg, victim);
        let issues = m.validate(&dfg, &cgra).expect_err("corruption must be rejected");
        prop_assert!(
            issues.iter().any(|i| matches!(i, MappingIssue::NodeUnplaced(n) if *n == victim)),
            "{issues:?}"
        );
    }

    /// Clearing any committed route is rejected as `EdgeUnrouted`.
    #[test]
    fn validation_rejects_a_cleared_route(seed in 0u64..5000, pick in 0usize..64) {
        let Some((dfg, cgra, mut m)) = mapped(seed, 10, 0.1) else { return Ok(()) };
        let victim = EdgeId::new((pick % dfg.num_edges()) as u32);
        m.clear_route(victim);
        let issues = m.validate(&dfg, &cgra).expect_err("corruption must be rejected");
        prop_assert!(
            issues.iter().any(|i| matches!(i, MappingIssue::EdgeUnrouted(e) if *e == victim)),
            "{issues:?}"
        );
    }

    /// Swapping the routes of two edges with different requests leaves
    /// both stale — rejected as `RouteMismatch` on each.
    #[test]
    fn validation_rejects_swapped_routes(seed in 0u64..5000, pick in 0usize..64) {
        let Some((dfg, cgra, mut m)) = mapped(seed, 10, 0.1) else { return Ok(()) };
        let n = dfg.num_edges();
        let a = EdgeId::new((pick % n) as u32);
        let b = EdgeId::new(((pick + 1) % n) as u32);
        let (ra, rb) = (m.route(a).unwrap().clone(), m.route(b).unwrap().clone());
        if a == b || ra.request() == rb.request() {
            return Ok(()); // parallel twins: the swap is a no-op
        }
        m.clear_route(a);
        m.clear_route(b);
        m.set_route(a, rb);
        m.set_route(b, ra);
        let issues = m.validate(&dfg, &cgra).expect_err("corruption must be rejected");
        for e in [a, b] {
            prop_assert!(
                issues.iter().any(|i| matches!(i, MappingIssue::RouteMismatch(x) if *x == e)),
                "edge {e}: {issues:?}"
            );
        }
    }

    /// Stacking one node on top of another claims the same FU cell twice
    /// — rejected as `Overuse`.
    #[test]
    fn validation_rejects_a_conflicting_placement(seed in 0u64..5000, pick in 0usize..64) {
        let Some((dfg, cgra, mut m)) = mapped(seed, 10, 0.0) else { return Ok(()) };
        let victim = pick_node(&dfg, pick);
        let other = pick_node(&dfg, pick + 1);
        if victim == other {
            return Ok(());
        }
        let (pe, time) = m.placement(other).unwrap();
        m.unplace(&dfg, victim);
        m.place(victim, pe, time);
        let issues = m.validate(&dfg, &cgra).expect_err("corruption must be rejected");
        prop_assert!(
            issues.iter().any(|i| matches!(i, MappingIssue::Overuse { amount } if *amount > 0)),
            "{issues:?}"
        );
    }

    /// Moving a memory operation onto a PE without memory access is
    /// rejected as `UnsupportedPe`.
    #[test]
    fn validation_rejects_a_memory_op_off_the_memory_column(seed in 0u64..5000) {
        let Some((dfg, cgra, mut m)) = mapped(seed, 10, 0.3) else { return Ok(()) };
        let Some(load) = dfg.nodes().find(|n| n.op().is_memory()).map(|n| n.id()) else {
            return Ok(()); // no memory op drawn this time
        };
        let Some(plain) = cgra.pes().find(|p| !p.supports(OpKind::Load)).map(|p| p.id()) else {
            return Ok(());
        };
        let (_, time) = m.placement(load).unwrap();
        m.unplace(&dfg, load);
        m.place(load, plain, time);
        let issues = m.validate(&dfg, &cgra).expect_err("corruption must be rejected");
        prop_assert!(
            issues.iter().any(|i| matches!(
                i,
                MappingIssue::UnsupportedPe { node, pe } if *node == load && *pe == plain
            )),
            "{issues:?}"
        );
    }
}
