//! Mapper-level differential for the fan-out routing modes: flipping
//! between [`FanoutMode::PerEdge`] and [`FanoutMode::Tree`] (Steiner-style
//! shared route trees + subtree-delta repair) must never *cost* anything —
//! the tree arm maps every kernel the per-edge arm maps, at an II that is
//! never higher, with per-signal resource footprints that never grow — and
//! must strictly reduce total MRRG usage across the fan-out-heavy kernels
//! it exists for. Both arms must stay golden-model correct. The
//! router-level counterpart (randomized fan-out trees) lives in
//! `crates/mrrg/tests/tree_properties.rs`.
//!
//! The fan-out mode is a process-wide global (like the router sweep mode),
//! so the tests in this binary serialize on a mutex and restore the
//! default before releasing it.

use rewire::prelude::*;
use rewire_fuzz::differential_mappers;
use rewire_mappers::PathFinderConfig;
use rewire_mrrg::{set_default_fanout_mode, FanoutMode, Resource};
use rewire_obs as obs;
use rewire_sim::{verify_semantics, Inputs};
use std::collections::{BTreeMap, HashSet};
use std::sync::Mutex;
use std::time::Duration;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Restores the previous default fan-out mode on drop, so a failing
/// assertion cannot leak a mode into the other tests.
struct ModeGuard(FanoutMode);

impl ModeGuard {
    fn set(mode: FanoutMode) -> Self {
        Self(set_default_fanout_mode(mode))
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_default_fanout_mode(self.0);
    }
}

/// Everything one run contributes to the cross-mode comparison: the
/// achieved II, the placements (to detect same-trajectory runs), the
/// per-signal route footprints of every multi-sink signal, and the total
/// occupied MRRG cells.
struct Snapshot {
    achieved_ii: Option<u32>,
    placements: Option<Vec<Option<(PeId, u32)>>>,
    /// node index of each multi-sink signal -> distinct routing cells.
    signal_footprints: BTreeMap<usize, usize>,
    used_cells: usize,
}

/// Distinct routing cells per multi-sink signal: the per-edge arm counts a
/// cell once per branch that rides it, the tree arm once per trunk — so
/// this is exactly the quantity trunk sharing is supposed to shrink.
fn per_signal_footprints(dfg: &Dfg, mapping: &Mapping) -> BTreeMap<usize, usize> {
    let mut out = BTreeMap::new();
    for node in dfg.node_ids() {
        let routed: Vec<_> = dfg
            .out_edges(node)
            .filter_map(|e| mapping.route(e.id()))
            .collect();
        if routed.len() < 2 {
            continue;
        }
        let cells: HashSet<Resource> = routed
            .iter()
            .flat_map(|r| r.resources().iter().copied())
            .collect();
        out.insert(node.index(), cells.len());
    }
    out
}

fn snapshot(dfg: &Dfg, out: &MapOutcome) -> Snapshot {
    Snapshot {
        achieved_ii: out.stats.achieved_ii,
        placements: out
            .mapping
            .as_ref()
            .map(|m| dfg.node_ids().map(|n| m.placement(n)).collect()),
        signal_footprints: out
            .mapping
            .as_ref()
            .map(|m| per_signal_footprints(dfg, m))
            .unwrap_or_default(),
        used_cells: out
            .mapping
            .as_ref()
            .map_or(0, |m| m.occupancy().used_cells()),
    }
}

/// Deterministic caps bind, the wall clock never does (same idiom as
/// `tests/route_pruning_mappers.rs`).
fn limits_for(dfg: &Dfg, cgra: &Cgra) -> Option<MapLimits> {
    let mii = dfg.mii(cgra)?;
    Some(
        MapLimits::fast()
            .with_seed(0xFACADE)
            .with_ii_time_budget(Duration::from_secs(600))
            .with_max_ii(mii + 1),
    )
}

/// Deterministically-capped mappers with enough search budget to actually
/// map the routable subset of the suite (the `differential_mappers` caps
/// are tuned for coverage of the *search*, not for producing mappings —
/// under them the whole golden suite comes out unmapped, which would make
/// every footprint gate below vacuous). Caps still bind before the wall
/// clock, so runs stay byte-deterministic.
fn routable_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(RewireMapper::with_config(RewireConfig {
            max_restarts_per_ii: 2,
            ..Default::default()
        })),
        Box::new(PathFinderMapper::with_config(PathFinderConfig {
            max_full_evals: 40,
            ..Default::default()
        })),
    ]
}

/// Kernels at least one mapping-capable config reliably maps on
/// `paper_4x4_r4` at `mii + 1` (measured; the rest of the suite needs
/// higher IIs than the deterministic sweep explores and is covered by the
/// capped monotonicity tests instead).
const ROUTABLE_KERNELS: [&str; 6] = [
    "gramschmidt",
    "jacobi2d",
    "stencil3d",
    "fir",
    "sobel",
    "kmeans",
];

/// The benchmark suite plus unroll-by-2 variants of the fan-out-heavy
/// kernels the acceptance gate names.
fn suite_with_unrolled() -> Vec<(String, Dfg)> {
    let mut suite: Vec<(String, Dfg)> = kernels::all()
        .into_iter()
        .map(|(n, d)| (n.to_string(), d))
        .collect();
    for base in FANOUT_HEAVY_BASES {
        let name = format!("{base}(u)");
        let dfg = kernels::by_name(&name).expect("unroll variant exists");
        suite.push((name, dfg));
    }
    suite
}

/// Kernels whose broadcast hubs (taps, shared pixel loads, stencil
/// centers) the tree router must visibly consolidate.
const FANOUT_HEAVY_BASES: [&str; 3] = ["fir", "conv2d", "stencil3d"];

fn is_fanout_heavy(name: &str) -> bool {
    FANOUT_HEAVY_BASES
        .iter()
        .any(|b| name == *b || name.strip_suffix("(u)") == Some(b))
}

/// Cumulative `router.tree_reuse` over every scope (the engine rescopes
/// runs to `mapper/kernel`, so totals must be read as deltas under
/// `MODE_LOCK`).
fn total_tree_reuse() -> u64 {
    let snap = obs::metrics().snapshot();
    snap.scopes
        .values()
        .filter_map(|s| s.counters.get("router.tree_reuse").copied())
        .sum()
}

/// Both arms of one mapper × kernel comparison; `matched` marks pairs that
/// mapped at the same II with identical placements — the precondition for
/// the footprint gates (which [`compare_modes`] applies before returning).
struct Compared {
    per_edge: Snapshot,
    tree: Snapshot,
    matched: bool,
}

/// Runs one mapper on one kernel under both modes and applies the
/// monotonicity + semantics gates.
fn compare_modes(
    mapper: &dyn Mapper,
    name: &str,
    dfg: &Dfg,
    cgra: &Cgra,
    sim_seed: u64,
) -> Option<Compared> {
    let limits = limits_for(dfg, cgra)?;
    let per_edge = {
        let _mode = ModeGuard::set(FanoutMode::PerEdge);
        let out = mapper.map(dfg, cgra, &limits);
        if let Some(m) = &out.mapping {
            verify_semantics(dfg, cgra, m, &Inputs::new(sim_seed), 4)
                .unwrap_or_else(|e| panic!("{} on {name} (per-edge): {e}", mapper.name()));
        }
        snapshot(dfg, &out)
    };
    let tree = {
        let _mode = ModeGuard::set(FanoutMode::Tree);
        let out = mapper.map(dfg, cgra, &limits);
        if let Some(m) = &out.mapping {
            verify_semantics(dfg, cgra, m, &Inputs::new(sim_seed), 4)
                .unwrap_or_else(|e| panic!("{} on {name} (tree): {e}", mapper.name()));
        }
        snapshot(dfg, &out)
    };

    // Tree routing is free: it maps whatever per-edge maps, never at a
    // higher II. (Strictly lower is legal — subtree-delta repair can
    // finish an II the per-edge negotiation gave up on.)
    if let Some(pe_ii) = per_edge.achieved_ii {
        let tree_ii = tree.achieved_ii.unwrap_or_else(|| {
            panic!(
                "{} on {name}: tree mode lost a per-edge mapping",
                mapper.name()
            )
        });
        assert!(
            tree_ii <= pe_ii,
            "{} on {name}: tree II {tree_ii} > per-edge II {pe_ii}",
            mapper.name()
        );
    }

    // Same II + same placements ⇒ the runs routed the same placement
    // problem, and the footprint comparison is apples-to-apples.
    let matched = tree.achieved_ii == per_edge.achieved_ii
        && tree.placements.is_some()
        && tree.placements == per_edge.placements;
    if matched {
        for (signal, tree_cells) in &tree.signal_footprints {
            let pe_cells = per_edge.signal_footprints[signal];
            assert!(
                *tree_cells <= pe_cells,
                "{} on {name}: signal {signal} footprint grew ({tree_cells} > {pe_cells})",
                mapper.name()
            );
        }
        assert!(
            tree.used_cells <= per_edge.used_cells,
            "{} on {name}: total MRRG usage grew ({} > {})",
            mapper.name(),
            tree.used_cells,
            per_edge.used_cells
        );
    }
    Some(Compared {
        per_edge,
        tree,
        matched,
    })
}

/// The full benchmark suite under the capped differential mappers: mostly
/// a *search-coverage* sweep (under these caps the golden suite comes out
/// unmapped — the mapping-capable gates live in
/// `routable_kernels_tree_mode_strictly_saves`), gating that the tree arm
/// never loses a mapping, never raises an II, and stays semantics-clean
/// wherever anything does map.
#[test]
fn kernel_suite_tree_mode_is_monotone_and_semantics_preserving() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cgra = presets::paper_4x4_r4();
    let suite = suite_with_unrolled();
    assert!(suite.len() >= 30, "the full benchmark suite");
    let mut comparisons = 0usize;
    for mapper in differential_mappers() {
        for (i, (name, dfg)) in suite.iter().enumerate() {
            if compare_modes(mapper.as_ref(), name, dfg, &cgra, 0x5EED ^ i as u64).is_some() {
                comparisons += 1;
            }
        }
    }
    assert!(comparisons >= 120, "only {comparisons} mode pairs ran");
}

/// The mapping-capable differential: on the kernels the deterministic
/// full-budget configs reliably map, tree mode must match placements and
/// II, shrink per-signal footprints monotonically (gated inside
/// `compare_modes`), actually share trunk cells, and *strictly* reduce
/// total MRRG usage on the fan-out-heavy kernels.
#[test]
fn routable_kernels_tree_mode_strictly_saves() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cgra = presets::paper_4x4_r4();
    let reuse_before = total_tree_reuse();
    let mut mapped_pairs = 0usize;
    let (mut suite_pe, mut suite_tree) = (0usize, 0usize);
    let (mut heavy_pe, mut heavy_tree) = (0usize, 0usize);
    for mapper in routable_mappers() {
        for (i, name) in ROUTABLE_KERNELS.iter().enumerate() {
            let dfg = kernels::by_name(name).expect("known kernel");
            let Some(cmp) = compare_modes(mapper.as_ref(), name, &dfg, &cgra, 0x5EED ^ i as u64)
            else {
                continue;
            };
            if !cmp.matched || cmp.tree.placements.is_none() {
                continue;
            }
            mapped_pairs += 1;
            suite_pe += cmp.per_edge.used_cells;
            suite_tree += cmp.tree.used_cells;
            if is_fanout_heavy(name) {
                heavy_pe += cmp.per_edge.used_cells;
                heavy_tree += cmp.tree.used_cells;
            }
        }
    }
    // Vacuity guards: enough pairs must genuinely have mapped with equal
    // placements (measured: Rewire maps all six, PF* three of them), the
    // tree router must actually have shared trunks, and the sharing must
    // pay off strictly on the fan-out-heavy kernels (and in aggregate).
    assert!(mapped_pairs >= 8, "only {mapped_pairs} mapped pairs");
    assert!(
        total_tree_reuse() > reuse_before,
        "tree mode never reused a trunk cell across the routable suite"
    );
    assert!(
        heavy_tree < heavy_pe,
        "no strict MRRG-usage reduction on fan-out-heavy kernels ({heavy_tree} vs {heavy_pe})"
    );
    assert!(
        suite_tree < suite_pe,
        "no strict MRRG-usage reduction across the routable suite ({suite_tree} vs {suite_pe})"
    );
}

/// The remaining paper presets, swept with the capped Rewire and PF*
/// mappers: the never-lose / never-raise-an-II / semantics gates (applied
/// inside `compare_modes`) must hold on every fabric the golden suite
/// pins, not just the baseline.
#[test]
fn preset_sweep_tree_mode_is_monotone() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fabrics: [(&str, Cgra); 3] = [
        ("paper_8x8_r4", presets::paper_8x8_r4()),
        ("paper_4x4_r2", presets::paper_4x4_r2()),
        ("paper_4x4_r1", presets::paper_4x4_r1()),
    ];
    let suite = suite_with_unrolled();
    let mappers = differential_mappers();
    let mut comparisons = 0usize;
    for (preset_name, cgra) in &fabrics {
        for mapper in mappers.iter().take(2) {
            for (i, (name, dfg)) in suite.iter().enumerate() {
                let label = format!("{name}@{preset_name}");
                if compare_modes(mapper.as_ref(), &label, dfg, cgra, 0x5EED ^ i as u64).is_some() {
                    comparisons += 1;
                }
            }
        }
    }
    assert!(comparisons >= 120, "only {comparisons} mode pairs ran");
}

/// The five-mapper differential on the checked-in fuzz corpus: the hub
/// reproducers in the corpus replay under both modes with the same
/// monotone guarantees (the corpus scenarios are small enough that the
/// exact SAT backend participates too).
#[test]
fn fuzz_corpus_tree_mode_is_monotone() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("fuzz/corpus exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dfg"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "corpus holds at least 5 artifacts");
    let mut mappers = differential_mappers();
    mappers.push(Box::new(ExactSatMapper::new()));
    assert!(mappers.len() >= 5, "all five mappers participate");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let artifact = rewire_fuzz::Artifact::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let scenario = rewire_fuzz::Scenario::from_parts(
            artifact.seed,
            artifact.dfg.clone(),
            artifact.spec.clone(),
        );
        let label = path.file_name().unwrap().to_string_lossy().to_string();
        for mapper in &mappers {
            let _ = compare_modes(
                mapper.as_ref(),
                &label,
                &scenario.dfg,
                &scenario.cgra,
                scenario.input_seed(),
            );
        }
    }
}

/// The divergence artifacts (note tagged `subtree-delta`) pin the class
/// of scenarios the tree router exists for: the capped per-edge PF* gives
/// up at an II the tree arm maps, and the SAT oracle certifies that II is
/// genuinely feasible — so the per-edge failure is a router limitation,
/// not an infeasible ask. Replaying each artifact must reproduce all three
/// facts, plus golden-model semantics of the tree mapping.
#[test]
fn corpus_divergence_artifacts_need_tree_routing() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("fuzz/corpus exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dfg"))
        .collect();
    paths.sort();
    let pf = || {
        PathFinderMapper::with_config(PathFinderConfig {
            max_iterations_per_ii: 60,
            max_full_evals: 6,
            ..Default::default()
        })
    };
    let mut found = 0;
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let artifact = rewire_fuzz::Artifact::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if !artifact.note.contains("subtree-delta") {
            continue;
        }
        found += 1;
        let label = path.file_name().unwrap().to_string_lossy().to_string();
        let s = rewire_fuzz::Scenario::from_parts(
            artifact.seed,
            artifact.dfg.clone(),
            artifact.spec.clone(),
        );
        let mii = s
            .dfg
            .mii(&s.cgra)
            .expect("divergence artifacts are feasible");
        let limits = MapLimits::fast()
            .with_seed(s.mapper_seed())
            .with_ii_time_budget(Duration::from_secs(600))
            .with_max_ii(mii + 1);
        let per_edge = {
            let _mode = ModeGuard::set(FanoutMode::PerEdge);
            pf().map(&s.dfg, &s.cgra, &limits).stats.achieved_ii
        };
        let (tree, mapping) = {
            let _mode = ModeGuard::set(FanoutMode::Tree);
            let out = pf().map(&s.dfg, &s.cgra, &limits);
            (out.stats.achieved_ii, out.mapping)
        };
        assert_eq!(
            tree,
            Some(artifact.max_ii),
            "{label}: tree arm must map at the recorded II"
        );
        assert!(
            per_edge.is_none_or(|p| p > artifact.max_ii),
            "{label}: per-edge arm reached II {per_edge:?} <= {} — the \
             divergence this artifact pins has disappeared",
            artifact.max_ii
        );
        verify_semantics(
            &s.dfg,
            &s.cgra,
            mapping.as_ref().unwrap(),
            &Inputs::new(s.input_seed()),
            8,
        )
        .unwrap_or_else(|e| panic!("{label}: tree mapping fails the golden model: {e}"));
        // The SAT oracle certifies the tree II is genuinely feasible.
        let exact = ExactSatMapper::new().map(
            &s.dfg,
            &s.cgra,
            &MapLimits::fast()
                .with_seed(s.mapper_seed())
                .with_ii_time_budget(Duration::from_secs(600))
                .with_max_ii(artifact.max_ii),
        );
        assert_eq!(
            exact.stats.achieved_ii,
            Some(artifact.max_ii),
            "{label}: SAT backend must confirm feasibility at the tree II"
        );
    }
    assert!(
        found >= 3,
        "only {found} divergence artifacts in the corpus"
    );
}

/// Prints the per-kernel tree-vs-per-edge II and MRRG-usage table that
/// EXPERIMENTS.md quotes. Ignored by default (it is a measurement, not a
/// gate); regenerate with:
///
/// ```text
/// cargo test --test route_tree_mappers -- --ignored --nocapture
/// ```
#[test]
#[ignore = "measurement for EXPERIMENTS.md, not a gate"]
fn print_usage_table() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cgra = presets::paper_4x4_r4();
    let mapper = &routable_mappers()[0]; // deterministic full-budget Rewire
    println!("| kernel | II (pe/tree) | cells (pe) | cells (tree) | saved |");
    println!("|---|---|---:|---:|---:|");
    let (mut tp, mut tt) = (0usize, 0usize);
    for (i, (name, dfg)) in suite_with_unrolled().iter().enumerate() {
        let Some(cmp) = compare_modes(mapper.as_ref(), name, dfg, &cgra, 0x5EED ^ i as u64) else {
            println!("| {name} | infeasible | - | - | - |");
            continue;
        };
        if !cmp.matched || cmp.tree.placements.is_none() {
            println!(
                "| {name} | unmapped or diverged (ii {:?}/{:?}) | - | - | - |",
                cmp.per_edge.achieved_ii, cmp.tree.achieved_ii
            );
            continue;
        }
        let (pe, tree) = (&cmp.per_edge, &cmp.tree);
        tp += pe.used_cells;
        tt += tree.used_cells;
        let saved = 100.0 * (pe.used_cells - tree.used_cells) as f64 / pe.used_cells.max(1) as f64;
        println!(
            "| {name} | {}/{} | {} | {} | {saved:.1} % |",
            pe.achieved_ii.unwrap_or(0),
            tree.achieved_ii.unwrap_or(0),
            pe.used_cells,
            tree.used_cells
        );
    }
    let saved = 100.0 * (tp - tt) as f64 / tp.max(1) as f64;
    println!("| **total** | | **{tp}** | **{tt}** | **{saved:.1} %** |");
}

/// Hunts the fuzz seed space for scenarios where the capped per-edge PF*
/// gives up at an II the tree router maps (the subtree-delta rescue), then
/// shrinks each hit and prints a ready-to-commit corpus artifact. Ignored
/// by default (it is a corpus-mining tool, not a gate); run with:
///
/// ```text
/// cargo test --test route_tree_mappers hunt -- --ignored --nocapture
/// ```
#[test]
#[ignore = "corpus-mining tool, not a gate"]
fn hunt_tree_vs_per_edge_divergence() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pf = || {
        PathFinderMapper::with_config(PathFinderConfig {
            max_iterations_per_ii: 60,
            max_full_evals: 6,
            ..Default::default()
        })
    };
    // Some(tree_ii) when the tree arm strictly beats the per-edge arm.
    let divergence = |dfg: &Dfg, cgra: &Cgra, mapper_seed: u64| -> Option<(Option<u32>, u32)> {
        let mii = dfg.mii(cgra)?;
        let limits = MapLimits::fast()
            .with_seed(mapper_seed)
            .with_ii_time_budget(Duration::from_secs(600))
            .with_max_ii(mii + 1);
        let pe = {
            let _mode = ModeGuard::set(FanoutMode::PerEdge);
            pf().map(dfg, cgra, &limits).stats.achieved_ii
        };
        let tr = {
            let _mode = ModeGuard::set(FanoutMode::Tree);
            pf().map(dfg, cgra, &limits).stats.achieved_ii
        };
        match (pe, tr) {
            (None, Some(t)) => Some((None, t)),
            (Some(p), Some(t)) if t < p => Some((Some(p), t)),
            _ => None,
        }
    };
    let mut hits = 0;
    for seed in 0..12_000u64 {
        let s = rewire_fuzz::Scenario::generate(seed);
        let Some((pe, tree_ii)) = divergence(&s.dfg, &s.cgra, s.mapper_seed()) else {
            continue;
        };
        hits += 1;
        println!(
            "== seed {seed}: per-edge {pe:?}, tree II {tree_ii} ({})",
            s.summary()
        );
        // Shrink while the divergence (tree maps, per-edge does not, at
        // the *original* mapper seed) persists.
        let mapper_seed = s.mapper_seed();
        let shrunk = rewire_fuzz::shrink(
            &s.dfg,
            &s.spec,
            &mut |d, spec| {
                spec.build()
                    .ok()
                    .and_then(|c| divergence(d, &c, mapper_seed))
                    .is_some()
            },
            400,
        );
        let cgra = shrunk.spec.build().expect("shrunk spec builds");
        let (pe, tree_ii) = divergence(&shrunk.dfg, &cgra, mapper_seed).expect("still diverges");
        // The SAT oracle must certify the scenario is genuinely feasible
        // at the II the tree arm reaches.
        let exact = ExactSatMapper::new().map(
            &shrunk.dfg,
            &cgra,
            &MapLimits::fast()
                .with_seed(mapper_seed)
                .with_ii_time_budget(Duration::from_secs(600))
                .with_max_ii(tree_ii),
        );
        let feasible = exact.stats.achieved_ii == Some(tree_ii);
        let artifact = rewire_fuzz::Artifact {
            seed,
            spec: shrunk.spec.clone(),
            max_ii: tree_ii,
            expect: rewire_fuzz::Expectation::Pass,
            note: format!(
                "fan-out hub: per-edge PF* gives up ({pe:?}) at II {tree_ii}; \
                 subtree-delta tree routing maps it (SAT-confirmed feasible: {feasible})"
            ),
            shrink_steps: shrunk.steps.len() as u32,
            dfg: shrunk.dfg.clone(),
        };
        println!(
            "--- artifact ({} shrink steps, sat-feasible {feasible}) ---",
            shrunk.steps.len()
        );
        print!("{}", artifact.to_text());
        println!("--- end ---");
        if hits >= 6 {
            break;
        }
    }
    println!("{hits} divergent seeds found");
}
