//! API-guideline conformance checks (C-SEND-SYNC, C-COMMON-TRAITS): the
//! data types downstream users hold across threads must be Send + Sync.

use rewire::prelude::*;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<Cgra>();
    assert_send_sync::<Dfg>();
    assert_send_sync::<Mapping>();
    assert_send_sync::<Mrrg>();
    assert_send_sync::<Occupancy>();
    assert_send_sync::<RewireMapper>();
    assert_send_sync::<PathFinderMapper>();
    assert_send_sync::<SaMapper>();
    assert_send_sync::<MapLimits>();
    assert_send_sync::<MapStats>();
    assert_send_sync::<RewireStats>();
    assert_send_sync::<Inputs>();
}

#[test]
fn errors_are_well_behaved() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<rewire::arch::BuildCgraError>();
    assert_error::<rewire::dfg::GraphError>();
    assert_error::<rewire::dfg::ParseDfgError>();
    assert_error::<rewire::mrrg::RouteError>();
    assert_error::<rewire::sim::SimError>();
}

#[test]
fn mappers_can_run_on_worker_threads() {
    use std::time::Duration;
    let handles: Vec<_> = ["fir", "atax"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                let cgra = presets::paper_4x4_r4();
                let dfg = kernels::by_name(name).unwrap();
                let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(800));
                let out = PathFinderMapper::new().map(&dfg, &cgra, &limits);
                out.mapping.map(|m| {
                    assert!(m.is_valid(&dfg, &cgra));
                    m.ii()
                })
            })
        })
        .collect();
    for h in handles {
        let _ = h.join().expect("no panics on worker threads");
    }
}
