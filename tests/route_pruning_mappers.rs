//! Mapper-level differential route-equivalence: flipping the router's
//! sweep mode between [`RouterMode::Dense`] and [`RouterMode::Pruned`]
//! must leave every mapper's output byte-identical — achieved II,
//! iteration counts, every placement AND every route — across the full
//! kernel suite and the checked-in fuzz corpus. The router-level
//! counterpart (randomized single routes) lives in
//! `crates/mrrg/tests/route_pruning.rs`.
//!
//! The router mode is a process-wide global (the portfolio workers route
//! from fresh threads), so the tests in this binary serialize on a mutex
//! and restore the default before releasing it.

use rewire::prelude::*;
use rewire_fuzz::differential_mappers;
use rewire_mrrg::{set_default_router_mode, Route, RouterMode};
use rewire_obs as obs;
use std::sync::Mutex;
use std::time::Duration;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Restores the previous default router mode on drop, so a failing
/// assertion cannot leak Dense mode into the other test.
struct ModeGuard(RouterMode);

impl ModeGuard {
    fn set(mode: RouterMode) -> Self {
        Self(set_default_router_mode(mode))
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_default_router_mode(self.0);
    }
}

/// The complete observable output of a run: search stats, placements, and
/// the byte-for-byte routes of every edge.
#[derive(Debug, PartialEq)]
struct FullFingerprint {
    achieved_ii: Option<u32>,
    iis_explored: u32,
    remap_iterations: u64,
    placements: Option<Vec<Option<(PeId, u32)>>>,
    routes: Option<Vec<Option<Route>>>,
}

fn full_fingerprint(dfg: &Dfg, out: &MapOutcome) -> FullFingerprint {
    FullFingerprint {
        achieved_ii: out.stats.achieved_ii,
        iis_explored: out.stats.iis_explored,
        remap_iterations: out.stats.remap_iterations,
        placements: out
            .mapping
            .as_ref()
            .map(|m| dfg.node_ids().map(|n| m.placement(n)).collect()),
        routes: out
            .mapping
            .as_ref()
            .map(|m| dfg.edges().map(|e| m.route(e.id()).cloned()).collect()),
    }
}

/// Deterministic caps bind, the wall clock never does (same idiom as
/// `tests/engine_determinism.rs`) — the precondition for byte-identical
/// cross-mode comparison.
fn limits_for(dfg: &Dfg, cgra: &Cgra) -> Option<MapLimits> {
    let mii = dfg.mii(cgra)?;
    Some(
        MapLimits::fast()
            .with_seed(0xFACADE)
            .with_ii_time_budget(Duration::from_secs(600))
            .with_max_ii(mii + 1),
    )
}

/// Cumulative `router.expansions` over every scope. The engine rescopes
/// each run to `mapper/kernel` (scopes replace, they do not nest), so
/// attributing a single run means taking before/after deltas of this
/// total while the suite holds `MODE_LOCK`.
fn total_expansions() -> u64 {
    let snap = obs::metrics().snapshot();
    snap.scopes
        .values()
        .filter_map(|s| s.counters.get("router.expansions").copied())
        .sum()
}

#[test]
fn kernel_suite_is_byte_identical_across_router_modes() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cgra = presets::paper_4x4_r4();
    let suite = kernels::all();
    assert!(suite.len() >= 30, "the full benchmark suite");
    let (mut suite_dense, mut suite_pruned) = (0u64, 0u64);
    for mapper in differential_mappers() {
        for (name, dfg) in &suite {
            let Some(limits) = limits_for(dfg, &cgra) else {
                continue;
            };
            let before_dense = total_expansions();
            let dense = {
                let _mode = ModeGuard::set(RouterMode::Dense);
                full_fingerprint(dfg, &mapper.map(dfg, &cgra, &limits))
            };
            let before_pruned = total_expansions();
            let pruned = {
                let _mode = ModeGuard::set(RouterMode::Pruned);
                full_fingerprint(dfg, &mapper.map(dfg, &cgra, &limits))
            };
            let after = total_expansions();
            assert_eq!(
                dense,
                pruned,
                "{} on {name}: router modes diverged",
                mapper.name()
            );
            // Pruning must only ever remove work. (Equality is possible on
            // kernels the mapper resolves without long-haul routes.)
            let d = before_pruned - before_dense;
            let p = after - before_pruned;
            assert!(
                p <= d,
                "{} on {name}: pruned router expanded more ({p} > {d})",
                mapper.name()
            );
            suite_dense += d;
            suite_pruned += p;
        }
    }
    // Vacuity guard: a broken counter (or a scope change swallowing it)
    // would make every p <= d assertion above trivially true.
    assert!(
        suite_dense > 0,
        "no dense expansions recorded across the suite"
    );
    assert!(
        suite_pruned < suite_dense,
        "pruning saved no work across the whole suite ({suite_pruned} vs {suite_dense})"
    );
}

/// Prints the per-kernel `router.expansions` dense-vs-pruned table that
/// EXPERIMENTS.md quotes. Ignored by default (it is a measurement, not a
/// gate); regenerate with:
///
/// ```text
/// cargo test --test route_pruning_mappers -- --ignored --nocapture
/// ```
#[test]
#[ignore = "measurement for EXPERIMENTS.md, not a gate"]
fn print_expansion_table() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cgra = presets::paper_4x4_r4();
    let mapper = &differential_mappers()[0]; // capped Rewire
    println!("| kernel | dense | pruned | saved |");
    println!("|---|---:|---:|---:|");
    let (mut td, mut tp) = (0u64, 0u64);
    for (name, dfg) in &kernels::all() {
        let Some(limits) = limits_for(dfg, &cgra) else {
            continue;
        };
        let before_dense = total_expansions();
        {
            let _mode = ModeGuard::set(RouterMode::Dense);
            mapper.map(dfg, &cgra, &limits);
        }
        let before_pruned = total_expansions();
        {
            let _mode = ModeGuard::set(RouterMode::Pruned);
            mapper.map(dfg, &cgra, &limits);
        }
        let d = before_pruned - before_dense;
        let p = total_expansions() - before_pruned;
        td += d;
        tp += p;
        let saved = 100.0 * (d.saturating_sub(p)) as f64 / (d.max(1)) as f64;
        println!("| {name} | {d} | {p} | {saved:.1} % |");
    }
    let saved = 100.0 * (td.saturating_sub(tp)) as f64 / (td.max(1)) as f64;
    println!("| **total** | **{td}** | **{tp}** | **{saved:.1} %** |");
}

/// The checked-in fuzz corpus replays identically under both modes: same
/// mapper outcomes, placements and routes for every artifact.
#[test]
fn fuzz_corpus_is_byte_identical_across_router_modes() {
    let _serial = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("fuzz/corpus exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dfg"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "corpus holds at least 5 artifacts");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let artifact = rewire_fuzz::Artifact::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let scenario = rewire_fuzz::Scenario::from_parts(
            artifact.seed,
            artifact.dfg.clone(),
            artifact.spec.clone(),
        );
        let limits = limits_for(&scenario.dfg, &scenario.cgra);
        let Some(limits) = limits else { continue };
        for mapper in differential_mappers() {
            let dense = {
                let _mode = ModeGuard::set(RouterMode::Dense);
                full_fingerprint(
                    &scenario.dfg,
                    &mapper.map(&scenario.dfg, &scenario.cgra, &limits),
                )
            };
            let pruned = {
                let _mode = ModeGuard::set(RouterMode::Pruned);
                full_fingerprint(
                    &scenario.dfg,
                    &mapper.map(&scenario.dfg, &scenario.cgra, &limits),
                )
            };
            assert_eq!(
                dense,
                pruned,
                "{} on {}: router modes diverged",
                mapper.name(),
                path.display()
            );
        }
    }
}
