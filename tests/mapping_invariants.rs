//! Property-based integration tests: mapping invariants over randomly
//! generated DFGs.

use proptest::prelude::*;
use rewire::dfg::generate::{random_dfg, RandomDfgParams};
use rewire::prelude::*;
use std::time::Duration;

fn params(nodes: usize, mem: f64) -> RandomDfgParams {
    RandomDfgParams {
        nodes,
        memory_fraction: mem,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any mapping Rewire returns validates cleanly, for arbitrary DFGs.
    #[test]
    fn rewire_output_always_validates(seed in 0u64..5000, nodes in 8usize..22) {
        let dfg = random_dfg(&params(nodes, 0.15), seed);
        let cgra = presets::paper_4x4_r4();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(600));
        let outcome = RewireMapper::new().map(&dfg, &cgra, &limits);
        if let Some(m) = outcome.mapping {
            prop_assert!(m.is_valid(&dfg, &cgra));
            prop_assert!(m.ii() >= outcome.stats.mii);
        }
    }

    /// The baselines obey the same contract.
    #[test]
    fn baseline_outputs_always_validate(seed in 0u64..5000, nodes in 8usize..18) {
        let dfg = random_dfg(&params(nodes, 0.1), seed);
        let cgra = presets::paper_4x4_r4();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(400));
        for mapper in [&PathFinderMapper::new() as &dyn Mapper, &SaMapper::new()] {
            let outcome = mapper.map(&dfg, &cgra, &limits);
            if let Some(m) = outcome.mapping {
                prop_assert!(m.is_valid(&dfg, &cgra), "{}", mapper.name());
            }
        }
    }

    /// MII is a true lower bound: no mapper ever returns a smaller II.
    #[test]
    fn mii_is_a_lower_bound(seed in 0u64..5000) {
        let dfg = random_dfg(&params(16, 0.2), seed);
        let cgra = presets::paper_4x4_r2();
        let mii = dfg.mii(&cgra).unwrap();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(400));
        let outcome = RewireMapper::new().map(&dfg, &cgra, &limits);
        if let Some(ii) = outcome.stats.achieved_ii {
            prop_assert!(ii >= mii);
        }
    }

    /// Unrolling preserves validity and scales node count.
    #[test]
    fn unrolling_preserves_structure(seed in 0u64..5000, factor in 1u32..4) {
        let dfg = random_dfg(&params(12, 0.1), seed);
        let u = dfg.unroll(factor);
        prop_assert!(u.validate().is_ok());
        prop_assert_eq!(u.num_nodes(), dfg.num_nodes() * factor as usize);
        prop_assert_eq!(u.num_edges(), dfg.num_edges() * factor as usize);
    }
}
