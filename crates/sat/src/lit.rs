//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, allocated by [`Solver::new_var`].
///
/// [`Solver::new_var`]: crate::Solver::new_var
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(u32);

impl Var {
    /// Builds a variable from its dense index. Only meaningful for indices
    /// previously handed out by a solver or a [`Dimacs`](crate::Dimacs)
    /// instance.
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index fits in u32"))
    }

    /// Dense index, `0..num_vars`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + sign` so literals index flat watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn positive(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn negative(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// `v` when `positive`, `¬v` otherwise.
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code `2 * var + sign`, for flat per-literal tables.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Parses a DIMACS literal: `3` → `x2` positive, `-3` → `x2` negated
    /// (DIMACS variables are 1-based). Returns `None` for `0`.
    pub fn from_dimacs(n: i64) -> Option<Lit> {
        if n == 0 {
            return None;
        }
        let v = Var::from_index((n.unsigned_abs() - 1) as usize);
        Some(Lit::new(v, n > 0))
    }

    /// The 1-based signed DIMACS form of this literal.
    pub fn to_dimacs(self) -> i64 {
        let n = self.var().index() as i64 + 1;
        if self.is_positive() {
            n
        } else {
            -n
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.code(), 14);
        assert_eq!(n.code(), 15);
        assert_eq!(Lit::new(v, true), p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn dimacs_literals_are_one_based_and_signed() {
        assert_eq!(Lit::from_dimacs(0), None);
        let p = Lit::from_dimacs(3).unwrap();
        assert_eq!(p.var().index(), 2);
        assert!(p.is_positive());
        assert_eq!(p.to_dimacs(), 3);
        let n = Lit::from_dimacs(-1).unwrap();
        assert_eq!(n.var().index(), 0);
        assert!(!n.is_positive());
        assert_eq!(n.to_dimacs(), -1);
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(3);
        assert_eq!(format!("{}", Lit::positive(v)), "x3");
        assert_eq!(format!("{}", Lit::negative(v)), "!x3");
    }
}
