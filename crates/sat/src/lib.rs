//! Deterministic CDCL SAT solver for the exact mapping backend.
//!
//! Self-contained (no crates-io dependencies, like the vendored `rand` /
//! `proptest` stand-ins) and deliberately small: the goal is not to compete
//! with industrial solvers but to give the workspace a *trustworthy*
//! SAT/UNSAT verdict it can replay bit-for-bit. The solver therefore makes
//! three hard guarantees:
//!
//! 1. **Determinism.** No wall-clock, no randomness, no pointer-order
//!    iteration. Two runs over the same clause set perform the identical
//!    sequence of decisions, propagations, conflicts, and restarts, and
//!    return the identical model or refutation. Ties in the activity order
//!    break toward the lower variable index.
//! 2. **Budgeted verdicts.** [`Solver::solve_limited`] caps work by
//!    *conflict count* — a deterministic measure — and reports
//!    [`SolveResult::Unknown`] when the cap is hit, so callers can
//!    distinguish "proved unsatisfiable" from "gave up".
//! 3. **Checkable models.** After [`SolveResult::Sat`] every variable has a
//!    value ([`Solver::value`]), and the model is re-verified against every
//!    input clause before the solver returns.
//!
//! The implementation is the classic MiniSat recipe: two-literal watches
//! with blockers, first-UIP conflict analysis, VSIDS variable activity with
//! phase saving, Luby-sequence restarts, and activity-based learnt-clause
//! reduction.
//!
//! # Example
//!
//! ```
//! use rewire_sat::{Lit, SolveResult, Solver};
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! s.add_clause(&[Lit::negative(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(a), Some(false));
//! assert_eq!(s.value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dimacs;
mod dpll;
mod lit;
mod solver;

pub use dimacs::{parse_dimacs, render_dimacs, Dimacs};
pub use dpll::dpll_satisfiable;
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
