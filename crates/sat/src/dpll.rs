//! Naive DPLL reference solver.
//!
//! Deliberately simple — recursive unit propagation plus
//! first-unassigned-variable branching, no learning, no heuristics — so it
//! can serve as an *independent* correctness oracle for the CDCL core in
//! the property tests. Exponential; keep instances small (≲ 40 variables).

use crate::Lit;

/// Decides satisfiability of `clauses` over `num_vars` variables with a
/// textbook DPLL search. Returns `true` iff some assignment satisfies
/// every clause.
pub fn dpll_satisfiable(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    let mut assign: Vec<Option<bool>> = vec![None; num_vars];
    for c in clauses {
        for l in c {
            assert!(l.var().index() < num_vars, "literal out of range: {l}");
        }
    }
    dpll(clauses, &mut assign)
}

fn lit_state(assign: &[Option<bool>], l: Lit) -> Option<bool> {
    assign[l.var().index()].map(|v| v == l.is_positive())
}

/// Unit propagation to fixpoint. Returns `false` on an empty clause, and
/// the list of variables it assigned (for undo) via `trail`.
fn propagate(clauses: &[Vec<Lit>], assign: &mut [Option<bool>], trail: &mut Vec<usize>) -> bool {
    loop {
        let mut changed = false;
        for c in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut open = 0usize;
            for &l in c {
                match lit_state(assign, l) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        open += 1;
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match (open, unassigned) {
                (0, _) => return false, // falsified clause
                (1, Some(l)) => {
                    assign[l.var().index()] = Some(l.is_positive());
                    trail.push(l.var().index());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return true;
        }
    }
}

fn dpll(clauses: &[Vec<Lit>], assign: &mut Vec<Option<bool>>) -> bool {
    let mut trail: Vec<usize> = Vec::new();
    if !propagate(clauses, assign, &mut trail) {
        for v in trail {
            assign[v] = None;
        }
        return false;
    }
    let Some(branch) = assign.iter().position(Option::is_none) else {
        // Complete assignment that survived propagation: a model.
        for v in trail {
            assign[v] = None;
        }
        return true;
    };
    for value in [false, true] {
        assign[branch] = Some(value);
        if dpll(clauses, assign) {
            assign[branch] = None;
            for v in trail {
                assign[v] = None;
            }
            return true;
        }
        assign[branch] = None;
    }
    for v in trail {
        assign[v] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ns: &[i64]) -> Vec<Lit> {
        ns.iter().map(|&n| Lit::from_dimacs(n).unwrap()).collect()
    }

    #[test]
    fn simple_verdicts() {
        assert!(dpll_satisfiable(0, &[]));
        assert!(dpll_satisfiable(2, &[lits(&[1, 2]), lits(&[-1])]));
        assert!(!dpll_satisfiable(1, &[lits(&[1]), lits(&[-1])]));
        assert!(!dpll_satisfiable(2, &[lits(&[])]));
    }

    #[test]
    fn pigeonhole_three_into_two() {
        let v = |p: i64, h: i64| (p - 1) * 2 + h;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for p in 1..=3 {
            clauses.push(lits(&[v(p, 1), v(p, 2)]));
        }
        for h in 1..=2 {
            for p1 in 1..=3 {
                for p2 in (p1 + 1)..=3 {
                    clauses.push(lits(&[-v(p1, h), -v(p2, h)]));
                }
            }
        }
        assert!(!dpll_satisfiable(6, &clauses));
    }
}
