//! DIMACS CNF parsing and rendering.
//!
//! The standard interchange format, so encoder output can be dumped,
//! inspected with external tools, and round-tripped in tests. The parser
//! accepts comment lines (`c …`), a `p cnf VARS CLAUSES` header, and
//! clauses as whitespace-separated signed integers terminated by `0`
//! (clauses may span lines).

use crate::Lit;
use std::fmt::Write as _;

/// A parsed CNF instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dimacs {
    /// Declared variable count (variables are `0..num_vars` after the
    /// 1-based DIMACS codes are shifted down).
    pub num_vars: usize,
    /// The clauses, in file order.
    pub clauses: Vec<Vec<Lit>>,
}

impl Dimacs {
    /// Builds a solver over this instance.
    pub fn into_solver(&self) -> crate::Solver {
        crate::Solver::from_clauses(self.num_vars, &self.clauses)
    }
}

/// Parses DIMACS CNF text.
///
/// Errors (as readable strings) on a missing/malformed header, literals
/// out of the declared range, an unterminated final clause, or a clause
/// count that disagrees with the header.
pub fn parse_dimacs(text: &str) -> Result<Dimacs, String> {
    let mut header: Option<(usize, usize)> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if header.is_some() {
                return Err(format!("line {}: duplicate header", lineno + 1));
            }
            let mut parts = rest.split_whitespace();
            let fmt = parts.next().unwrap_or_default();
            let vars = parts.next().and_then(|v| v.parse::<usize>().ok());
            let num_clauses = parts.next().and_then(|v| v.parse::<usize>().ok());
            match (fmt, vars, num_clauses, parts.next()) {
                ("cnf", Some(v), Some(c), None) => header = Some((v, c)),
                _ => return Err(format!("line {}: malformed header `{line}`", lineno + 1)),
            }
            continue;
        }
        let Some((num_vars, _)) = header else {
            return Err(format!("line {}: clause before header", lineno + 1));
        };
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad literal `{tok}`", lineno + 1))?;
            match Lit::from_dimacs(n) {
                None => clauses.push(std::mem::take(&mut current)),
                Some(l) => {
                    if l.var().index() >= num_vars {
                        return Err(format!(
                            "line {}: literal {n} outside declared {num_vars} variables",
                            lineno + 1
                        ));
                    }
                    current.push(l);
                }
            }
        }
    }
    let Some((num_vars, declared)) = header else {
        return Err("missing `p cnf` header".to_string());
    };
    if !current.is_empty() {
        return Err("unterminated final clause (missing trailing 0)".to_string());
    }
    if clauses.len() != declared {
        return Err(format!(
            "header declares {declared} clauses, file has {}",
            clauses.len()
        ));
    }
    Ok(Dimacs { num_vars, clauses })
}

/// Renders an instance as DIMACS CNF text (one clause per line,
/// `0`-terminated). `parse_dimacs(render_dimacs(..))` is the identity on
/// well-formed instances.
pub fn render_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {num_vars} {}", clauses.len());
    for clause in clauses {
        for l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        out.push('0');
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_comments_header_and_multiline_clauses() {
        let text = "c a comment\n\np cnf 3 2\n1 -2\n3 0\n-1 2 -3 0\n";
        let d = parse_dimacs(text).unwrap();
        assert_eq!(d.num_vars, 3);
        assert_eq!(d.clauses.len(), 2);
        assert_eq!(d.clauses[0].len(), 3, "clauses may span lines");
        assert_eq!(d.clauses[0][0].to_dimacs(), 1);
        assert_eq!(d.clauses[0][1].to_dimacs(), -2);
        assert_eq!(d.into_solver().solve(), SolveResult::Sat);
    }

    #[test]
    fn round_trips() {
        let text = "p cnf 4 3\n1 2 0\n-3 4 0\n-1 -2 -4 0\n";
        let d = parse_dimacs(text).unwrap();
        let rendered = render_dimacs(d.num_vars, &d.clauses);
        assert_eq!(parse_dimacs(&rendered).unwrap(), d);
        assert_eq!(rendered, text, "canonical form is stable");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_dimacs("").unwrap_err().contains("missing"));
        assert!(parse_dimacs("1 2 0\n").unwrap_err().contains("header"));
        assert!(parse_dimacs("p cnf 2\n").unwrap_err().contains("malformed"));
        assert!(parse_dimacs("p cnf 2 1\n1 3 0\n")
            .unwrap_err()
            .contains("outside"));
        assert!(parse_dimacs("p cnf 2 1\n1 2\n")
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_dimacs("p cnf 2 2\n1 0\n")
            .unwrap_err()
            .contains("declares"));
        assert!(parse_dimacs("p cnf 2 1\nx y 0\n")
            .unwrap_err()
            .contains("bad literal"));
        assert!(parse_dimacs("p cnf 1 0\np cnf 1 0\n")
            .unwrap_err()
            .contains("duplicate"));
    }
}
