//! The CDCL solver core.

use crate::{Lit, Var};

/// Sentinel clause reference: "no reason" (decision or axiom).
const CREF_NONE: u32 = u32::MAX;

/// Truth values in the dense assignment table.
const VAL_FALSE: u8 = 0;
const VAL_TRUE: u8 = 1;
const VAL_UNDEF: u8 = 2;

/// Conflicts between interrupt-callback polls (cheap, deterministic).
const POLL_MASK: u64 = 1023;

/// Base restart interval in conflicts; scaled by the Luby sequence.
const RESTART_BASE: u64 = 64;

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A model was found; read it back with [`Solver::value`].
    Sat,
    /// The clause set is unsatisfiable — a proof, not a timeout.
    Unsat,
    /// The conflict budget (or interrupt callback) fired first.
    Unknown,
}

/// Deterministic work counters, mirrored into `rewire-obs` by callers.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analysed (the budget unit).
    pub conflicts: u64,
    /// Single literal propagations.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt (including units).
    pub learnt_clauses: u64,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    activity: f64,
    learnt: bool,
    deleted: bool,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// Max-heap over variables ordered by activity, ties toward the lower
/// index — the determinism-critical piece of VSIDS.
#[derive(Default, Debug)]
struct VarOrder {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarOrder {
    fn ensure(&mut self, n: usize, activity: &[f64]) {
        while self.pos.len() < n {
            let v = self.pos.len() as u32;
            self.pos.push(usize::MAX);
            self.insert(v, activity);
        }
    }

    fn before(a: u32, b: u32, activity: &[f64]) -> bool {
        let (aa, ab) = (
            activity.get(a as usize).copied().unwrap_or(0.0),
            activity.get(b as usize).copied().unwrap_or(0.0),
        );
        aa > ab || (aa == ab && a < b)
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != usize::MAX
    }

    fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.up(self.heap.len() - 1, activity);
    }

    fn bump(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            self.up(self.pos[v as usize], activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.down(0, activity);
        }
        Some(top)
    }

    fn up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::before(self.heap[i], self.heap[parent], activity) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && Self::before(self.heap[l], self.heap[best], activity) {
                best = l;
            }
            if r < self.heap.len() && Self::before(self.heap[r], self.heap[best], activity) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

/// A deterministic CDCL solver. See the [crate docs](crate) for the
/// guarantees and the overall recipe.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    learnt_refs: Vec<u32>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    polarity: Vec<bool>,
    order: VarOrder,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    /// Learnt clauses tolerated before a reduction pass; grows geometrically.
    reduce_limit: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver (no variables, no clauses — trivially SAT).
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            polarity: Vec::new(),
            order: VarOrder::default(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            reduce_limit: 4000,
        }
    }

    /// Builds a solver over `num_vars` variables holding `clauses`.
    pub fn from_clauses(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(num_vars);
        for c in clauses {
            s.add_clause(c);
        }
        s
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(VAL_UNDEF);
        self.level.push(0);
        self.reason.push(CREF_NONE);
        self.activity.push(0.0);
        // Saved phase defaults to `false`: one-hot encodings are mostly
        // negative, so the first probe of a fresh variable rarely conflicts.
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.ensure(self.assign.len(), &self.activity);
        v
    }

    /// Allocates variables until at least `n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assign.len() < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learnt, live) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Work counters so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause. Returns `false` when the clause set is already known
    /// unsatisfiable at the root level (adding is then a no-op).
    ///
    /// Tautologies are dropped, duplicate literals merged, and root-level
    /// falsified literals removed. Must be called before [`solve`]; adding
    /// clauses between solve calls is not supported.
    ///
    /// # Panics
    ///
    /// Panics if any literal's variable was not allocated, or if called
    /// mid-search (non-root decision level).
    ///
    /// [`solve`]: Solver::solve
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses are added at the root");
        if !self.ok {
            return false;
        }
        // Normalise: sort (deterministic), merge duplicates, drop the
        // clause on p ∨ ¬p, and drop root-falsified / keep-free literals.
        let mut sorted: Vec<Lit> = lits.to_vec();
        for l in &sorted {
            assert!(l.var().index() < self.num_vars(), "unallocated {l}");
        }
        sorted.sort();
        sorted.dedup();
        let mut clause: Vec<Lit> = Vec::with_capacity(sorted.len());
        for (i, &l) in sorted.iter().enumerate() {
            if i + 1 < sorted.len() && sorted[i + 1] == !l {
                return true; // tautology
            }
            match self.lit_value(l) {
                VAL_TRUE => return true, // already satisfied at root
                VAL_FALSE => {}          // root-falsified: drop the literal
                _ => clause.push(l),
            }
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(clause[0], CREF_NONE);
                // Propagate eagerly so later add_clause calls see the
                // consequences and root-level UNSAT is caught immediately.
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(clause, false);
                true
            }
        }
    }

    /// Solves without a conflict budget. Deterministic; terminates because
    /// the clause set is finite, but may take exponential time.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(u64::MAX, &mut || false)
    }

    /// Solves under a *total* conflict budget (across the solver's
    /// lifetime, so repeated calls resume where the budget left off), with
    /// an interrupt callback polled every 1024 conflicts.
    ///
    /// `Sat` and `Unsat` are definitive; `Unknown` means the budget or the
    /// callback fired. The callback is for *secondary* wall-clock bail-outs
    /// only — for reproducible verdicts rely on the conflict budget.
    pub fn solve_limited(
        &mut self,
        max_conflicts: u64,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut restarts = 0u64;
        loop {
            let budget = luby(restarts) * RESTART_BASE;
            match self.search(budget, max_conflicts, should_stop) {
                Search::Sat => {
                    debug_assert!(self.model_satisfies_all(), "model re-check");
                    return SolveResult::Sat;
                }
                Search::Unsat => {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                Search::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
                Search::Stopped => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    /// The value of `v` in the current (complete after `Sat`) assignment.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            VAL_TRUE => Some(true),
            VAL_FALSE => Some(false),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Search.

    fn search(
        &mut self,
        restart_budget: u64,
        max_conflicts: u64,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Search {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    return Search::Unsat;
                }
                let (learnt, backtrack) = self.analyze(confl);
                self.cancel_until(backtrack);
                self.record_learnt(learnt);
                self.decay_activities();
                if self.stats.conflicts >= max_conflicts
                    || (self.stats.conflicts & POLL_MASK == 0 && should_stop())
                {
                    return Search::Stopped;
                }
            } else {
                if conflicts_here >= restart_budget {
                    return Search::Restart;
                }
                if self.learnt_refs.len() as u64 >= self.reduce_limit {
                    self.reduce_learnt_db();
                }
                match self.pick_branch_var() {
                    None => return Search::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.polarity[v.index()]);
                        self.unchecked_enqueue(lit, CREF_NONE);
                    }
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn lit_value(&self, l: Lit) -> u8 {
        match self.assign[l.var().index()] {
            VAL_UNDEF => VAL_UNDEF,
            v => {
                if l.is_positive() {
                    v
                } else {
                    v ^ 1
                }
            }
        }
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), VAL_UNDEF);
        let v = l.var().index();
        self.assign[v] = if l.is_positive() { VAL_TRUE } else { VAL_FALSE };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Propagates until fixpoint; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be visited now that p is true.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut keep = 0usize;
            let mut conflict = None;
            'watchers: for i in 0..ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == VAL_TRUE {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref as usize;
                let false_lit = !p;
                // Make sure the falsified watch sits in slot 1.
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == VAL_TRUE {
                    ws[keep] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[cref].lits.len() {
                    if self.lit_value(self.clauses[cref].lits[k]) != VAL_FALSE {
                        self.clauses[cref].lits.swap(1, k);
                        let new_watch = self.clauses[cref].lits[1];
                        self.watches[(!new_watch).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[keep] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                keep += 1;
                if self.lit_value(first) == VAL_FALSE {
                    // Conflict: keep remaining watchers and stop.
                    for j in i + 1..ws.len() {
                        ws[keep] = ws[j];
                        keep += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.cref);
                    break;
                }
                self.unchecked_enqueue(first, w.cref);
            }
            ws.truncate(keep);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::from_index(0))]; // slot 0 patched below
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = confl;
        let mut idx = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();
        loop {
            self.bump_clause(cref as usize);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref as usize].lits.len() {
                let q = self.clauses[cref as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the next marked trail literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            cref = self.reason[lit.var().index()];
            debug_assert_ne!(cref, CREF_NONE, "non-UIP literal has a reason");
        }
        learnt[0] = !p.expect("first UIP found");
        for v in to_clear {
            self.seen[v.index()] = false;
        }
        // Backtrack to the second-highest level in the clause; hoist that
        // literal into slot 1 so it becomes the other watch.
        if learnt.len() == 1 {
            return (learnt, 0);
        }
        let mut max_i = 1;
        for i in 2..learnt.len() {
            if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                max_i = i;
            }
        }
        learnt.swap(1, max_i);
        let backtrack = self.level[learnt[1].var().index()];
        (learnt, backtrack)
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learnt_clauses += 1;
        if learnt.len() == 1 {
            debug_assert_eq!(self.decision_level(), 0);
            self.unchecked_enqueue(learnt[0], CREF_NONE);
            return;
        }
        let asserting = learnt[0];
        let cref = self.attach_clause(learnt, true);
        self.bump_clause(cref as usize);
        self.unchecked_enqueue(asserting, cref);
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[(!lits[0]).code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
        });
        if learnt {
            self.learnt_refs.push(cref);
        }
        cref
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            // Phase saving: next decision on v re-tries this value.
            self.polarity[v.index()] = l.is_positive();
            self.assign[v.index()] = VAL_UNDEF;
            self.reason[v.index()] = CREF_NONE;
            self.order.insert(v.index() as u32, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        loop {
            let v = self.order.pop(&self.activity)?;
            if self.assign[v as usize] == VAL_UNDEF {
                return Some(Var::from_index(v as usize));
            }
        }
    }

    // ------------------------------------------------------------------
    // Activities.

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v.index() as u32, &self.activity);
    }

    fn bump_clause(&mut self, cref: usize) {
        if !self.clauses[cref].learnt {
            return;
        }
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    // ------------------------------------------------------------------
    // Learnt-clause reduction.

    fn is_locked(&self, cref: u32) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.lit_value(first) == VAL_TRUE && self.reason[first.var().index()] == cref
    }

    /// Drops the lower-activity half of the learnt clauses (binary and
    /// locked clauses survive). Deterministic: ties sort by clause index.
    fn reduce_learnt_db(&mut self) {
        let mut ranked = self.learnt_refs.clone();
        ranked.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            ca.activity
                .partial_cmp(&cb.activity)
                .expect("activities are finite")
                .then(a.cmp(&b))
        });
        let goal = ranked.len() / 2;
        let mut removed = 0usize;
        for &cref in &ranked {
            if removed >= goal {
                break;
            }
            let c = &self.clauses[cref as usize];
            if c.lits.len() <= 2 || self.is_locked(cref) {
                continue;
            }
            self.detach_clause(cref);
            removed += 1;
        }
        self.learnt_refs
            .retain(|&c| !self.clauses[c as usize].deleted);
        self.reduce_limit += self.reduce_limit / 2;
    }

    fn detach_clause(&mut self, cref: u32) {
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            (!c.lits[0], !c.lits[1])
        };
        self.watches[w0.code()].retain(|w| w.cref != cref);
        self.watches[w1.code()].retain(|w| w.cref != cref);
        self.clauses[cref as usize].deleted = true;
    }

    // ------------------------------------------------------------------
    // Model checking.

    fn model_satisfies_all(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| c.deleted || c.learnt || c.lits.iter().any(|&l| self.lit_value(l) == VAL_TRUE))
    }
}

enum Search {
    Sat,
    Unsat,
    Restart,
    Stopped,
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8…
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i, then recurse.
    let (mut k, mut size) = (1u32, 1u64);
    while size < i + 1 {
        k += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        k -= 1;
        i %= size;
    }
    1u64 << (k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n).unwrap()
    }

    fn solver_for(num_vars: usize, clauses: &[&[i64]]) -> Solver {
        let built: Vec<Vec<Lit>> = clauses
            .iter()
            .map(|c| c.iter().map(|&n| lit(n)).collect())
            .collect();
        Solver::from_clauses(num_vars, &built)
    }

    #[test]
    fn empty_problem_is_sat() {
        assert_eq!(Solver::new().solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_clauses_fix_the_model() {
        let mut s = solver_for(2, &[&[1], &[-2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(0)), Some(true));
        assert_eq!(s.value(Var::from_index(1)), Some(false));
    }

    #[test]
    fn contradictory_units_are_unsat_at_add_time() {
        let mut s = Solver::new();
        s.reserve_vars(1);
        assert!(s.add_clause(&[lit(1)]));
        assert!(!s.add_clause(&[lit(-1)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_and_duplicates_are_normalised_away() {
        let mut s = Solver::new();
        s.reserve_vars(2);
        assert!(s.add_clause(&[lit(1), lit(-1)]));
        assert!(s.add_clause(&[lit(2), lit(2)]));
        assert_eq!(s.num_clauses(), 0, "tautology dropped, unit propagated");
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn pigeonhole_two_into_one_is_unsat() {
        // Two pigeons, one hole: x1 = pigeon 1 in hole, x2 = pigeon 2.
        let mut s = solver_for(2, &[&[1], &[2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat_through_search() {
        // p{i}h{j}: 3 pigeons × 2 holes — needs genuine conflict analysis.
        let v = |p: i64, h: i64| (p - 1) * 2 + h; // 1-based var codes
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for p in 1..=3 {
            clauses.push(vec![v(p, 1), v(p, 2)]);
        }
        for h in 1..=2 {
            for p1 in 1..=3 {
                for p2 in (p1 + 1)..=3 {
                    clauses.push(vec![-v(p1, h), -v(p2, h)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_for(6, &refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0, "required real search");
    }

    #[test]
    fn conflict_budget_returns_unknown_and_can_resume() {
        // A hard-ish pigeonhole (5 pigeons, 4 holes) under a 1-conflict
        // budget must give up; re-solving without a budget finishes it.
        let v = |p: i64, h: i64| (p - 1) * 4 + h;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for p in 1..=5 {
            clauses.push((1..=4).map(|h| v(p, h)).collect());
        }
        for h in 1..=4 {
            for p1 in 1..=5 {
                for p2 in (p1 + 1)..=5 {
                    clauses.push(vec![-v(p1, h), -v(p2, h)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_for(20, &refs);
        assert_eq!(s.solve_limited(1, &mut || false), SolveResult::Unknown);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn interrupt_callback_stops_the_search() {
        // 11 pigeons into 10 holes: far beyond 1024 conflicts, so the
        // poll is guaranteed to fire before the refutation completes.
        let v = |p: i64, h: i64| (p - 1) * 10 + h;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for p in 1..=11 {
            clauses.push((1..=10).map(|h| v(p, h)).collect());
        }
        for h in 1..=10 {
            for p1 in 1..=11 {
                for p2 in (p1 + 1)..=11 {
                    clauses.push(vec![-v(p1, h), -v(p2, h)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_for(110, &refs);
        let mut polls = 0u32;
        let res = s.solve_limited(u64::MAX, &mut || {
            polls += 1;
            true
        });
        assert_eq!(res, SolveResult::Unknown);
        assert!(polls >= 1);
    }

    #[test]
    fn learnt_db_reduction_preserves_the_verdict() {
        let v = |p: i64, h: i64| (p - 1) * 5 + h;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for p in 1..=6 {
            clauses.push((1..=5).map(|h| v(p, h)).collect());
        }
        for h in 1..=5 {
            for p1 in 1..=6 {
                for p2 in (p1 + 1)..=6 {
                    clauses.push(vec![-v(p1, h), -v(p2, h)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_for(30, &refs);
        s.reduce_limit = 8; // force reduction passes during this search
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn stats_count_work() {
        let mut s = solver_for(3, &[&[1, 2, 3], &[-1, -2], &[-1, -3], &[-2, -3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let st = s.stats();
        assert!(st.decisions >= 1);
        assert!(st.propagations >= 1);
    }
}
