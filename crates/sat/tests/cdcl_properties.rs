//! Property suite for the CDCL core.
//!
//! Three contracts from the ISSUE: random 3-SAT verdicts agree with the
//! naive DPLL reference, DIMACS text round-trips, and the solver is
//! deterministic — two runs over the same instance produce identical
//! models *and* identical work counters (decisions/conflicts/propagations/
//! restarts/learnt clauses), which is what lets the exact mapper pin
//! verdicts in the fuzz corpus.

use proptest::prelude::*;
use rewire_sat::{dpll_satisfiable, parse_dimacs, render_dimacs, Lit, SolveResult, Solver, Var};

/// SplitMix64 — the workspace's stock deterministic stream.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded random 3-SAT instance near the sat/unsat phase boundary.
fn random_3sat(seed: u64) -> (usize, Vec<Vec<Lit>>) {
    let num_vars = 4 + (mix(seed) % 12) as usize; // 4..=15
    let num_clauses = (num_vars as f64 * 4.2) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    let mut state = mix(seed ^ 0xC1A0);
    let mut next = || {
        state = mix(state);
        state
    };
    for _ in 0..num_clauses {
        let mut clause = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = Var::from_index((next() % num_vars as u64) as usize);
            clause.push(Lit::new(v, next() & 1 == 0));
        }
        clauses.push(clause);
    }
    (num_vars, clauses)
}

fn model_of(s: &Solver, num_vars: usize) -> Vec<Option<bool>> {
    (0..num_vars).map(|i| s.value(Var::from_index(i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// CDCL and the naive DPLL reference agree on every random 3-SAT
    /// instance, and every CDCL model actually satisfies the clauses.
    #[test]
    fn cdcl_matches_dpll_reference(seed in 0u64..100_000) {
        let (num_vars, clauses) = random_3sat(seed);
        let reference = dpll_satisfiable(num_vars, &clauses);
        let mut s = Solver::from_clauses(num_vars, &clauses);
        let verdict = s.solve();
        prop_assert_eq!(
            verdict,
            if reference { SolveResult::Sat } else { SolveResult::Unsat },
            "seed {} ({} vars, {} clauses)", seed, num_vars, clauses.len()
        );
        if verdict == SolveResult::Sat {
            for c in &clauses {
                prop_assert!(
                    c.iter().any(|l| s.value(l.var()) == Some(l.is_positive())),
                    "model violates a clause on seed {}", seed
                );
            }
        }
    }

    /// Two fresh solvers over the same instance replay the identical
    /// search: same verdict, same model, same work counters.
    #[test]
    fn solver_is_deterministic(seed in 0u64..100_000) {
        let (num_vars, clauses) = random_3sat(seed);
        let run = || {
            let mut s = Solver::from_clauses(num_vars, &clauses);
            let verdict = s.solve();
            (verdict, model_of(&s, num_vars), s.stats())
        };
        let (v1, m1, st1) = run();
        let (v2, m2, st2) = run();
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(m1, m2, "models diverged on seed {}", seed);
        prop_assert_eq!(st1, st2, "work counters diverged on seed {}", seed);
    }

    /// DIMACS render → parse is the identity, and the parsed instance
    /// solves to the same verdict as the original.
    #[test]
    fn dimacs_round_trip(seed in 0u64..100_000) {
        let (num_vars, clauses) = random_3sat(seed);
        let text = render_dimacs(num_vars, &clauses);
        let parsed = parse_dimacs(&text).unwrap();
        prop_assert_eq!(parsed.num_vars, num_vars);
        prop_assert_eq!(&parsed.clauses, &clauses);
        let v1 = Solver::from_clauses(num_vars, &clauses).solve();
        let v2 = parsed.into_solver().solve();
        prop_assert_eq!(v1, v2);
    }

    /// A conflict-budgeted run never contradicts the unbudgeted verdict:
    /// it either matches it or reports `Unknown`.
    #[test]
    fn budgets_never_flip_verdicts(seed in 0u64..100_000, budget in 1u64..64) {
        let (num_vars, clauses) = random_3sat(seed);
        let full = Solver::from_clauses(num_vars, &clauses).solve();
        let mut s = Solver::from_clauses(num_vars, &clauses);
        let bounded = s.solve_limited(budget, &mut || false);
        prop_assert!(
            bounded == SolveResult::Unknown || bounded == full,
            "budget {} flipped {:?} to {:?} on seed {}", budget, full, bounded, seed
        );
    }
}

/// Learned-clause and restart counters are pinned for one fixed instance —
/// the regression canary for "the search changed shape".
#[test]
fn fixed_instance_work_counters_are_stable_across_runs() {
    let (num_vars, clauses) = random_3sat(0xDEADBEEF);
    let mut a = Solver::from_clauses(num_vars, &clauses);
    let mut b = Solver::from_clauses(num_vars, &clauses);
    let (va, vb) = (a.solve(), b.solve());
    assert_eq!(va, vb);
    assert_eq!(a.stats(), b.stats());
    assert_eq!(model_of(&a, num_vars), model_of(&b, num_vars));
}
