//! Configuration ("bitstream") generation: the cycle-by-cycle control words
//! a real CGRA would load, derived from a validated mapping.
//!
//! Per modulo slot, each PE has an FU opcode (or NOP), each link either
//! forwards a named signal or idles, and each register cell either loads a
//! new value, holds, or is free. This is exactly the information Fig 1 of
//! the paper describes the mapper as producing ("cycle-by-cycle
//! configurations for the programmable units, including the PEs and the
//! routers").

use rewire_arch::{Cgra, LinkId, OpKind, PeId};
use rewire_dfg::{Dfg, NodeId};
use rewire_mappers::Mapping;
use rewire_mrrg::Resource;
use std::collections::HashMap;
use std::fmt;

/// Register-cell action in one slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegAction {
    /// Load the routed value of `signal` this slot.
    Write(NodeId),
    /// Keep holding `signal`'s value.
    Hold(NodeId),
}

/// The full per-slot configuration of a mapped CGRA.
#[derive(Clone, Debug)]
pub struct Configuration {
    ii: u32,
    /// `fu[slot][pe] = (node, op)` executing there.
    fu: Vec<HashMap<PeId, (NodeId, OpKind)>>,
    /// `links[slot][link] = signal` forwarded.
    links: Vec<HashMap<LinkId, NodeId>>,
    /// `regs[slot][(pe, reg)] = action`.
    regs: Vec<HashMap<(PeId, u8), RegAction>>,
}

impl Configuration {
    /// Derives the configuration from a validated mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is incomplete (validate first).
    pub fn from_mapping(dfg: &Dfg, mapping: &Mapping) -> Self {
        let ii = mapping.ii() as usize;
        let mut fu = vec![HashMap::new(); ii];
        let mut links = vec![HashMap::new(); ii];
        let mut regs: Vec<HashMap<(PeId, u8), RegAction>> = vec![HashMap::new(); ii];

        for v in dfg.node_ids() {
            let (pe, t) = mapping.placement(v).expect("complete mapping");
            fu[(t % mapping.ii()) as usize].insert(pe, (v, dfg.node(v).op()));
        }
        for e in dfg.edges() {
            let route = mapping.route(e.id()).expect("complete mapping");
            let signal = e.src();
            for (k, cell) in route.resources().iter().enumerate() {
                match *cell {
                    Resource::Link { link, slot } => {
                        links[slot as usize].insert(link, signal);
                    }
                    Resource::Reg { pe, reg, slot } => {
                        let is_hold = k > 0
                            && matches!(
                                route.resources()[k - 1],
                                Resource::Reg { pe: p2, reg: r2, .. } if p2 == pe && r2 == reg
                            );
                        let action = if is_hold {
                            RegAction::Hold(signal)
                        } else {
                            RegAction::Write(signal)
                        };
                        regs[slot as usize].insert((pe, reg), action);
                    }
                    Resource::Fu { .. } => unreachable!("routes never claim FU cells"),
                }
            }
        }
        Self {
            ii: mapping.ii(),
            fu,
            links,
            regs,
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// What a PE's FU executes in `slot`.
    pub fn fu_op(&self, slot: u32, pe: PeId) -> Option<(NodeId, OpKind)> {
        self.fu[slot as usize].get(&pe).copied()
    }

    /// The signal a link forwards in `slot`.
    pub fn link_signal(&self, slot: u32, link: LinkId) -> Option<NodeId> {
        self.links[slot as usize].get(&link).copied()
    }

    /// The register-cell action in `slot`.
    pub fn reg_action(&self, slot: u32, pe: PeId, reg: u8) -> Option<RegAction> {
        self.regs[slot as usize].get(&(pe, reg)).copied()
    }

    /// Counts of active control words: `(fu_ops, link_transfers, reg_ops)`.
    pub fn utilization(&self) -> (usize, usize, usize) {
        (
            self.fu.iter().map(|m| m.len()).sum(),
            self.links.iter().map(|m| m.len()).sum(),
            self.regs.iter().map(|m| m.len()).sum(),
        )
    }

    /// Renders the full configuration as a per-slot text report.
    pub fn render(&self, dfg: &Dfg, cgra: &Cgra) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for slot in 0..self.ii {
            let _ = writeln!(out, "slot {slot}:");
            for pe in cgra.pes() {
                if let Some((node, op)) = self.fu_op(slot, pe.id()) {
                    let _ = writeln!(
                        out,
                        "  {} {} exec {} ({op})",
                        pe.id(),
                        pe.coord(),
                        dfg.node(node).name()
                    );
                }
            }
            for link in cgra.links() {
                if let Some(signal) = self.link_signal(slot, link.id()) {
                    let _ = writeln!(out, "  {link} carries {}", dfg.node(signal).name());
                }
            }
            for pe in cgra.pes() {
                for r in 0..cgra.regs_per_pe() {
                    match self.reg_action(slot, pe.id(), r) {
                        Some(RegAction::Write(s)) => {
                            let _ = writeln!(out, "  {}.r{r} <- {}", pe.id(), dfg.node(s).name());
                        }
                        Some(RegAction::Hold(s)) => {
                            let _ =
                                writeln!(out, "  {}.r{r} holds {}", pe.id(), dfg.node(s).name());
                        }
                        None => {}
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (fu, links, regs) = self.utilization();
        write!(
            f,
            "Configuration II={} ({fu} FU ops, {links} link transfers, {regs} register ops)",
            self.ii
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;
    use rewire_dfg::kernels;
    use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
    use std::time::Duration;

    fn mapped() -> (Cgra, Dfg, Mapping) {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
        let m = PathFinderMapper::new()
            .map(&dfg, &cgra, &limits)
            .mapping
            .expect("fir maps");
        (cgra, dfg, m)
    }

    #[test]
    fn every_node_appears_exactly_once_in_fu_config() {
        let (_cgra, dfg, m) = mapped();
        let cfg = Configuration::from_mapping(&dfg, &m);
        let mut seen = 0;
        for slot in 0..cfg.ii() {
            seen += cfg.fu[slot as usize].len();
        }
        assert_eq!(seen, dfg.num_nodes());
    }

    #[test]
    fn utilization_matches_route_cells() {
        let (_cgra, dfg, m) = mapped();
        let cfg = Configuration::from_mapping(&dfg, &m);
        let (fu, links, regs) = cfg.utilization();
        assert_eq!(fu, dfg.num_nodes());
        // Each link/reg control word corresponds to at least one route
        // cell (shared cells collapse to one word).
        let total_cells: usize = dfg
            .edges()
            .map(|e| m.route(e.id()).unwrap().resources().len())
            .sum();
        assert!(links + regs <= total_cells);
        assert!(links + regs > 0);
    }

    #[test]
    fn render_mentions_every_slot() {
        let (cgra, dfg, m) = mapped();
        let cfg = Configuration::from_mapping(&dfg, &m);
        let text = cfg.render(&dfg, &cgra);
        for slot in 0..cfg.ii() {
            assert!(text.contains(&format!("slot {slot}:")));
        }
        assert!(text.contains("exec"));
    }

    #[test]
    fn display_summarises() {
        let (_cgra, dfg, m) = mapped();
        let cfg = Configuration::from_mapping(&dfg, &m);
        let s = format!("{cfg}");
        assert!(s.contains("FU ops"));
    }
}
