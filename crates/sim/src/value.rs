//! Operation semantics on `i64` (wrapping integer arithmetic).

use crate::Inputs;
use rewire_arch::OpKind;

/// Evaluates one operation. `operands` are in DFG in-edge insertion order
/// (two edges from the same producer appear twice). `node_idx` selects the
/// node-specific immediate for `Const`/`Addr`/`Load`.
///
/// Semantics chosen to be total (no panics on any input):
/// division/remainder by zero yield 0, shifts are masked to 0..64, `Sqrt`
/// is the integer square root of the absolute value.
pub fn eval_op(op: OpKind, operands: &[i64], node_idx: usize, iter: u32, inputs: &Inputs) -> i64 {
    let a = operands.first().copied().unwrap_or(0);
    let b = operands.get(1).copied().unwrap_or(0);
    match op {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        OpKind::Sqrt => (a.unsigned_abs() as f64).sqrt() as i64,
        OpKind::Shl => a.wrapping_shl((b & 63) as u32),
        OpKind::Shr => a.wrapping_shr((b & 63) as u32),
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Cmp => i64::from(a < b),
        OpKind::Select => {
            if a != 0 {
                b
            } else {
                operands.get(2).copied().unwrap_or(0)
            }
        }
        OpKind::Load => inputs.load(node_idx, iter, a),
        // A store forwards the stored value (the non-address operand by
        // convention: address first, value second).
        OpKind::Store => b,
        // Phi merges its (single) incoming value.
        OpKind::Phi => a,
        OpKind::Const => inputs.constant(node_idx),
        OpKind::Addr => operands
            .iter()
            .fold(inputs.addr_base(node_idx), |acc, &x| acc.wrapping_add(x)),
        // `OpKind` is #[non_exhaustive]; future operations default to a
        // pass-through so the simulator stays total.
        _ => a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Inputs {
        Inputs::new(5)
    }

    #[test]
    fn arithmetic() {
        let i = inputs();
        assert_eq!(eval_op(OpKind::Add, &[2, 3], 0, 0, &i), 5);
        assert_eq!(eval_op(OpKind::Sub, &[2, 3], 0, 0, &i), -1);
        assert_eq!(eval_op(OpKind::Mul, &[4, 3], 0, 0, &i), 12);
        assert_eq!(eval_op(OpKind::Div, &[7, 2], 0, 0, &i), 3);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(eval_op(OpKind::Div, &[7, 0], 0, 0, &inputs()), 0);
    }

    #[test]
    fn shifts_are_masked() {
        let i = inputs();
        assert_eq!(eval_op(OpKind::Shl, &[1, 65], 0, 0, &i), 2);
        assert_eq!(eval_op(OpKind::Shr, &[4, 1], 0, 0, &i), 2);
    }

    #[test]
    fn sqrt_of_negative_uses_magnitude() {
        assert_eq!(eval_op(OpKind::Sqrt, &[-16], 0, 0, &inputs()), 4);
    }

    #[test]
    fn compare_and_select() {
        let i = inputs();
        assert_eq!(eval_op(OpKind::Cmp, &[1, 2], 0, 0, &i), 1);
        assert_eq!(eval_op(OpKind::Cmp, &[2, 1], 0, 0, &i), 0);
        assert_eq!(eval_op(OpKind::Select, &[1, 10, 20], 0, 0, &i), 10);
        assert_eq!(eval_op(OpKind::Select, &[0, 10, 20], 0, 0, &i), 20);
    }

    #[test]
    fn loads_depend_on_address_and_iteration() {
        let i = inputs();
        assert_ne!(
            eval_op(OpKind::Load, &[1], 3, 0, &i),
            eval_op(OpKind::Load, &[2], 3, 0, &i)
        );
        assert_ne!(
            eval_op(OpKind::Load, &[1], 3, 0, &i),
            eval_op(OpKind::Load, &[1], 3, 1, &i)
        );
    }

    #[test]
    fn store_forwards_the_value_operand() {
        assert_eq!(eval_op(OpKind::Store, &[100, 42], 0, 0, &inputs()), 42);
    }

    #[test]
    fn wrapping_never_panics() {
        let i = inputs();
        for op in OpKind::ALL {
            let _ = eval_op(op, &[i64::MAX, i64::MIN], 1, 2, &i);
            let _ = eval_op(op, &[], 1, 2, &i);
        }
    }
}
