//! Deterministic synthetic inputs: memory contents, constants and initial
//! values of loop-carried dependencies.

/// Seeded input generator shared by the reference interpreter and the
/// machine simulator.
///
/// Loads return a value that depends on the *address operand* actually
/// delivered, so a mapping that routes a wrong or late address produces a
/// different loaded value and the divergence is caught.
#[derive(Clone, Copy, Debug)]
pub struct Inputs {
    seed: u64,
}

impl Inputs {
    /// Creates an input generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn mix(&self, a: u64, b: u64, c: u64) -> i64 {
        // SplitMix64-style mixing: cheap, deterministic, well-spread.
        let mut z = self
            .seed
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as i64 % 1000
    }

    /// Memory contents: the value a load (node `node_idx`) reads at
    /// iteration `iter` from the delivered address.
    pub fn load(&self, node_idx: usize, iter: u32, address: i64) -> i64 {
        self.mix(node_idx as u64, iter as u64 + 1, address as u64)
    }

    /// The immediate a `Const` node materialises (non-zero, so divisions
    /// and shifts stay interesting).
    pub fn constant(&self, node_idx: usize) -> i64 {
        self.mix(node_idx as u64, 0, 0xC0) % 97 + 1
    }

    /// Per-node address base folded into `Addr` operations.
    pub fn addr_base(&self, node_idx: usize) -> i64 {
        self.mix(node_idx as u64, 0, 0xAD) % 64
    }

    /// Initial value of a loop-carried dependency consumed before its
    /// producer's first iteration completes.
    pub fn initial(&self, node_idx: usize) -> i64 {
        self.mix(node_idx as u64, 0, 0x11) % 50
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = Inputs::new(7);
        let b = Inputs::new(7);
        assert_eq!(a.load(3, 2, 41), b.load(3, 2, 41));
        assert_eq!(a.constant(5), b.constant(5));
    }

    #[test]
    fn address_sensitivity() {
        let i = Inputs::new(7);
        assert_ne!(
            i.load(3, 2, 41),
            i.load(3, 2, 42),
            "loads depend on the address"
        );
    }

    #[test]
    fn constants_are_nonzero() {
        let i = Inputs::new(9);
        for n in 0..100 {
            assert_ne!(i.constant(n), 0);
        }
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(Inputs::new(1).load(0, 0, 0), Inputs::new(2).load(0, 0, 0));
    }
}
