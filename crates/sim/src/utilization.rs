//! Resource-utilization reporting for a mapped kernel: how busy the fabric
//! is at the achieved II — the efficiency numbers architects look at next
//! to the raw II.

use crate::config::Configuration;
use rewire_arch::Cgra;
use std::fmt;

/// Utilization of one mapped kernel's fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Utilization {
    /// Fraction of FU issue slots (PEs × II) doing real work.
    pub fu: f64,
    /// Fraction of link cells (links × II) carrying a value.
    pub links: f64,
    /// Fraction of register cells (PEs × regs × II) in use.
    pub regs: f64,
}

impl Utilization {
    /// Computes utilization from a configuration over `cgra`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_arch::presets;
    /// use rewire_dfg::kernels;
    /// use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
    /// use rewire_sim::config::Configuration;
    /// use rewire_sim::Utilization;
    ///
    /// let cgra = presets::paper_4x4_r4();
    /// let dfg = kernels::fir();
    /// if let Some(m) = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast()).mapping {
    ///     let cfg = Configuration::from_mapping(&dfg, &m);
    ///     let u = Utilization::of(&cfg, &cgra);
    ///     assert!(u.fu > 0.0 && u.fu <= 1.0);
    /// }
    /// ```
    pub fn of(config: &Configuration, cgra: &Cgra) -> Utilization {
        let ii = config.ii() as usize;
        let (fu_ops, link_ops, reg_ops) = config.utilization();
        let fu_cells = cgra.num_pes() * ii;
        let link_cells = cgra.num_links() * ii;
        let reg_cells = cgra.num_pes() * cgra.regs_per_pe() as usize * ii;
        Utilization {
            fu: fu_ops as f64 / fu_cells.max(1) as f64,
            links: link_ops as f64 / link_cells.max(1) as f64,
            regs: reg_ops as f64 / reg_cells.max(1) as f64,
        }
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FU {:.0}%, links {:.0}%, registers {:.0}%",
            self.fu * 100.0,
            self.links * 100.0,
            self.regs * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;
    use rewire_dfg::kernels;
    use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
    use std::time::Duration;

    #[test]
    fn utilization_is_bounded_and_nonzero() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::atax();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
        let m = PathFinderMapper::new()
            .map(&dfg, &cgra, &limits)
            .mapping
            .expect("atax maps");
        let cfg = Configuration::from_mapping(&dfg, &m);
        let u = Utilization::of(&cfg, &cgra);
        for v in [u.fu, u.links, u.regs] {
            assert!((0.0..=1.0).contains(&v), "{u}");
        }
        assert!(u.fu > 0.3, "a 34-node kernel on 16 PEs is busy: {u}");
    }

    #[test]
    fn fu_utilization_matches_node_count() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
        let m = PathFinderMapper::new()
            .map(&dfg, &cgra, &limits)
            .mapping
            .expect("fir maps");
        let cfg = Configuration::from_mapping(&dfg, &m);
        let u = Utilization::of(&cfg, &cgra);
        let expected = dfg.num_nodes() as f64 / (cgra.num_pes() as f64 * m.ii() as f64);
        assert!((u.fu - expected).abs() < 1e-9);
    }
}
