//! Golden-model checking: the mapped machine must compute exactly what the
//! DFG computes.

use crate::{machine, reference, Inputs};
use rewire_arch::Cgra;
use rewire_dfg::{Dfg, EdgeId, NodeId};
use rewire_mappers::Mapping;
use std::error::Error;
use std::fmt;

/// A semantic divergence between the mapped machine and the DFG.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The mapping failed structural validation — nothing to simulate.
    InvalidMapping,
    /// A live register value was destroyed before its last read.
    RegisterClobbered {
        /// The edge whose in-flight value was lost.
        edge: EdgeId,
        /// Producer iteration of the lost value.
        iteration: u32,
        /// Cycle at which the loss was detected.
        cycle: u32,
    },
    /// A route cell's modulo slot disagrees with the cycle it is exercised
    /// in — a router bug.
    SlotMismatch {
        /// The offending edge.
        edge: EdgeId,
        /// The absolute cycle.
        cycle: u32,
        /// `cycle % II`.
        expected: u32,
        /// The cell's recorded slot.
        found: u32,
    },
    /// The machine computed a different value than the reference.
    ValueMismatch {
        /// The diverging node.
        node: NodeId,
        /// The iteration at which it diverged.
        iteration: u32,
        /// Golden-model value.
        expected: i64,
        /// Machine value.
        got: i64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidMapping => f.write_str("mapping fails structural validation"),
            SimError::RegisterClobbered {
                edge,
                iteration,
                cycle,
            } => write!(
                f,
                "register value of edge {edge} (iteration {iteration}) clobbered by cycle {cycle}"
            ),
            SimError::SlotMismatch {
                edge,
                cycle,
                expected,
                found,
            } => write!(
                f,
                "edge {edge} exercises a cell of slot {found} at cycle {cycle} (slot {expected})"
            ),
            SimError::ValueMismatch {
                node,
                iteration,
                expected,
                got,
            } => write!(
                f,
                "node {node} iteration {iteration} computed {got}, reference says {expected}"
            ),
        }
    }
}

impl Error for SimError {}

/// Executes the mapped kernel for `iterations` iterations and compares
/// every node's value stream against direct DFG interpretation.
///
/// # Errors
///
/// The first divergence found, as a [`SimError`].
pub fn verify_semantics(
    dfg: &Dfg,
    cgra: &Cgra,
    mapping: &Mapping,
    inputs: &Inputs,
    iterations: u32,
) -> Result<(), SimError> {
    let machine = machine::execute(dfg, cgra, mapping, inputs, iterations)?;
    let golden = reference::interpret(dfg, inputs, iterations);
    for v in dfg.node_ids() {
        for i in 0..iterations as usize {
            let (expected, got) = (golden[v.index()][i], machine[v.index()][i]);
            if expected != got {
                return Err(SimError::ValueMismatch {
                    node: v,
                    iteration: i as u32,
                    expected,
                    got,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_lowercase() {
        let msgs = [
            SimError::InvalidMapping.to_string(),
            SimError::RegisterClobbered {
                edge: EdgeId::new(0),
                iteration: 1,
                cycle: 2,
            }
            .to_string(),
            SimError::ValueMismatch {
                node: NodeId::new(0),
                iteration: 0,
                expected: 1,
                got: 2,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }
}
