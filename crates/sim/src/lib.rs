//! Cycle-accurate functional simulation of mapped CGRA kernels.
//!
//! A mapping that passes structural validation could still be *semantically*
//! wrong if the mapper's timing model were inconsistent (operands arriving a
//! cycle late, register cells clobbered across modulo wraps, …). This crate
//! closes that loop:
//!
//! * [`reference::interpret`] — executes the DFG directly (the golden
//!   model), handling loop-carried dependencies and synthetic memory,
//! * [`machine::execute`] — executes the *mapped* kernel cycle by cycle:
//!   FUs fire in their modulo slots, values move along the committed routes
//!   through links and register cells (with hold/overwrite checking), and
//!   operands are read exactly when the timing contract says they arrive,
//! * [`check::verify_semantics`] — maps both traces onto each other and
//!   reports the first divergence,
//! * [`config::Configuration`] — per-slot configuration words (the
//!   "bitstream"): FU opcodes, link transfers and register writes derived
//!   from the mapping, with a human-readable rendering.
//!
//! # Examples
//!
//! ```
//! use rewire_arch::presets;
//! use rewire_dfg::kernels;
//! use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
//! use rewire_sim::{verify_semantics, Inputs};
//!
//! let cgra = presets::paper_4x4_r4();
//! let dfg = kernels::fir();
//! let outcome = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast());
//! if let Some(mapping) = &outcome.mapping {
//!     verify_semantics(&dfg, &cgra, mapping, &Inputs::new(42), 6)
//!         .expect("mapped kernel computes exactly what the DFG computes");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
pub mod config;
mod inputs;
pub mod machine;
pub mod reference;
mod utilization;
mod value;

pub use check::{verify_semantics, SimError};
pub use inputs::Inputs;
pub use utilization::Utilization;
pub use value::eval_op;

/// A value trace: `trace[node][iteration]`.
pub type Trace = Vec<Vec<i64>>;
