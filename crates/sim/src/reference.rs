//! The golden model: direct DFG interpretation over `n` loop iterations.

use crate::{eval_op, Inputs, Trace};
use rewire_dfg::Dfg;

/// Interprets `dfg` for `iterations` iterations and returns the value of
/// every node at every iteration.
///
/// Loop-carried operands (`distance = d`) read the producer's value from
/// iteration `i − d`; before the producer's first iteration completes
/// (`i < d`) they read the producer's seeded initial value — the software
///-pipelining prologue.
///
/// # Panics
///
/// Panics if the DFG's intra-iteration subgraph is cyclic (no evaluation
/// order exists); validate untrusted graphs first.
pub fn interpret(dfg: &Dfg, inputs: &Inputs, iterations: u32) -> Trace {
    let order = dfg.topo_order();
    let mut trace: Trace = vec![Vec::with_capacity(iterations as usize); dfg.num_nodes()];
    for iter in 0..iterations {
        for &v in &order {
            let operands: Vec<i64> = dfg
                .in_edges(v)
                .map(|e| {
                    let d = e.distance();
                    if d == 0 {
                        trace[e.src().index()][iter as usize]
                    } else if iter >= d {
                        trace[e.src().index()][(iter - d) as usize]
                    } else {
                        inputs.initial(e.src().index())
                    }
                })
                .collect();
            let value = eval_op(dfg.node(v).op(), &operands, v.index(), iter, inputs);
            trace[v.index()].push(value);
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::OpKind;

    #[test]
    fn accumulator_sums_across_iterations() {
        // phi -> add(phi, const); add -> phi (distance 1): a running sum of
        // the constant.
        let mut g = Dfg::new("acc");
        let phi = g.add_node("phi", OpKind::Phi);
        let c = g.add_node("c", OpKind::Const);
        let add = g.add_node("add", OpKind::Add);
        g.add_edge(phi, add, 0).unwrap();
        g.add_edge(c, add, 0).unwrap();
        g.add_edge(add, phi, 1).unwrap();

        let inputs = Inputs::new(1);
        let k = inputs.constant(c.index());
        let init = inputs.initial(add.index());
        let t = interpret(&g, &inputs, 4);
        // iter 0: phi = initial(add); add = phi + k.
        assert_eq!(t[phi.index()][0], init);
        assert_eq!(t[add.index()][0], init + k);
        // iter i: add = initial + (i+1)*k.
        for (i, &v) in t[add.index()].iter().enumerate().take(4) {
            assert_eq!(v, init + (i as i64 + 1) * k);
        }
    }

    #[test]
    fn chain_computes_composition() {
        let mut g = Dfg::new("chain");
        let c = g.add_node("c", OpKind::Const);
        let ld = g.add_node("ld", OpKind::Load);
        let sq = g.add_node("sq", OpKind::Mul);
        g.add_edge(c, ld, 0).unwrap();
        g.add_edge(ld, sq, 0).unwrap();
        g.add_edge(ld, sq, 0).unwrap();
        let inputs = Inputs::new(2);
        let t = interpret(&g, &inputs, 3);
        for (i, &v) in t[sq.index()].iter().enumerate().take(3) {
            let loaded = inputs.load(ld.index(), i as u32, inputs.constant(c.index()));
            assert_eq!(v, loaded.wrapping_mul(loaded));
        }
    }

    #[test]
    fn distance_two_reads_two_iterations_back() {
        let mut g = Dfg::new("d2");
        let ld = g.add_node("ld", OpKind::Load);
        let phi = g.add_node("phi", OpKind::Phi);
        g.add_edge(ld, phi, 2).unwrap();
        let inputs = Inputs::new(3);
        let t = interpret(&g, &inputs, 5);
        assert_eq!(t[phi.index()][0], inputs.initial(ld.index()));
        assert_eq!(t[phi.index()][1], inputs.initial(ld.index()));
        assert_eq!(t[phi.index()][2], t[ld.index()][0]);
        assert_eq!(t[phi.index()][4], t[ld.index()][2]);
    }

    #[test]
    fn every_kernel_interprets_without_panic() {
        let inputs = Inputs::new(11);
        for (name, dfg) in rewire_dfg::kernels::all() {
            let t = interpret(&dfg, &inputs, 4);
            assert_eq!(t.len(), dfg.num_nodes(), "{name}");
            assert!(t.iter().all(|v| v.len() == 4), "{name}");
        }
    }
}
