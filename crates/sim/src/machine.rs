//! Cycle-accurate execution of a mapped kernel.
//!
//! The machine honours exactly the timing contract the mappers place and
//! route against (see `rewire-mrrg`): an FU fires in its modulo slot every
//! II cycles; its result departs on the next cycle and then moves one
//! resource cell per cycle along the committed route — links transfer,
//! register cells store and hold — until the consuming FU reads it. The
//! simulator tracks real register-file state, so a mapping whose modulo
//! arithmetic would clobber a live register is caught here even though each
//! static cell is used by a single signal.

use crate::check::SimError;
use crate::{eval_op, Inputs, Trace};
use rewire_arch::{Cgra, PeId};
use rewire_dfg::{Dfg, EdgeId};
use rewire_mappers::Mapping;
use rewire_mrrg::Resource;
use std::collections::HashMap;

/// One scheduled event.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// FU of `node` fires iteration `iter`.
    Exec { node: u32, iter: u32 },
    /// Route instance `(edge, producer_iter)` performs step `k`.
    Step { edge: EdgeId, iter: u32, k: u16 },
}

/// Executes `mapping` for `iterations` loop iterations and returns the
/// machine trace (`trace[node][iter]`).
///
/// # Errors
///
/// * [`SimError::InvalidMapping`] when the mapping fails structural
///   validation,
/// * [`SimError::RegisterClobbered`] when a live register value is
///   destroyed before its last read — a timing-model violation,
/// * [`SimError::SlotMismatch`] when a route cell's modulo slot disagrees
///   with the cycle it is exercised in.
pub fn execute(
    dfg: &Dfg,
    cgra: &Cgra,
    mapping: &Mapping,
    inputs: &Inputs,
    iterations: u32,
) -> Result<Trace, SimError> {
    if mapping.validate(dfg, cgra).is_err() {
        return Err(SimError::InvalidMapping);
    }
    let ii = mapping.ii();

    // Schedule all events.
    let mut events: Vec<(u32, Event)> = Vec::new();
    for v in dfg.node_ids() {
        let (_, t) = mapping.placement(v).expect("validated mapping is complete");
        for i in 0..iterations {
            events.push((
                t + i * ii,
                Event::Exec {
                    node: v.index() as u32,
                    iter: i,
                },
            ));
        }
    }
    for e in dfg.edges() {
        let route = mapping.route(e.id()).expect("validated mapping is routed");
        let depart = route.request().depart_cycle;
        // Producer iteration i feeds consumer iteration i + distance; only
        // instances whose consumer exists are simulated.
        let instances = iterations.saturating_sub(e.distance());
        for i in 0..instances {
            for k in 0..route.resources().len() {
                events.push((
                    depart + k as u32 + i * ii,
                    Event::Step {
                        edge: e.id(),
                        iter: i,
                        k: k as u16,
                    },
                ));
            }
        }
    }
    // Stable order inside a cycle: Exec events first (they only *produce*,
    // reads happen through route state of earlier cycles), then route steps
    // in (edge, iter, k) order.
    events.sort_by_key(|&(cycle, ev)| {
        let rank = match ev {
            Event::Exec { node, iter } => (0u8, node as u64, iter as u64, 0u64),
            Event::Step { edge, iter, k } => (1u8, edge.index() as u64, iter as u64, k as u64),
        };
        (cycle, rank)
    });

    // Machine state.
    let mut regs: Vec<Vec<Option<i64>>> =
        vec![vec![None; cgra.regs_per_pe() as usize]; cgra.num_pes()];
    // In-flight value of each route instance.
    let mut tokens: HashMap<(EdgeId, u32), i64> = HashMap::new();
    let mut trace: Trace = vec![vec![0; iterations as usize]; dfg.num_nodes()];
    let mut computed: Vec<Vec<bool>> = vec![vec![false; iterations as usize]; dfg.num_nodes()];

    let reg_at = |regs: &Vec<Vec<Option<i64>>>, pe: PeId, r: u8| regs[pe.index()][r as usize];

    for (cycle, ev) in events {
        match ev {
            Event::Exec { node, iter } => {
                let v = rewire_dfg::NodeId::new(node);
                // Gather operands in in-edge order.
                let mut operands = Vec::new();
                for e in dfg.in_edges(v) {
                    let d = e.distance();
                    let value = if iter < d {
                        inputs.initial(e.src().index())
                    } else {
                        let inst = iter - d;
                        let route = mapping.route(e.id()).expect("routed");
                        match route.resources().last() {
                            None => {
                                // Same-PE output-latch forwarding.
                                debug_assert!(computed[e.src().index()][inst as usize]);
                                trace[e.src().index()][inst as usize]
                            }
                            Some(Resource::Reg { pe, reg, .. }) => {
                                reg_at(&regs, *pe, *reg).ok_or(SimError::RegisterClobbered {
                                    edge: e.id(),
                                    iteration: inst,
                                    cycle,
                                })?
                            }
                            Some(_) => match tokens.get(&(e.id(), inst)) {
                                Some(v) => *v,
                                None => {
                                    // A delivery-only route (adjacent PEs,
                                    // consumption in the producer's next
                                    // cycle): the single link hop happens
                                    // during this very cycle, so the token
                                    // has not been created yet — read the
                                    // producer's latched output directly.
                                    debug_assert_eq!(route.resources().len(), 1);
                                    debug_assert!(computed[e.src().index()][inst as usize]);
                                    trace[e.src().index()][inst as usize]
                                }
                            },
                        }
                    };
                    operands.push(value);
                }
                let value = eval_op(dfg.node(v).op(), &operands, v.index(), iter, inputs);
                trace[v.index()][iter as usize] = value;
                computed[v.index()][iter as usize] = true;
            }
            Event::Step { edge, iter, k } => {
                let route = mapping.route(edge).expect("routed");
                let cell = route.resources()[k as usize];
                // Structural sanity: the cell's slot must match the cycle.
                let expected_slot = cycle % ii;
                if cell.slot() != expected_slot {
                    // The delivery hop is exercised one cycle later than
                    // its position suggests (during the consumption cycle);
                    // its slot was chosen accordingly at routing time, so a
                    // mismatch is a real bug.
                    return Err(SimError::SlotMismatch {
                        edge,
                        cycle,
                        expected: expected_slot,
                        found: cell.slot(),
                    });
                }
                if k == 0 {
                    // The instance departs: pick up the producer's value.
                    let src = dfg.edge(edge).src();
                    debug_assert!(computed[src.index()][iter as usize]);
                    tokens.insert((edge, iter), trace[src.index()][iter as usize]);
                }
                let current = *tokens.get(&(edge, iter)).expect("token departs at k = 0");
                match cell {
                    Resource::Reg { pe, reg, .. } => {
                        let held = &mut regs[pe.index()][reg as usize];
                        let is_hold = k > 0
                            && matches!(
                                route.resources()[k as usize - 1],
                                Resource::Reg { pe: p2, reg: r2, .. } if p2 == pe && r2 == reg
                            );
                        if is_hold {
                            // Holding: the register must still contain our
                            // value, otherwise someone clobbered it.
                            if *held != Some(current) {
                                return Err(SimError::RegisterClobbered {
                                    edge,
                                    iteration: iter,
                                    cycle,
                                });
                            }
                        } else {
                            *held = Some(current);
                        }
                    }
                    Resource::Link { .. } => { /* transfer: value unchanged */ }
                    Resource::Fu { .. } => unreachable!("routes never claim FU cells"),
                }
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;
    use rewire_dfg::kernels;
    use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
    use std::time::Duration;

    #[test]
    fn machine_matches_reference_on_a_mapped_kernel() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
        let mapping = PathFinderMapper::new()
            .map(&dfg, &cgra, &limits)
            .mapping
            .expect("fir maps");
        let inputs = Inputs::new(99);
        let machine = execute(&dfg, &cgra, &mapping, &inputs, 5).expect("executes");
        let golden = crate::reference::interpret(&dfg, &inputs, 5);
        assert_eq!(machine, golden);
    }

    #[test]
    fn invalid_mapping_is_rejected() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let mrrg = rewire_mrrg::Mrrg::new(&cgra, 2);
        let empty = Mapping::new(&dfg, &mrrg);
        let err = execute(&dfg, &cgra, &empty, &Inputs::new(0), 3).unwrap_err();
        assert!(matches!(err, SimError::InvalidMapping));
    }
}
