//! Failure injection: the simulator must reject corrupted mappings, not
//! silently execute them.

use rewire_arch::{presets, Coord, OpKind};
use rewire_dfg::Dfg;
use rewire_mappers::Mapping;
use rewire_mrrg::{Mrrg, Router, UnitCost};
use rewire_sim::{machine, reference, verify_semantics, Inputs, SimError};

fn pe(cgra: &rewire_arch::Cgra, r: u16, c: u16) -> rewire_arch::PeId {
    cgra.pe_at(Coord::new(r, c)).unwrap().id()
}

/// A valid two-node mapping executes and matches the reference.
#[test]
fn hand_built_mapping_executes() {
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("pair");
    let a = dfg.add_node("a", OpKind::Const);
    let b = dfg.add_node("b", OpKind::Add);
    dfg.add_edge(a, b, 0).unwrap();
    dfg.add_edge(a, b, 0).unwrap(); // b = a + a

    let mrrg = Mrrg::new(&cgra, 2);
    let router = Router::new(&cgra, &mrrg);
    let mut m = Mapping::new(&dfg, &mrrg);
    m.place(a, pe(&cgra, 0, 0), 0);
    m.place(b, pe(&cgra, 0, 2), 3);
    for e in [0u32, 1] {
        let id = rewire_dfg::EdgeId::new(e);
        let req = m.request_for(&dfg, id).unwrap();
        let route = router.route(m.occupancy(), &req, &UnitCost).unwrap();
        m.set_route(id, route);
    }
    assert!(m.is_valid(&dfg, &cgra));

    let inputs = Inputs::new(5);
    let trace = machine::execute(&dfg, &cgra, &m, &inputs, 4).unwrap();
    let golden = reference::interpret(&dfg, &inputs, 4);
    assert_eq!(trace, golden);
    let k = inputs.constant(a.index());
    assert_eq!(trace[b.index()][0], 2 * k);
}

/// An incomplete mapping is rejected up front.
#[test]
fn incomplete_mapping_is_rejected() {
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("pair");
    let a = dfg.add_node("a", OpKind::Const);
    let b = dfg.add_node("b", OpKind::Add);
    dfg.add_edge(a, b, 0).unwrap();
    let mrrg = Mrrg::new(&cgra, 2);
    let mut m = Mapping::new(&dfg, &mrrg);
    m.place(a, pe(&cgra, 0, 0), 0);
    // b unplaced, edge unrouted.
    let err = machine::execute(&dfg, &cgra, &m, &Inputs::new(0), 2).unwrap_err();
    assert_eq!(err, SimError::InvalidMapping);
}

/// A route whose timing was built for different placements (stale) is
/// caught by validation before simulation.
#[test]
fn stale_route_is_rejected() {
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("pair");
    let a = dfg.add_node("a", OpKind::Const);
    let b = dfg.add_node("b", OpKind::Add);
    let e = dfg.add_edge(a, b, 0).unwrap();
    let mrrg = Mrrg::new(&cgra, 2);
    let router = Router::new(&cgra, &mrrg);
    let mut m = Mapping::new(&dfg, &mrrg);
    m.place(a, pe(&cgra, 0, 0), 0);
    m.place(b, pe(&cgra, 0, 1), 2);
    let req = m.request_for(&dfg, e).unwrap();
    let route = router.route(m.occupancy(), &req, &UnitCost).unwrap();
    // Commit the route, then move b (ripping it), then re-commit stale.
    m.set_route(e, route.clone());
    m.unplace(&dfg, b);
    m.place(b, pe(&cgra, 1, 1), 3);
    m.set_route(e, route);
    let err = machine::execute(&dfg, &cgra, &m, &Inputs::new(0), 2).unwrap_err();
    assert_eq!(err, SimError::InvalidMapping);
}

/// A wrong route that structurally validates but delivers the wrong
/// producer's value cannot exist under phase-keyed occupancy — but a
/// wrong REFERENCE mismatch is still reported precisely. Simulate by
/// comparing against a reference with different inputs.
#[test]
fn value_mismatch_reporting_is_precise() {
    let cgra = presets::paper_4x4_r4();
    let dfg = rewire_dfg::kernels::fir();
    let limits =
        rewire_mappers::MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(2));
    use rewire_mappers::Mapper as _;
    let mapping = rewire_mappers::PathFinderMapper::new()
        .map(&dfg, &cgra, &limits)
        .mapping
        .expect("fir maps");
    // Same inputs agree...
    verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(1), 4).unwrap();
    // ...and different inputs produce a different (but internally
    // consistent) trace: the machine with inputs A never matches the
    // reference with inputs B on the load values.
    let a = machine::execute(&dfg, &cgra, &mapping, &Inputs::new(1), 4).unwrap();
    let b = reference::interpret(&dfg, &Inputs::new(2), 4);
    assert_ne!(a, b);
}
