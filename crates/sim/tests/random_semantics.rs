//! End-to-end property test: map random DFGs and verify that every mapping
//! computes exactly what the DFG computes — the strongest invariant in the
//! workspace.

use proptest::prelude::*;
use rewire_arch::presets;
use rewire_core::RewireMapper;
use rewire_dfg::generate::{random_dfg, RandomDfgParams};
use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
use rewire_sim::{verify_semantics, Inputs};
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn random_mappings_compute_the_dfg(seed in 0u64..5000, nodes in 6usize..20) {
        let dfg = random_dfg(
            &RandomDfgParams { nodes, memory_fraction: 0.15, ..Default::default() },
            seed,
        );
        let cgra = presets::paper_4x4_r4();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(700));
        let Some(mapping) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
            return Ok(());
        };
        verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(seed), 5)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    #[test]
    fn rewire_mappings_compute_the_dfg(seed in 0u64..5000, nodes in 6usize..16) {
        let dfg = random_dfg(
            &RandomDfgParams { nodes, memory_fraction: 0.15, ..Default::default() },
            seed,
        );
        let cgra = presets::paper_4x4_r4();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(700));
        let Some(mapping) = RewireMapper::new().map(&dfg, &cgra, &limits).mapping else {
            return Ok(());
        };
        verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(seed.wrapping_add(1)), 5)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    #[test]
    fn semantics_hold_on_the_two_register_fabric(seed in 0u64..5000) {
        let dfg = random_dfg(
            &RandomDfgParams { nodes: 12, memory_fraction: 0.1, ..Default::default() },
            seed,
        );
        let cgra = presets::paper_4x4_r2();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(700));
        let Some(mapping) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
            return Ok(());
        };
        verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(seed ^ 0xFF), 6)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}
