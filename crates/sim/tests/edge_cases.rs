//! Simulator edge cases: zero iterations, deep pipelines, carried
//! distances beyond the simulated window, register holds across the
//! modulo wrap at II = 1.

use rewire_arch::{presets, Coord, OpKind};
use rewire_dfg::{Dfg, EdgeId, NodeId};
use rewire_mappers::{MapLimits, Mapper, Mapping, PathFinderMapper};
use rewire_mrrg::{Mrrg, Resource, Route, Router, UnitCost};
use rewire_sim::{machine, reference, verify_semantics, Inputs, SimError};
use std::time::Duration;

#[test]
fn zero_iterations_produce_empty_traces() {
    let dfg = rewire_dfg::kernels::fir();
    let golden = reference::interpret(&dfg, &Inputs::new(0), 0);
    assert!(golden.iter().all(|t| t.is_empty()));
}

#[test]
fn one_iteration_runs_the_prologue_only() {
    // Every loop-carried operand must read its initial value.
    let mut dfg = Dfg::new("carry");
    let ld = dfg.add_node("ld", OpKind::Load);
    let phi = dfg.add_node("phi", OpKind::Phi);
    let add = dfg.add_node("add", OpKind::Add);
    dfg.add_edge(ld, add, 0).unwrap();
    dfg.add_edge(phi, add, 0).unwrap();
    dfg.add_edge(add, phi, 3).unwrap(); // far-carried
    let inputs = Inputs::new(2);
    let golden = reference::interpret(&dfg, &inputs, 2);
    // phi reads initial(add) for both iterations (distance 3 > window).
    assert_eq!(golden[phi.index()][0], inputs.initial(add.index()));
    assert_eq!(golden[phi.index()][1], inputs.initial(add.index()));
}

#[test]
fn many_iterations_stay_consistent() {
    let cgra = presets::paper_4x4_r4();
    let dfg = rewire_dfg::kernels::viterbi();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let Some(mapping) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
        return;
    };
    // 20 iterations exercises many modulo wraps of every register cell.
    verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(11), 20).unwrap();
}

/// A 1x2 fabric leaves the router no detours: a producer-consumer gap
/// wider than the single link hop *must* be bridged by a register.
fn line_fabric() -> rewire_arch::Cgra {
    "1x2 regs=1"
        .parse::<rewire_arch::random::CgraSpec>()
        .unwrap()
        .build()
        .unwrap()
}

/// At II = 1 every cycle is modulo slot 0, so a register that carries a
/// value from one cycle into the next is written by *every* iteration in
/// turn — the hold crosses the modulo wrap each cycle. The pipeline is
/// only correct because each value is read (exec events run first in a
/// cycle) before the next iteration's write lands.
#[test]
fn register_hold_across_modulo_wrap_at_ii_one() {
    let cgra = line_fabric();
    let mut dfg = Dfg::new("wrap");
    let a = dfg.add_node("a", OpKind::Const);
    let b = dfg.add_node("b", OpKind::Add);
    dfg.add_edge(a, b, 0).unwrap();
    dfg.add_edge(a, b, 0).unwrap();

    let mrrg = Mrrg::new(&cgra, 1);
    let router = Router::new(&cgra, &mrrg);
    let mut m = Mapping::new(&dfg, &mrrg);
    m.place(a, cgra.pe_at(Coord::new(0, 0)).unwrap().id(), 0);
    // Two cycles of slack over the one-hop distance: at least one cycle
    // must be spent parked in a register.
    m.place(b, cgra.pe_at(Coord::new(0, 1)).unwrap().id(), 3);
    for e in [0u32, 1] {
        let id = EdgeId::new(e);
        let req = m.request_for(&dfg, id).unwrap();
        let route = router.route(m.occupancy(), &req, &UnitCost).unwrap();
        assert!(
            route.resources().iter().any(|r| r.is_reg()),
            "a 3-cycle transfer over a 1-hop line needs a register: {route:?}"
        );
        m.set_route(id, route);
    }
    assert!(m.is_valid(&dfg, &cgra));
    // 12 iterations = 12 modulo wraps of every register cell involved.
    verify_semantics(&dfg, &cgra, &m, &Inputs::new(3), 12).unwrap();
}

/// The clobber detector at II = 1: a hand-built route that parks the
/// value in the consumer-side register one cycle too late. Structural
/// validation cannot see it (the request matches the placements and no
/// cell is claimed twice), but the machine's register file catches the
/// read of a value the producer has not delivered yet — the overwrite
/// class of modulo-wrap bugs.
#[test]
fn register_overwrite_across_wrap_is_caught() {
    let cgra = line_fabric();
    let mut dfg = Dfg::new("wrap-bad");
    let a = dfg.add_node("a", OpKind::Const);
    let b = dfg.add_node("b", OpKind::Addr);
    let e = dfg.add_edge(a, b, 0).unwrap();

    let pe0 = cgra.pe_at(Coord::new(0, 0)).unwrap().id();
    let pe1 = cgra.pe_at(Coord::new(0, 1)).unwrap().id();
    let mrrg = Mrrg::new(&cgra, 1);
    let router = Router::new(&cgra, &mrrg);
    let mut m = Mapping::new(&dfg, &mrrg);
    m.place(a, pe0, 0);
    m.place(b, pe1, 3);
    let req = m.request_for(&dfg, e).unwrap();
    // Borrow the real route's request/cost but mis-schedule the cells:
    // producer-side register at cycle 1, link hop at cycle 2, and the
    // consumer-side register written only at cycle 3 — the same cycle the
    // consumer already reads it.
    let good = router.route(m.occupancy(), &req, &UnitCost).unwrap();
    let link = cgra.links_from(pe0).find(|l| l.dst() == pe1).unwrap().id();
    let cells = vec![
        Resource::Reg {
            pe: pe0,
            reg: 0,
            slot: 0,
        },
        Resource::Link { link, slot: 0 },
        Resource::Reg {
            pe: pe1,
            reg: 0,
            slot: 0,
        },
    ];
    m.set_route(e, Route::from_parts(*good.request(), cells, good.cost()));
    assert!(
        m.is_valid(&dfg, &cgra),
        "the mis-scheduled route must slip past structural validation"
    );
    let err = machine::execute(&dfg, &cgra, &m, &Inputs::new(3), 4).unwrap_err();
    assert!(
        matches!(err, SimError::RegisterClobbered { iteration: 0, .. }),
        "expected a register clobber at iteration 0, got: {err}"
    );
}

/// Every `SimError` variant renders a stable, information-complete
/// message: each structured field round-trips into the Display output.
#[test]
fn sim_error_display_round_trips_every_field() {
    let cases: Vec<(SimError, &[&str])> = vec![
        (SimError::InvalidMapping, &["structural validation"]),
        (
            SimError::RegisterClobbered {
                edge: EdgeId::new(7),
                iteration: 3,
                cycle: 19,
            },
            &["7", "3", "19", "clobbered"],
        ),
        (
            SimError::SlotMismatch {
                edge: EdgeId::new(4),
                cycle: 11,
                expected: 1,
                found: 0,
            },
            &["4", "11", "slot 1", "slot 0"],
        ),
        (
            SimError::ValueMismatch {
                node: NodeId::new(2),
                iteration: 5,
                expected: 42,
                got: -6,
            },
            &["2", "5", "42", "-6"],
        ),
    ];
    let mut rendered = Vec::new();
    for (err, needles) in cases {
        let msg = err.to_string();
        for needle in needles {
            assert!(msg.contains(needle), "`{msg}` misses `{needle}`");
        }
        rendered.push(msg);
    }
    // Messages are pairwise distinct — no two variants collapse.
    for i in 0..rendered.len() {
        for j in i + 1..rendered.len() {
            assert_ne!(rendered[i], rendered[j]);
        }
    }
}

#[test]
fn machine_trace_shape_matches_request() {
    let cgra = presets::paper_4x4_r4();
    let dfg = rewire_dfg::kernels::fir();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let Some(mapping) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
        return;
    };
    let trace = machine::execute(&dfg, &cgra, &mapping, &Inputs::new(1), 7).unwrap();
    assert_eq!(trace.len(), dfg.num_nodes());
    assert!(trace.iter().all(|t| t.len() == 7));
}
