//! Simulator edge cases: zero iterations, deep pipelines, carried
//! distances beyond the simulated window.

use rewire_arch::{presets, OpKind};
use rewire_dfg::Dfg;
use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
use rewire_sim::{machine, reference, verify_semantics, Inputs};
use std::time::Duration;

#[test]
fn zero_iterations_produce_empty_traces() {
    let dfg = rewire_dfg::kernels::fir();
    let golden = reference::interpret(&dfg, &Inputs::new(0), 0);
    assert!(golden.iter().all(|t| t.is_empty()));
}

#[test]
fn one_iteration_runs_the_prologue_only() {
    // Every loop-carried operand must read its initial value.
    let mut dfg = Dfg::new("carry");
    let ld = dfg.add_node("ld", OpKind::Load);
    let phi = dfg.add_node("phi", OpKind::Phi);
    let add = dfg.add_node("add", OpKind::Add);
    dfg.add_edge(ld, add, 0).unwrap();
    dfg.add_edge(phi, add, 0).unwrap();
    dfg.add_edge(add, phi, 3).unwrap(); // far-carried
    let inputs = Inputs::new(2);
    let golden = reference::interpret(&dfg, &inputs, 2);
    // phi reads initial(add) for both iterations (distance 3 > window).
    assert_eq!(golden[phi.index()][0], inputs.initial(add.index()));
    assert_eq!(golden[phi.index()][1], inputs.initial(add.index()));
}

#[test]
fn many_iterations_stay_consistent() {
    let cgra = presets::paper_4x4_r4();
    let dfg = rewire_dfg::kernels::viterbi();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let Some(mapping) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
        return;
    };
    // 20 iterations exercises many modulo wraps of every register cell.
    verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(11), 20).unwrap();
}

#[test]
fn machine_trace_shape_matches_request() {
    let cgra = presets::paper_4x4_r4();
    let dfg = rewire_dfg::kernels::fir();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let Some(mapping) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
        return;
    };
    let trace = machine::execute(&dfg, &cgra, &mapping, &Inputs::new(1), 7).unwrap();
    assert_eq!(trace.len(), dfg.num_nodes());
    assert!(trace.iter().all(|t| t.len() == 7));
}
