//! Utilization invariants across random mapped kernels.

use proptest::prelude::*;
use rewire_arch::presets;
use rewire_dfg::generate::{random_dfg, RandomDfgParams};
use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
use rewire_sim::config::Configuration;
use rewire_sim::Utilization;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Utilization fractions are always in [0, 1], and the FU fraction is
    /// exactly nodes / (PEs · II).
    #[test]
    fn utilization_bounds(seed in 0u64..4000, nodes in 6usize..18) {
        let dfg = random_dfg(
            &RandomDfgParams { nodes, memory_fraction: 0.15, ..Default::default() },
            seed,
        );
        let cgra = presets::paper_4x4_r4();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(600));
        let Some(m) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
            return Ok(());
        };
        let cfg = Configuration::from_mapping(&dfg, &m);
        let u = Utilization::of(&cfg, &cgra);
        for v in [u.fu, u.links, u.regs] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let expect = dfg.num_nodes() as f64 / (cgra.num_pes() as f64 * m.ii() as f64);
        prop_assert!((u.fu - expect).abs() < 1e-9);
    }

    /// Configuration control words never exceed physical capacity.
    #[test]
    fn configuration_fits_the_fabric(seed in 0u64..4000) {
        let dfg = random_dfg(
            &RandomDfgParams { nodes: 12, memory_fraction: 0.1, ..Default::default() },
            seed,
        );
        let cgra = presets::paper_4x4_r2();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(600));
        let Some(m) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
            return Ok(());
        };
        let cfg = Configuration::from_mapping(&dfg, &m);
        let ii = cfg.ii() as usize;
        let (fu, links, regs) = cfg.utilization();
        prop_assert!(fu <= cgra.num_pes() * ii);
        prop_assert!(links <= cgra.num_links() * ii);
        prop_assert!(regs <= cgra.num_pes() * cgra.regs_per_pe() as usize * ii);
    }
}
