//! Property-based tests of fabric topology construction.

use proptest::prelude::*;
use rewire_arch::{CgraBuilder, Coord, Direction};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Mesh link counts match the closed form and all links are unit hops.
    #[test]
    fn mesh_structure(rows in 1u16..9, cols in 1u16..9) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        prop_assert_eq!(cgra.num_pes(), rows as usize * cols as usize);
        let expected = 2 * (rows as usize * (cols as usize - 1)
            + cols as usize * (rows as usize - 1));
        prop_assert_eq!(cgra.num_links(), expected);
        for link in cgra.links() {
            let a = cgra.pe(link.src()).coord();
            let b = cgra.pe(link.dst()).coord();
            prop_assert_eq!(a.manhattan(b), 1);
        }
    }

    /// On a torus every PE has exactly four outgoing and four incoming
    /// links (when both dimensions exceed 1).
    #[test]
    fn torus_regularity(rows in 2u16..9, cols in 2u16..9) {
        let cgra = CgraBuilder::new(rows, cols).torus(true).build().unwrap();
        for pe in cgra.pes() {
            prop_assert_eq!(cgra.links_from(pe.id()).count(), 4);
            prop_assert_eq!(cgra.links_to(pe.id()).count(), 4);
        }
    }

    /// Every directed mesh link has its reverse twin.
    #[test]
    fn mesh_links_come_in_pairs(rows in 1u16..8, cols in 1u16..8) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        for link in cgra.links() {
            let reverse = cgra
                .links_from(link.dst())
                .any(|l| l.dst() == link.src());
            prop_assert!(reverse, "{link} has no twin");
        }
    }

    /// Directions are consistent with coordinates.
    #[test]
    fn directions_match_geometry(rows in 2u16..8, cols in 2u16..8) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        for link in cgra.links() {
            let a = cgra.pe(link.src()).coord();
            let b = cgra.pe(link.dst()).coord();
            let expect = if b.row + 1 == a.row {
                Direction::North
            } else if b.row == a.row + 1 {
                Direction::South
            } else if b.col == a.col + 1 {
                Direction::East
            } else {
                Direction::West
            };
            prop_assert_eq!(link.direction(), expect);
        }
    }

    /// Memory columns mark exactly rows × |columns| PEs.
    #[test]
    fn memory_column_counts(rows in 1u16..8, cols in 2u16..8, pick in 0u16..8) {
        let col = pick % cols;
        let cgra = CgraBuilder::new(rows, cols)
            .memory_banks(2)
            .memory_columns([col])
            .build()
            .unwrap();
        prop_assert_eq!(cgra.memory_pes().count(), rows as usize);
        for pe in cgra.memory_pes() {
            prop_assert_eq!(pe.coord().col, col);
        }
    }

    /// `pe_at` is the inverse of `coord()` and rejects out-of-range lookups.
    #[test]
    fn coordinate_round_trip(rows in 1u16..8, cols in 1u16..8) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        for pe in cgra.pes() {
            prop_assert_eq!(cgra.pe_at(pe.coord()).unwrap().id(), pe.id());
        }
        prop_assert!(cgra.pe_at(Coord::new(rows, 0)).is_none());
        prop_assert!(cgra.pe_at(Coord::new(0, cols)).is_none());
    }
}
