//! Property-based tests of fabric topology construction, spec round-trips
//! and fingerprint stability.

use proptest::prelude::*;
use rewire_arch::random::{random_cgra_spec, CgraSpec, RandomCgraParams};
use rewire_arch::{CgraBuilder, Coord, Direction};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Mesh link counts match the closed form and all links are unit hops.
    #[test]
    fn mesh_structure(rows in 1u16..9, cols in 1u16..9) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        prop_assert_eq!(cgra.num_pes(), rows as usize * cols as usize);
        let expected = 2 * (rows as usize * (cols as usize - 1)
            + cols as usize * (rows as usize - 1));
        prop_assert_eq!(cgra.num_links(), expected);
        for link in cgra.links() {
            let a = cgra.pe(link.src()).coord();
            let b = cgra.pe(link.dst()).coord();
            prop_assert_eq!(a.manhattan(b), 1);
        }
    }

    /// On a torus every PE has exactly four outgoing and four incoming
    /// links (when both dimensions exceed 1).
    #[test]
    fn torus_regularity(rows in 2u16..9, cols in 2u16..9) {
        let cgra = CgraBuilder::new(rows, cols).torus(true).build().unwrap();
        for pe in cgra.pes() {
            prop_assert_eq!(cgra.links_from(pe.id()).count(), 4);
            prop_assert_eq!(cgra.links_to(pe.id()).count(), 4);
        }
    }

    /// Every directed mesh link has its reverse twin.
    #[test]
    fn mesh_links_come_in_pairs(rows in 1u16..8, cols in 1u16..8) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        for link in cgra.links() {
            let reverse = cgra
                .links_from(link.dst())
                .any(|l| l.dst() == link.src());
            prop_assert!(reverse, "{link} has no twin");
        }
    }

    /// Directions are consistent with coordinates.
    #[test]
    fn directions_match_geometry(rows in 2u16..8, cols in 2u16..8) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        for link in cgra.links() {
            let a = cgra.pe(link.src()).coord();
            let b = cgra.pe(link.dst()).coord();
            let expect = if b.row + 1 == a.row {
                Direction::North
            } else if b.row == a.row + 1 {
                Direction::South
            } else if b.col == a.col + 1 {
                Direction::East
            } else {
                Direction::West
            };
            prop_assert_eq!(link.direction(), expect);
        }
    }

    /// Memory columns mark exactly rows × |columns| PEs.
    #[test]
    fn memory_column_counts(rows in 1u16..8, cols in 2u16..8, pick in 0u16..8) {
        let col = pick % cols;
        let cgra = CgraBuilder::new(rows, cols)
            .memory_banks(2)
            .memory_columns([col])
            .build()
            .unwrap();
        prop_assert_eq!(cgra.memory_pes().count(), rows as usize);
        for pe in cgra.memory_pes() {
            prop_assert_eq!(pe.coord().col, col);
        }
    }

    /// `pe_at` is the inverse of `coord()` and rejects out-of-range lookups.
    #[test]
    fn coordinate_round_trip(rows in 1u16..8, cols in 1u16..8) {
        let cgra = CgraBuilder::new(rows, cols).build().unwrap();
        for pe in cgra.pes() {
            prop_assert_eq!(cgra.pe_at(pe.coord()).unwrap().id(), pe.id());
        }
        prop_assert!(cgra.pe_at(Coord::new(rows, 0)).is_none());
        prop_assert!(cgra.pe_at(Coord::new(0, cols)).is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// `Display` → `FromStr` is the identity on big-fabric specs (the
    /// reproduction artifact format the fuzz corpus and the scaling suite
    /// both persist), including torus/diagonal wraps and cut rows.
    #[test]
    fn big_fabric_spec_display_round_trips(arch_seed in 0u64..512) {
        let p = RandomCgraParams {
            cut_prob: 0.3,
            torus_prob: 0.3,
            diagonal_prob: 0.3,
            ..RandomCgraParams::large_fabric()
        };
        let spec = random_cgra_spec(&p, arch_seed);
        let parsed: CgraSpec = spec.to_string().parse().unwrap();
        prop_assert_eq!(&parsed, &spec, "round-trip through {}", spec);
    }

    /// The topology fingerprint is a pure function of the spec: two
    /// independent builds of the same big-fabric spec (16×16 and up, cut
    /// rows included) agree, and a build of the parsed display string
    /// agrees with the original.
    #[test]
    fn fingerprints_are_stable_across_rebuilds(arch_seed in 0u64..96) {
        let p = RandomCgraParams {
            cut_prob: 0.4,
            ..RandomCgraParams::large_fabric()
        };
        let spec = random_cgra_spec(&p, arch_seed);
        let a = spec.build().unwrap().topology_fingerprint();
        let b = spec.build().unwrap().topology_fingerprint();
        prop_assert_eq!(a, b, "rebuild of {} drifted", spec);
        let reparsed: CgraSpec = spec.to_string().parse().unwrap();
        prop_assert_eq!(
            reparsed.build().unwrap().topology_fingerprint(),
            a,
            "parsed copy of {} drifted",
            spec
        );
    }

    /// The fuzz shrinker's "reconnect the cut" move: dropping `cut=R`
    /// restores exactly the links an uncut spec has, so the reconnected
    /// fingerprint equals the never-cut one — and differs from the cut
    /// fabric's (the fingerprint must see severed links).
    #[test]
    fn reconnecting_a_cut_restores_the_uncut_fingerprint(
        n in 16u16..24,
        cut in 1u16..16,
    ) {
        let mut spec = CgraSpec::mesh(n);
        spec.cut_row = Some(cut % (n - 1) + 1);
        let cut_fp = spec.build().unwrap().topology_fingerprint();
        // The shrinker's move: same spec, cut reconnected.
        let mut reconnected = spec.clone();
        reconnected.cut_row = None;
        let rec_fp = reconnected.build().unwrap().topology_fingerprint();
        let uncut_fp = CgraSpec::mesh(n).build().unwrap().topology_fingerprint();
        prop_assert_eq!(rec_fp, uncut_fp, "reconnect of {} is not the uncut mesh", spec);
        prop_assert_ne!(cut_fp, uncut_fp, "fingerprint is blind to the cut in {}", spec);
    }
}

/// The 16×16/32×16-with-cut display strings the scaling suite and fuzz
/// artifacts rely on parse to the exact spec, and the `mesh(n)` spec is
/// fingerprint-identical to the corresponding preset.
#[test]
fn mesh_spec_strings_parse_to_the_presets() {
    let spec: CgraSpec = "16x16 regs=4 banks=16 memcols=0,15".parse().unwrap();
    assert_eq!(spec, CgraSpec::mesh(16));
    assert_eq!(
        spec.build().unwrap().topology_fingerprint(),
        rewire_arch::presets::mesh16().topology_fingerprint()
    );
    let cut: CgraSpec = "16x16 regs=4 banks=16 memcols=0,15 cut=8".parse().unwrap();
    assert_eq!(cut.cut_row, Some(8));
    assert_ne!(
        cut.build().unwrap().topology_fingerprint(),
        spec.build().unwrap().topology_fingerprint()
    );
}
