//! Errors raised while constructing architectures.

use std::error::Error;
use std::fmt;

/// Error returned by [`CgraBuilder::build`](crate::CgraBuilder::build) for an
/// inconsistent configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum BuildCgraError {
    /// The grid has zero rows or zero columns.
    EmptyGrid,
    /// A memory column index is outside `0..cols`.
    MemoryColumnOutOfRange {
        /// The offending column index.
        column: u16,
        /// Number of columns in the grid.
        cols: u16,
    },
    /// Memory operations can never be placed: banks exist but no column may
    /// access them, or columns are declared but there are zero banks.
    InconsistentMemory,
    /// A cut row index does not split the grid: it must satisfy
    /// `1 <= row < rows` so both halves are non-empty.
    CutRowOutOfRange {
        /// The offending cut row index.
        row: u16,
        /// Number of rows in the grid.
        rows: u16,
    },
}

impl fmt::Display for BuildCgraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCgraError::EmptyGrid => f.write_str("grid must have at least one row and column"),
            BuildCgraError::MemoryColumnOutOfRange { column, cols } => write!(
                f,
                "memory column {column} is out of range for a grid with {cols} columns"
            ),
            BuildCgraError::InconsistentMemory => {
                f.write_str("memory banks and memory columns must both be present or both absent")
            }
            BuildCgraError::CutRowOutOfRange { row, rows } => write!(
                f,
                "cut row {row} must lie strictly inside a grid with {rows} rows"
            ),
        }
    }
}

impl Error for BuildCgraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_unpunctuated() {
        let msgs = [
            BuildCgraError::EmptyGrid.to_string(),
            BuildCgraError::MemoryColumnOutOfRange { column: 9, cols: 4 }.to_string(),
            BuildCgraError::InconsistentMemory.to_string(),
            BuildCgraError::CutRowOutOfRange { row: 1, rows: 3 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
        }
    }
}
