//! Processing element description.

use crate::{Coord, OpKind, PeId};
use std::fmt;

/// A single processing element of the CGRA.
///
/// Every PE contains one single-issue ALU and `regs` register cells used to
/// buffer values that are being routed through or held across cycles. PEs in
/// memory-capable columns additionally own a port into the on-chip memory
/// banks and are the only legal placements for [`OpKind::Load`] /
/// [`OpKind::Store`] nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pe {
    id: PeId,
    coord: Coord,
    memory_capable: bool,
    regs: u8,
}

impl Pe {
    pub(crate) fn new(id: PeId, coord: Coord, memory_capable: bool, regs: u8) -> Self {
        Self {
            id,
            coord,
            memory_capable,
            regs,
        }
    }

    /// The dense identifier of this PE.
    pub fn id(&self) -> PeId {
        self.id
    }

    /// Grid position of this PE.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Whether this PE can issue memory operations.
    pub fn memory_capable(&self) -> bool {
        self.memory_capable
    }

    /// Number of register cells available for routing/buffering per cycle.
    pub fn regs(&self) -> u8 {
        self.regs
    }

    /// Whether `op` may legally execute on this PE.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_arch::{presets, OpKind};
    /// let cgra = presets::paper_4x4_r4();
    /// let mem_pe = cgra.pe_at((0, 0).into()).unwrap();
    /// let inner_pe = cgra.pe_at((0, 2).into()).unwrap();
    /// assert!(mem_pe.supports(OpKind::Load));
    /// assert!(!inner_pe.supports(OpKind::Load));
    /// assert!(inner_pe.supports(OpKind::Mul));
    /// ```
    pub fn supports(&self, op: OpKind) -> bool {
        !op.is_memory() || self.memory_capable
    }
}

impl fmt::Display for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}{}",
            self.id,
            self.coord,
            if self.memory_capable { " [mem]" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_support_depends_on_capability() {
        let mem = Pe::new(PeId::new(0), Coord::new(0, 0), true, 4);
        let plain = Pe::new(PeId::new(1), Coord::new(0, 1), false, 4);
        assert!(mem.supports(OpKind::Store));
        assert!(!plain.supports(OpKind::Store));
        assert!(plain.supports(OpKind::Add));
    }

    #[test]
    fn display_marks_memory_pes() {
        let mem = Pe::new(PeId::new(0), Coord::new(0, 0), true, 4);
        assert!(format!("{mem}").contains("[mem]"));
        let plain = Pe::new(PeId::new(1), Coord::new(0, 1), false, 4);
        assert!(!format!("{plain}").contains("[mem]"));
    }
}
