//! Seeded random fabric generation for the differential fuzz harness.
//!
//! Mirrors `rewire_dfg::generate` on the architecture side: the fuzzer
//! pairs a random DFG with a random fabric and asks every mapper about the
//! combination. A [`CgraSpec`] is the persistable intermediate — small,
//! printable, and exactly reconstructible — so a shrunk failure artifact
//! can embed the fabric alongside the DFG text.

use crate::{BuildCgraError, Cgra, CgraBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// A buildable description of a mesh CGRA: everything [`CgraBuilder`]
/// accepts, as plain data.
///
/// Unlike [`Cgra`] (id-resolved PEs and links), a spec is cheap to store,
/// compare and print; [`CgraSpec::build`] re-derives the full fabric
/// deterministically. The fuzz corpus stores specs in their
/// [`Display`](fmt::Display) form, e.g. `4x4 regs=2 banks=2 memcols=0
/// torus diag`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CgraSpec {
    /// Mesh rows.
    pub rows: u16,
    /// Mesh columns.
    pub cols: u16,
    /// Register cells per PE.
    pub regs_per_pe: u8,
    /// On-chip memory banks (0 = pure-compute fabric).
    pub memory_banks: u16,
    /// Columns whose PEs may issue memory operations (sorted, deduped).
    pub memory_columns: Vec<u16>,
    /// Torus wrap-around links.
    pub torus: bool,
    /// Diagonal single-hop links.
    pub diagonals: bool,
    /// Severed horizontal boundary (`Some(r)` disconnects rows `0..r` from
    /// rows `r..rows`), for exercising unreachable-PE behaviour.
    pub cut_row: Option<u16>,
}

impl CgraSpec {
    /// The spec of an `n`×`n` mesh preset in the big-fabric layout
    /// (`presets::mesh16/32/64`): four registers per PE, one bank per
    /// row, memory on the outermost columns.
    pub fn mesh(n: u16) -> Self {
        Self {
            rows: n,
            cols: n,
            regs_per_pe: 4,
            memory_banks: n,
            memory_columns: if n > 1 { vec![0, n - 1] } else { vec![0] },
            torus: false,
            diagonals: false,
            cut_row: None,
        }
    }

    /// Builds the fabric this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCgraError`] for hand-written inconsistent specs
    /// (empty grid, memory column out of range, banks without columns);
    /// specs from [`random_cgra_spec`] always build.
    pub fn build(&self) -> Result<Cgra, BuildCgraError> {
        let mut builder = CgraBuilder::new(self.rows, self.cols)
            .regs_per_pe(self.regs_per_pe)
            .memory_banks(self.memory_banks)
            .memory_columns(self.memory_columns.iter().copied())
            .torus(self.torus)
            .diagonals(self.diagonals);
        if let Some(cut) = self.cut_row {
            builder = builder.cut_row(cut);
        }
        builder.build()
    }
}

impl fmt::Display for CgraSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} regs={} banks={}",
            self.rows, self.cols, self.regs_per_pe, self.memory_banks
        )?;
        if !self.memory_columns.is_empty() {
            let cols: Vec<String> = self.memory_columns.iter().map(u16::to_string).collect();
            write!(f, " memcols={}", cols.join(","))?;
        }
        if self.torus {
            f.write_str(" torus")?;
        }
        if self.diagonals {
            f.write_str(" diag")?;
        }
        if let Some(cut) = self.cut_row {
            write!(f, " cut={cut}")?;
        }
        Ok(())
    }
}

/// Error from parsing a [`CgraSpec`] display string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseCgraSpecError(String);

impl fmt::Display for ParseCgraSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad CGRA spec: {}", self.0)
    }
}

impl std::error::Error for ParseCgraSpecError {}

impl FromStr for CgraSpec {
    type Err = ParseCgraSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut tokens = s.split_whitespace();
        let dims = tokens
            .next()
            .ok_or_else(|| ParseCgraSpecError("empty spec".into()))?;
        let (rows, cols) = dims
            .split_once('x')
            .ok_or_else(|| ParseCgraSpecError(format!("expected RxC, got '{dims}'")))?;
        let parse_num = |what: &str, v: &str| -> Result<u64, ParseCgraSpecError> {
            v.parse()
                .map_err(|_| ParseCgraSpecError(format!("bad {what} '{v}'")))
        };
        let mut spec = CgraSpec {
            rows: parse_num("rows", rows)? as u16,
            cols: parse_num("cols", cols)? as u16,
            regs_per_pe: 4,
            memory_banks: 0,
            memory_columns: Vec::new(),
            torus: false,
            diagonals: false,
            cut_row: None,
        };
        for tok in tokens {
            if let Some(v) = tok.strip_prefix("regs=") {
                spec.regs_per_pe = parse_num("regs", v)? as u8;
            } else if let Some(v) = tok.strip_prefix("banks=") {
                spec.memory_banks = parse_num("banks", v)? as u16;
            } else if let Some(v) = tok.strip_prefix("memcols=") {
                for c in v.split(',') {
                    spec.memory_columns.push(parse_num("memcol", c)? as u16);
                }
            } else if let Some(v) = tok.strip_prefix("cut=") {
                spec.cut_row = Some(parse_num("cut", v)? as u16);
            } else if tok == "torus" {
                spec.torus = true;
            } else if tok == "diag" {
                spec.diagonals = true;
            } else {
                return Err(ParseCgraSpecError(format!("unknown token '{tok}'")));
            }
        }
        Ok(spec)
    }
}

/// Parameters for [`random_cgra_spec`].
///
/// Defaults sample small fabrics (2×2 up to 6×6) around the paper's 4×4
/// baseline, with occasional torus/diagonal interconnects and occasional
/// memory-free fabrics — the latter deliberately produce infeasible
/// scenarios (a DFG with loads on a fabric with no memory PEs) so the
/// fuzzer also exercises every mapper's give-up paths.
#[derive(Clone, Debug)]
pub struct RandomCgraParams {
    /// Inclusive row range.
    pub rows: (u16, u16),
    /// Inclusive column range.
    pub cols: (u16, u16),
    /// Inclusive registers-per-PE range.
    pub regs_per_pe: (u8, u8),
    /// Probability the fabric has memory banks at all.
    pub memory_prob: f64,
    /// Inclusive bank-count range when memory is present.
    pub memory_banks: (u16, u16),
    /// Maximum number of memory columns when memory is present (at least 1
    /// is always chosen; capped by the fabric's column count).
    pub max_memory_columns: u16,
    /// Probability of torus wrap-around links.
    pub torus_prob: f64,
    /// Probability of diagonal links.
    pub diagonal_prob: f64,
    /// Probability of a severed row boundary (disconnected fabric). Zero by
    /// default so existing seed streams are unchanged; only fabrics with at
    /// least two rows can be cut.
    pub cut_prob: f64,
}

impl Default for RandomCgraParams {
    fn default() -> Self {
        Self {
            rows: (2, 6),
            cols: (2, 6),
            regs_per_pe: (1, 4),
            memory_prob: 0.85,
            memory_banks: (1, 4),
            max_memory_columns: 2,
            torus_prob: 0.15,
            diagonal_prob: 0.15,
            cut_prob: 0.0,
        }
    }
}

impl RandomCgraParams {
    /// Parameters sampling big fabrics (12×12 up to 40×40, straddling
    /// `DistanceOracle::DENSE_PE_LIMIT` from both sides) with occasional
    /// cut rows, so fuzzing exercises the tiered landmark oracle and the
    /// lazy occupancy paths, not just the paper-scale meshes.
    pub fn large_fabric() -> Self {
        Self {
            rows: (12, 40),
            cols: (12, 40),
            regs_per_pe: (2, 4),
            memory_prob: 0.9,
            memory_banks: (4, 16),
            max_memory_columns: 4,
            torus_prob: 0.1,
            diagonal_prob: 0.1,
            cut_prob: 0.1,
        }
    }
}

/// Draws a random fabric spec. Deterministic: same `params` and `seed` ⇒
/// identical spec.
///
/// The result always satisfies [`CgraBuilder`]'s invariants (non-empty
/// grid, in-range memory columns, banks ⇔ columns), so
/// [`CgraSpec::build`] cannot fail on it.
///
/// # Examples
///
/// ```
/// use rewire_arch::random::{random_cgra_spec, RandomCgraParams};
/// let spec = random_cgra_spec(&RandomCgraParams::default(), 7);
/// assert_eq!(spec, random_cgra_spec(&RandomCgraParams::default(), 7));
/// let cgra = spec.build().expect("random specs always build");
/// assert!(cgra.num_pes() >= 4);
/// ```
///
/// # Panics
///
/// Panics if a range in `params` is inverted (e.g. `rows.0 > rows.1`).
pub fn random_cgra_spec(params: &RandomCgraParams, seed: u64) -> CgraSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = rng.random_range(params.rows.0..=params.rows.1).max(1);
    let cols = rng.random_range(params.cols.0..=params.cols.1).max(1);
    let regs_per_pe = rng
        .random_range(params.regs_per_pe.0..=params.regs_per_pe.1)
        .max(1);

    let (memory_banks, memory_columns) = if rng.random_bool(params.memory_prob) {
        let banks = rng
            .random_range(params.memory_banks.0..=params.memory_banks.1)
            .max(1);
        let n_cols = rng
            .random_range(1..=params.max_memory_columns.max(1))
            .min(cols);
        let mut all: Vec<u16> = (0..cols).collect();
        all.shuffle(&mut rng);
        let mut chosen: Vec<u16> = all.into_iter().take(n_cols as usize).collect();
        chosen.sort_unstable();
        (banks, chosen)
    } else {
        (0, Vec::new())
    };

    let torus = rng.random_bool(params.torus_prob);
    let diagonals = rng.random_bool(params.diagonal_prob);
    // Drawn after every pre-existing field so seeds from before the cut-row
    // feature still produce byte-identical specs when `cut_prob` is 0.
    let cut_row = if params.cut_prob > 0.0 && rows >= 2 && rng.random_bool(params.cut_prob) {
        Some(rng.random_range(1..rows))
    } else {
        None
    };

    CgraSpec {
        rows,
        cols,
        regs_per_pe,
        memory_banks,
        memory_columns,
        torus,
        diagonals,
        cut_row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = RandomCgraParams::default();
        assert_eq!(random_cgra_spec(&p, 3), random_cgra_spec(&p, 3));
    }

    #[test]
    fn seeds_vary_the_fabric() {
        let p = RandomCgraParams::default();
        let distinct: std::collections::HashSet<String> = (0..32)
            .map(|s| random_cgra_spec(&p, s).to_string())
            .collect();
        assert!(distinct.len() > 8, "only {} distinct specs", distinct.len());
    }

    #[test]
    fn every_random_spec_builds() {
        let p = RandomCgraParams::default();
        for seed in 0..200 {
            let spec = random_cgra_spec(&p, seed);
            let cgra = spec.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(
                cgra.num_pes() as u32,
                spec.rows as u32 * spec.cols as u32,
                "seed {seed}"
            );
            assert!(spec.regs_per_pe >= 1);
            // Banks and columns are consistent by construction.
            assert_eq!(
                spec.memory_banks == 0,
                spec.memory_columns.is_empty(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn memory_free_fabrics_occur() {
        let p = RandomCgraParams {
            memory_prob: 0.5,
            ..Default::default()
        };
        let free = (0..64)
            .filter(|&s| random_cgra_spec(&p, s).memory_banks == 0)
            .count();
        assert!(free > 0, "no memory-free fabric in 64 seeds");
        assert!(free < 64, "every fabric memory-free in 64 seeds");
    }

    #[test]
    fn cut_fabrics_occur_and_build() {
        let p = RandomCgraParams {
            cut_prob: 0.5,
            ..Default::default()
        };
        let mut cut = 0;
        for seed in 0..64 {
            let spec = random_cgra_spec(&p, seed);
            let cgra = spec.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if let Some(r) = spec.cut_row {
                cut += 1;
                assert!(r >= 1 && r < spec.rows, "seed {seed}");
                assert!(cgra.num_pes() >= 4);
            }
        }
        assert!(cut > 0, "no cut fabric in 64 seeds");
        assert!(cut < 64, "every fabric cut in 64 seeds");
    }

    #[test]
    fn zero_cut_prob_preserves_legacy_seed_stream() {
        // The cut draw is appended after all pre-existing draws and skipped
        // entirely at probability zero, so default-params specs match the
        // pre-cut-row format byte for byte.
        let p = RandomCgraParams::default();
        for seed in 0..64 {
            let spec = random_cgra_spec(&p, seed);
            assert_eq!(spec.cut_row, None, "seed {seed}");
        }
    }

    #[test]
    fn display_round_trips() {
        let p = RandomCgraParams::default();
        for seed in 0..64 {
            let spec = random_cgra_spec(&p, seed);
            let parsed: CgraSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec, "seed {seed}");
        }
    }

    #[test]
    fn display_round_trips_hand_written() {
        let spec = CgraSpec {
            rows: 3,
            cols: 5,
            regs_per_pe: 2,
            memory_banks: 2,
            memory_columns: vec![0, 4],
            torus: true,
            diagonals: true,
            cut_row: Some(2),
        };
        let s = spec.to_string();
        assert_eq!(s, "3x5 regs=2 banks=2 memcols=0,4 torus diag cut=2");
        assert_eq!(s.parse::<CgraSpec>().unwrap(), spec);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!("".parse::<CgraSpec>().is_err());
        assert!("4".parse::<CgraSpec>().is_err());
        assert!("4x4 wat".parse::<CgraSpec>().is_err());
        assert!("4x4 regs=zz".parse::<CgraSpec>().is_err());
        let err = "nope".parse::<CgraSpec>().unwrap_err();
        assert!(err.to_string().contains("expected RxC"));
    }

    #[test]
    fn mesh_spec_matches_the_presets() {
        for (n, preset) in [
            (16u16, crate::presets::mesh16()),
            (32, crate::presets::mesh32()),
        ] {
            let built = CgraSpec::mesh(n).build().unwrap();
            assert_eq!(
                built.topology_fingerprint(),
                preset.topology_fingerprint(),
                "{n}x{n}"
            );
            assert_eq!(built.memory_banks(), preset.memory_banks());
        }
    }

    #[test]
    fn large_fabric_params_build_and_cut() {
        let p = RandomCgraParams::large_fabric();
        let mut cut = 0;
        let mut past_dense_limit = 0;
        for seed in 0..64 {
            let spec = random_cgra_spec(&p, seed);
            let cgra = spec.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(cgra.num_pes() >= 144, "seed {seed}");
            if spec.cut_row.is_some() {
                cut += 1;
            }
            if cgra.num_pes() > 256 {
                past_dense_limit += 1;
            }
        }
        assert!(cut > 0, "no cut fabric in 64 large-fabric seeds");
        assert!(
            past_dense_limit > 16,
            "only {past_dense_limit}/64 fabrics exceed the dense oracle limit"
        );
    }

    #[test]
    fn hand_written_bad_spec_fails_build() {
        let spec = CgraSpec {
            rows: 2,
            cols: 2,
            regs_per_pe: 1,
            memory_banks: 1,
            memory_columns: vec![9],
            torus: false,
            diagonals: false,
            cut_row: None,
        };
        assert!(matches!(
            spec.build(),
            Err(BuildCgraError::MemoryColumnOutOfRange { .. })
        ));
    }
}
