//! The CGRA configurations evaluated in the Rewire paper (§V).
//!
//! All 4×4 variants have two local memory banks accessible from the left-most
//! PE column; the 8×8 variant has eight banks accessible from the left-most
//! and right-most columns (16 memory PEs).

use crate::{Cgra, CgraBuilder};

/// 4×4 CGRA, four registers per PE (the paper's baseline, Fig 5a).
pub fn paper_4x4_r4() -> Cgra {
    four_by_four(4)
}

/// 4×4 CGRA, two registers per PE (Fig 5c).
pub fn paper_4x4_r2() -> Cgra {
    four_by_four(2)
}

/// 4×4 CGRA, one register per PE — the paper's deliberately impractical
/// extreme-case configuration (Fig 5d).
pub fn paper_4x4_r1() -> Cgra {
    four_by_four(1)
}

/// 8×8 CGRA, four registers per PE (Fig 5b).
pub fn paper_8x8_r4() -> Cgra {
    CgraBuilder::new(8, 8)
        .regs_per_pe(4)
        .memory_banks(8)
        .memory_columns([0, 7])
        .build()
        .expect("preset configuration is valid")
}

/// All four paper configurations with their Fig 5 labels, in figure order.
pub fn all_paper_configs() -> Vec<(&'static str, Cgra)> {
    vec![
        ("4x4 4reg", paper_4x4_r4()),
        ("8x8 4reg", paper_8x8_r4()),
        ("4x4 2reg", paper_4x4_r2()),
        ("4x4 1reg", paper_4x4_r1()),
    ]
}

fn four_by_four(regs: u8) -> Cgra {
    CgraBuilder::new(4, 4)
        .regs_per_pe(regs)
        .memory_banks(2)
        .memory_columns([0])
        .build()
        .expect("preset configuration is valid")
}

/// 16×16 mesh, four registers per PE, memory on the outermost columns —
/// the 8×8 paper fabric's layout continued one doubling up.
pub fn mesh16() -> Cgra {
    big_mesh(16)
}

/// 32×32 mesh (1024 PEs): the first size past
/// `DistanceOracle::DENSE_PE_LIMIT`, so mapping it exercises the tiered
/// landmark oracle. Used by the large-fabric CI smoke.
pub fn mesh32() -> Cgra {
    big_mesh(32)
}

/// 64×64 mesh (4096 PEs): the scaling suite's top end. A dense all-pairs
/// distance table here would be 67 MB; the tiered oracle holds ~2 MB.
pub fn mesh64() -> Cgra {
    big_mesh(64)
}

/// The scaling-curve fabric ladder (`EXPERIMENTS.md` §scaling), smallest
/// first: the two paper meshes, then each doubling up to 64×64.
pub fn scaling_configs() -> Vec<(&'static str, Cgra)> {
    vec![
        ("4x4", paper_4x4_r4()),
        ("8x8", paper_8x8_r4()),
        ("16x16", mesh16()),
        ("32x32", mesh32()),
        ("64x64", mesh64()),
    ]
}

fn big_mesh(n: u16) -> Cgra {
    // One bank per memory PE row mirrors the paper 8×8's eight banks for
    // two memory columns of eight rows each; memory stays on the fabric
    // edge so interior PEs are pure compute.
    CgraBuilder::new(n, n)
        .regs_per_pe(4)
        .memory_banks(n)
        .memory_columns([0, n - 1])
        .build()
        .expect("preset configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_configs_build() {
        let configs = all_paper_configs();
        assert_eq!(configs.len(), 4);
        for (label, cgra) in configs {
            assert!(cgra.num_pes() >= 16, "{label}");
            assert!(cgra.memory_pes().count() > 0, "{label}");
        }
    }

    #[test]
    fn register_counts() {
        assert_eq!(paper_4x4_r4().regs_per_pe(), 4);
        assert_eq!(paper_4x4_r2().regs_per_pe(), 2);
        assert_eq!(paper_4x4_r1().regs_per_pe(), 1);
        assert_eq!(paper_8x8_r4().regs_per_pe(), 4);
    }

    #[test]
    fn bank_counts_match_paper() {
        assert_eq!(paper_4x4_r4().memory_banks(), 2);
        assert_eq!(paper_8x8_r4().memory_banks(), 8);
    }

    #[test]
    fn big_meshes_build_and_scale() {
        let ladder = scaling_configs();
        assert_eq!(ladder.len(), 5);
        let sizes: Vec<usize> = ladder.iter().map(|(_, c)| c.num_pes()).collect();
        assert_eq!(sizes, vec![16, 64, 256, 1024, 4096]);
        for (label, cgra) in &ladder {
            assert!(cgra.memory_pes().count() > 0, "{label}");
            assert_eq!(cgra.regs_per_pe(), 4, "{label}");
        }
        assert_eq!(mesh64().memory_banks(), 64);
    }
}
