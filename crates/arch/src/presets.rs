//! The CGRA configurations evaluated in the Rewire paper (§V).
//!
//! All 4×4 variants have two local memory banks accessible from the left-most
//! PE column; the 8×8 variant has eight banks accessible from the left-most
//! and right-most columns (16 memory PEs).

use crate::{Cgra, CgraBuilder};

/// 4×4 CGRA, four registers per PE (the paper's baseline, Fig 5a).
pub fn paper_4x4_r4() -> Cgra {
    four_by_four(4)
}

/// 4×4 CGRA, two registers per PE (Fig 5c).
pub fn paper_4x4_r2() -> Cgra {
    four_by_four(2)
}

/// 4×4 CGRA, one register per PE — the paper's deliberately impractical
/// extreme-case configuration (Fig 5d).
pub fn paper_4x4_r1() -> Cgra {
    four_by_four(1)
}

/// 8×8 CGRA, four registers per PE (Fig 5b).
pub fn paper_8x8_r4() -> Cgra {
    CgraBuilder::new(8, 8)
        .regs_per_pe(4)
        .memory_banks(8)
        .memory_columns([0, 7])
        .build()
        .expect("preset configuration is valid")
}

/// All four paper configurations with their Fig 5 labels, in figure order.
pub fn all_paper_configs() -> Vec<(&'static str, Cgra)> {
    vec![
        ("4x4 4reg", paper_4x4_r4()),
        ("8x8 4reg", paper_8x8_r4()),
        ("4x4 2reg", paper_4x4_r2()),
        ("4x4 1reg", paper_4x4_r1()),
    ]
}

fn four_by_four(regs: u8) -> Cgra {
    CgraBuilder::new(4, 4)
        .regs_per_pe(regs)
        .memory_banks(2)
        .memory_columns([0])
        .build()
        .expect("preset configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_configs_build() {
        let configs = all_paper_configs();
        assert_eq!(configs.len(), 4);
        for (label, cgra) in configs {
            assert!(cgra.num_pes() >= 16, "{label}");
            assert!(cgra.memory_pes().count() > 0, "{label}");
        }
    }

    #[test]
    fn register_counts() {
        assert_eq!(paper_4x4_r4().regs_per_pe(), 4);
        assert_eq!(paper_4x4_r2().regs_per_pe(), 2);
        assert_eq!(paper_4x4_r1().regs_per_pe(), 1);
        assert_eq!(paper_8x8_r4().regs_per_pe(), 4);
    }

    #[test]
    fn bank_counts_match_paper() {
        assert_eq!(paper_4x4_r4().memory_banks(), 2);
        assert_eq!(paper_8x8_r4().memory_banks(), 8);
    }
}
