//! Operation set supported by the PE ALUs.

use std::fmt;

/// The kind of operation a DFG node performs.
///
/// The set mirrors what CGRA compilers typically see after lowering a loop
/// body: integer/float arithmetic, comparisons, selects, memory accesses and
/// the loop-carried `Phi`. The mapper only cares about the [`OpClass`]
/// (whether a memory-capable PE is required); the full kind is kept for
/// realistic resource-MII accounting and for readable DOT dumps.
///
/// # Examples
///
/// ```
/// use rewire_arch::{OpKind, OpClass};
/// assert_eq!(OpKind::Load.class(), OpClass::Memory);
/// assert_eq!(OpKind::Mul.class(), OpClass::Compute);
/// assert!(OpKind::Store.is_memory());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum OpKind {
    /// Integer or floating-point addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Square root (used by cholesky/gramschmidt-style kernels).
    Sqrt,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Comparison producing a predicate.
    Cmp,
    /// Predicated select (`cond ? a : b`).
    Select,
    /// Memory load. Requires a memory-capable PE.
    Load,
    /// Memory store. Requires a memory-capable PE.
    Store,
    /// Loop-carried value merge (software-pipelining phi).
    Phi,
    /// Constant materialisation / immediate generation.
    Const,
    /// Address or induction-variable update.
    Addr,
}

/// Coarse resource class of an operation: does it need a memory-capable PE?
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OpClass {
    /// Executes on any PE.
    Compute,
    /// Executes only on PEs with a memory port ([`Pe::memory_capable`]).
    ///
    /// [`Pe::memory_capable`]: crate::Pe::memory_capable
    Memory,
}

impl OpKind {
    /// Returns the resource class of this operation.
    pub const fn class(self) -> OpClass {
        match self {
            OpKind::Load | OpKind::Store => OpClass::Memory,
            _ => OpClass::Compute,
        }
    }

    /// Returns `true` for operations that must be placed on a memory-capable PE.
    pub const fn is_memory(self) -> bool {
        matches!(self.class(), OpClass::Memory)
    }

    /// Short lowercase mnemonic, used in DOT dumps and debug tables.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Sqrt => "sqrt",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Cmp => "cmp",
            OpKind::Select => "sel",
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::Phi => "phi",
            OpKind::Const => "const",
            OpKind::Addr => "addr",
        }
    }

    /// All operation kinds, useful for exhaustive tests and fuzzing.
    pub const ALL: [OpKind; 17] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Sqrt,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Cmp,
        OpKind::Select,
        OpKind::Load,
        OpKind::Store,
        OpKind::Phi,
        OpKind::Const,
        OpKind::Addr,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::Compute => f.write_str("compute"),
            OpClass::Memory => f.write_str("memory"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_loads_and_stores_are_memory_class() {
        for op in OpKind::ALL {
            let expect_memory = matches!(op, OpKind::Load | OpKind::Store);
            assert_eq!(op.is_memory(), expect_memory, "{op:?}");
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpKind::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic for {op:?}");
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(format!("{}", OpKind::Load), "ld");
        assert_eq!(format!("{}", OpClass::Memory), "memory");
    }
}
