//! Strongly-typed identifiers for architecture entities.

use std::fmt;

/// Identifier of a processing element within a [`Cgra`](crate::Cgra).
///
/// `PeId`s are dense indices in `0..cgra.num_pes()`, assigned row-major
/// (row 0 first, left to right), so they can index into side tables.
///
/// # Examples
///
/// ```
/// use rewire_arch::presets;
/// let cgra = presets::paper_4x4_r4();
/// let pe = cgra.pe_at((1, 2).into()).unwrap();
/// assert_eq!(pe.id().index(), 1 * 4 + 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeId(u32);

impl PeId {
    /// Creates a `PeId` from a raw dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index, suitable for indexing side tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

impl From<u32> for PeId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

/// Identifier of a directed NoC link.
///
/// Dense indices in `0..cgra.num_links()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a `LinkId` from a raw dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for LinkId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

/// Grid coordinate of a PE: `(row, col)`, row 0 at the top.
///
/// # Examples
///
/// ```
/// use rewire_arch::Coord;
/// let c = Coord::new(1, 2);
/// assert_eq!((c.row, c.col), (1, 2));
/// assert_eq!(Coord::from((1, 2)), c);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Coord {
    /// Row index (0 = top row).
    pub row: u16,
    /// Column index (0 = left-most column).
    pub col: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(row: u16, col: u16) -> Self {
        Self { row, col }
    }

    /// Manhattan distance to another coordinate.
    ///
    /// This is the minimum number of single-hop NoC traversals between the
    /// two PEs on an orthogonal mesh, which mappers use as a routing-cost
    /// lower bound.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }

    /// Chebyshev (king-move) distance — the hop lower bound on fabrics
    /// with diagonal links.
    pub fn chebyshev(self, other: Coord) -> u32 {
        (self.row.abs_diff(other.row) as u32).max(self.col.abs_diff(other.col) as u32)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((row, col): (u16, u16)) -> Self {
        Self { row, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_id_round_trips() {
        let id = PeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "PE7");
        assert_eq!(PeId::from(7u32), id);
    }

    #[test]
    fn link_id_round_trips() {
        let id = LinkId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(format!("{id}"), "L3");
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(2, 2).manhattan(Coord::new(2, 2)), 0);
        assert_eq!(Coord::new(5, 1).manhattan(Coord::new(1, 5)), 8);
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(Coord::new(0, 0).chebyshev(Coord::new(3, 4)), 4);
        assert_eq!(Coord::new(2, 2).chebyshev(Coord::new(2, 2)), 0);
    }

    #[test]
    fn coord_display() {
        assert_eq!(format!("{}", Coord::new(1, 2)), "(1,2)");
    }
}
