//! Parametric CGRA architecture model.
//!
//! A [`Cgra`] is a 2-D mesh of processing elements (PEs). Each PE contains a
//! single-issue ALU, a small register file used for buffering routed values,
//! and directed network-on-chip links to its Von Neumann neighbours. A subset
//! of PEs (by column) can additionally issue memory operations against the
//! on-chip memory banks — mirroring the architectures evaluated in the Rewire
//! paper (DAC 2025): a 4×4 CGRA whose left-most column accesses two banks, and
//! an 8×8 CGRA whose left-most and right-most columns access eight banks.
//!
//! The model is deliberately mapper-facing: it exposes exactly the information
//! a modulo-scheduling mapper needs (which PE can execute which operation,
//! which links exist, how many register cells each PE offers per cycle) and
//! nothing micro-architectural beyond that.
//!
//! # Examples
//!
//! ```
//! use rewire_arch::{CgraBuilder, presets};
//!
//! // The paper's baseline: 4×4, four registers per PE, two memory banks.
//! let cgra = presets::paper_4x4_r4();
//! assert_eq!(cgra.num_pes(), 16);
//! assert_eq!(cgra.regs_per_pe(), 4);
//! assert_eq!(cgra.memory_pes().count(), 4);
//!
//! // Or build a custom fabric.
//! let custom = CgraBuilder::new(2, 3)
//!     .regs_per_pe(2)
//!     .memory_banks(1)
//!     .memory_columns([0])
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(custom.num_pes(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cgra;
mod error;
mod ids;
mod link;
mod ops;
mod pe;
pub mod presets;
pub mod random;

pub use builder::CgraBuilder;
pub use cgra::Cgra;
pub use error::BuildCgraError;
pub use ids::{Coord, LinkId, PeId};
pub use link::{Direction, Link};
pub use ops::{OpClass, OpKind};
pub use pe::Pe;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes_match_paper() {
        assert_eq!(presets::paper_4x4_r4().num_pes(), 16);
        assert_eq!(presets::paper_4x4_r2().regs_per_pe(), 2);
        assert_eq!(presets::paper_4x4_r1().regs_per_pe(), 1);
        assert_eq!(presets::paper_8x8_r4().num_pes(), 64);
    }

    #[test]
    fn memory_columns_match_paper() {
        // 4×4: left-most column only => 4 memory PEs.
        assert_eq!(presets::paper_4x4_r4().memory_pes().count(), 4);
        // 8×8: left-most and right-most columns => 16 memory PEs.
        assert_eq!(presets::paper_8x8_r4().memory_pes().count(), 16);
    }
}
