//! The CGRA fabric: PEs, links and lookup tables.

use crate::{Coord, Link, LinkId, OpKind, Pe, PeId};
use std::fmt;

/// An immutable CGRA architecture instance.
///
/// Construct one with [`CgraBuilder`](crate::CgraBuilder) or a
/// [`presets`](crate::presets) function. All queries are O(1) or iterator
/// adapters over precomputed tables, because the mappers call them in hot
/// loops.
///
/// # Examples
///
/// ```
/// use rewire_arch::{presets, OpKind};
/// let cgra = presets::paper_4x4_r4();
/// let mem_pes: Vec<_> = cgra.pes_supporting(OpKind::Load).collect();
/// assert_eq!(mem_pes.len(), 4);
/// for pe in cgra.pes() {
///     assert!(cgra.links_from(pe.id()).count() <= 4);
/// }
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cgra {
    rows: u16,
    cols: u16,
    regs_per_pe: u8,
    memory_banks: u16,
    pes: Vec<Pe>,
    links: Vec<Link>,
    /// Outgoing link ids per PE (index = PeId::index()).
    out_links: Vec<Vec<LinkId>>,
    /// Incoming link ids per PE.
    in_links: Vec<Vec<LinkId>>,
    /// Whether any diagonal links exist (changes the hop-distance metric).
    has_diagonals: bool,
    /// Hash of the link topology (see [`Cgra::topology_fingerprint`]).
    #[cfg_attr(feature = "serde", serde(default))]
    topology_fingerprint: u64,
}

impl Cgra {
    pub(crate) fn from_parts(
        rows: u16,
        cols: u16,
        regs_per_pe: u8,
        memory_banks: u16,
        pes: Vec<Pe>,
        links: Vec<Link>,
    ) -> Self {
        let mut out_links = vec![Vec::new(); pes.len()];
        let mut in_links = vec![Vec::new(); pes.len()];
        for link in &links {
            out_links[link.src().index()].push(link.id());
            in_links[link.dst().index()].push(link.id());
        }
        let has_diagonals = links.iter().any(|l| {
            matches!(
                l.direction(),
                crate::Direction::NorthEast
                    | crate::Direction::NorthWest
                    | crate::Direction::SouthEast
                    | crate::Direction::SouthWest
            )
        });
        // FNV-1a over the directed link list: cheap, stable across runs,
        // and sensitive to any topology difference that matters to routing.
        let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            fp ^= v;
            fp = fp.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(pes.len() as u64);
        for link in &links {
            mix(link.src().index() as u64);
            mix(link.dst().index() as u64);
        }
        Self {
            rows,
            cols,
            regs_per_pe,
            memory_banks,
            pes,
            links,
            out_links,
            in_links,
            has_diagonals,
            topology_fingerprint: fp,
        }
    }

    /// Number of rows in the mesh.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns in the mesh.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Register cells per PE.
    pub fn regs_per_pe(&self) -> u8 {
        self.regs_per_pe
    }

    /// Number of on-chip memory banks.
    pub fn memory_banks(&self) -> u16 {
        self.memory_banks
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Total number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Looks up a PE by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    pub fn pe(&self, id: PeId) -> &Pe {
        &self.pes[id.index()]
    }

    /// Looks up a link by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Looks up the PE at a grid coordinate, if it exists.
    pub fn pe_at(&self, coord: Coord) -> Option<&Pe> {
        if coord.row < self.rows && coord.col < self.cols {
            let idx = coord.row as usize * self.cols as usize + coord.col as usize;
            Some(&self.pes[idx])
        } else {
            None
        }
    }

    /// Iterates over all PEs in id order.
    pub fn pes(&self) -> impl ExactSizeIterator<Item = &Pe> + '_ {
        self.pes.iter()
    }

    /// Iterates over all links in id order.
    pub fn links(&self) -> impl ExactSizeIterator<Item = &Link> + '_ {
        self.links.iter()
    }

    /// Iterates over the outgoing links of `pe`.
    pub fn links_from(&self, pe: PeId) -> impl ExactSizeIterator<Item = &Link> + '_ {
        self.out_links[pe.index()].iter().map(|&l| self.link(l))
    }

    /// Iterates over the incoming links of `pe`.
    pub fn links_to(&self, pe: PeId) -> impl ExactSizeIterator<Item = &Link> + '_ {
        self.in_links[pe.index()].iter().map(|&l| self.link(l))
    }

    /// Iterates over the memory-capable PEs.
    pub fn memory_pes(&self) -> impl Iterator<Item = &Pe> + '_ {
        self.pes.iter().filter(|p| p.memory_capable())
    }

    /// Iterates over the PEs that can execute `op`.
    pub fn pes_supporting(&self, op: OpKind) -> impl Iterator<Item = &Pe> + '_ {
        self.pes.iter().filter(move |p| p.supports(op))
    }

    /// Number of PEs that can execute `op` — the denominator in resource-MII.
    pub fn capacity_for(&self, op: OpKind) -> usize {
        self.pes_supporting(op).count()
    }

    /// Hop-distance lower bound between two PEs: Manhattan on orthogonal
    /// meshes, Chebyshev when diagonal links exist.
    pub fn distance(&self, a: PeId, b: PeId) -> u32 {
        let (ca, cb) = (self.pe(a).coord(), self.pe(b).coord());
        if self.has_diagonals {
            ca.chebyshev(cb)
        } else {
            ca.manhattan(cb)
        }
    }

    /// Whether the fabric has diagonal links.
    pub fn has_diagonals(&self) -> bool {
        self.has_diagonals
    }

    /// A hash of the link topology (PE count plus every directed link's
    /// endpoints). Two fabrics with equal fingerprints route identically,
    /// so per-topology caches (e.g. the router's hop-distance table) use
    /// this as their validity key instead of holding a fabric reference.
    pub fn topology_fingerprint(&self) -> u64 {
        self.topology_fingerprint
    }

    /// A short human-readable architecture label, e.g. `4x4/r4`.
    pub fn label(&self) -> String {
        format!("{}x{}/r{}", self.rows, self.cols, self.regs_per_pe)
    }
}

impl fmt::Display for Cgra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CGRA {}x{} ({} regs/PE, {} banks, {} mem PEs)",
            self.rows,
            self.cols,
            self.regs_per_pe,
            self.memory_banks,
            self.memory_pes().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CgraBuilder;

    fn cgra() -> Cgra {
        CgraBuilder::new(3, 4)
            .memory_banks(2)
            .memory_columns([0])
            .build()
            .unwrap()
    }

    #[test]
    fn pe_at_round_trips_coords() {
        let c = cgra();
        for pe in c.pes() {
            assert_eq!(c.pe_at(pe.coord()).unwrap().id(), pe.id());
        }
        assert!(c.pe_at(Coord::new(3, 0)).is_none());
        assert!(c.pe_at(Coord::new(0, 4)).is_none());
    }

    #[test]
    fn in_and_out_links_are_symmetric_on_mesh() {
        let c = cgra();
        for pe in c.pes() {
            assert_eq!(
                c.links_from(pe.id()).count(),
                c.links_to(pe.id()).count(),
                "mesh links are bidirectional pairs"
            );
        }
    }

    #[test]
    fn corner_pes_have_two_neighbours() {
        let c = cgra();
        let corner = c.pe_at(Coord::new(0, 0)).unwrap().id();
        assert_eq!(c.links_from(corner).count(), 2);
    }

    #[test]
    fn capacity_counts_memory_ops() {
        let c = cgra();
        assert_eq!(c.capacity_for(OpKind::Load), 3); // one column of 3 rows
        assert_eq!(c.capacity_for(OpKind::Add), 12);
    }

    #[test]
    fn distance_is_symmetric() {
        let c = cgra();
        let a = c.pe_at(Coord::new(0, 0)).unwrap().id();
        let b = c.pe_at(Coord::new(2, 3)).unwrap().id();
        assert_eq!(c.distance(a, b), 5);
        assert_eq!(c.distance(b, a), 5);
    }

    #[test]
    fn diagonal_distance_metric() {
        let d = crate::CgraBuilder::new(4, 4)
            .diagonals(true)
            .build()
            .unwrap();
        let a = d.pe_at(Coord::new(0, 0)).unwrap().id();
        let b = d.pe_at(Coord::new(2, 3)).unwrap().id();
        assert!(d.has_diagonals());
        assert_eq!(d.distance(a, b), 3, "Chebyshev on diagonal fabrics");
    }

    #[test]
    fn topology_fingerprint_tracks_links() {
        let a = cgra();
        let b = cgra();
        assert_eq!(a.topology_fingerprint(), b.topology_fingerprint());
        // Same grid, different interconnect ⇒ different fingerprint.
        let torus = CgraBuilder::new(3, 4)
            .memory_banks(2)
            .memory_columns([0])
            .torus(true)
            .build()
            .unwrap();
        assert_ne!(a.topology_fingerprint(), torus.topology_fingerprint());
        // Attributes that do not change routing leave it untouched.
        let more_regs = CgraBuilder::new(3, 4)
            .regs_per_pe(1)
            .memory_banks(2)
            .memory_columns([0])
            .build()
            .unwrap();
        assert_eq!(a.topology_fingerprint(), more_regs.topology_fingerprint());
    }

    #[test]
    fn label_and_display() {
        let c = cgra();
        assert_eq!(c.label(), "3x4/r4");
        let s = format!("{c}");
        assert!(s.contains("3x4"));
        assert!(s.contains("2 banks"));
    }
}
