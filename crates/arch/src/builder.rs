//! Builder for [`Cgra`] instances.

use crate::cgra::Cgra;
use crate::{BuildCgraError, Coord, Direction, Link, LinkId, Pe, PeId};

/// Builder for a mesh [`Cgra`].
///
/// Defaults match the paper's baseline per-PE resources: four registers per
/// PE and no memory (add memory banks with [`memory_columns`] +
/// [`memory_banks`], or use the ready-made [`presets`]).
///
/// [`memory_columns`]: CgraBuilder::memory_columns
/// [`memory_banks`]: CgraBuilder::memory_banks
/// [`presets`]: crate::presets
///
/// # Examples
///
/// ```
/// use rewire_arch::CgraBuilder;
/// # fn main() -> Result<(), rewire_arch::BuildCgraError> {
/// let cgra = CgraBuilder::new(4, 4)
///     .regs_per_pe(2)
///     .memory_banks(2)
///     .memory_columns([0])
///     .build()?;
/// assert_eq!(cgra.num_pes(), 16);
/// assert_eq!(cgra.memory_banks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CgraBuilder {
    rows: u16,
    cols: u16,
    regs_per_pe: u8,
    memory_banks: u16,
    memory_columns: Vec<u16>,
    torus: bool,
    diagonals: bool,
    cut_row: Option<u16>,
}

impl CgraBuilder {
    /// Starts a builder for a `rows × cols` mesh.
    pub fn new(rows: u16, cols: u16) -> Self {
        Self {
            rows,
            cols,
            regs_per_pe: 4,
            memory_banks: 0,
            memory_columns: Vec::new(),
            torus: false,
            diagonals: false,
            cut_row: None,
        }
    }

    /// Sets the number of register cells per PE (default 4).
    pub fn regs_per_pe(mut self, regs: u8) -> Self {
        self.regs_per_pe = regs;
        self
    }

    /// Sets the number of on-chip memory banks (default 0).
    pub fn memory_banks(mut self, banks: u16) -> Self {
        self.memory_banks = banks;
        self
    }

    /// Declares which columns of PEs can access the memory banks.
    pub fn memory_columns<I: IntoIterator<Item = u16>>(mut self, columns: I) -> Self {
        self.memory_columns = columns.into_iter().collect();
        self
    }

    /// Enables torus wrap-around links (east–west and north–south edges
    /// connect). Disabled by default; the paper evaluates plain meshes.
    pub fn torus(mut self, torus: bool) -> Self {
        self.torus = torus;
        self
    }

    /// Adds diagonal single-hop links (NE/NW/SE/SW), as in HyCube-style
    /// richer interconnects. Disabled by default.
    pub fn diagonals(mut self, diagonals: bool) -> Self {
        self.diagonals = diagonals;
        self
    }

    /// Severs every link crossing the horizontal boundary above `row`
    /// (including torus wraps and diagonals), splitting the fabric into two
    /// disconnected islands: rows `0..row` and rows `row..rows`. Used by
    /// tests and the fuzzer to exercise `NoPath` behaviour on fabrics where
    /// some PE pairs are genuinely unreachable.
    pub fn cut_row(mut self, row: u16) -> Self {
        self.cut_row = Some(row);
        self
    }

    /// Builds the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCgraError`] if the grid is empty, a memory column is out
    /// of range, or memory banks/columns are inconsistently specified.
    pub fn build(self) -> Result<Cgra, BuildCgraError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(BuildCgraError::EmptyGrid);
        }
        for &c in &self.memory_columns {
            if c >= self.cols {
                return Err(BuildCgraError::MemoryColumnOutOfRange {
                    column: c,
                    cols: self.cols,
                });
            }
        }
        if (self.memory_banks == 0) != self.memory_columns.is_empty() {
            return Err(BuildCgraError::InconsistentMemory);
        }
        if let Some(cut) = self.cut_row {
            if cut == 0 || cut >= self.rows {
                return Err(BuildCgraError::CutRowOutOfRange {
                    row: cut,
                    rows: self.rows,
                });
            }
        }

        let mut pes = Vec::with_capacity(self.rows as usize * self.cols as usize);
        for row in 0..self.rows {
            for col in 0..self.cols {
                let id = PeId::new(row as u32 * self.cols as u32 + col as u32);
                let memory = self.memory_columns.contains(&col);
                pes.push(Pe::new(id, Coord::new(row, col), memory, self.regs_per_pe));
            }
        }

        let mut links = Vec::new();
        let pe_id = |row: u16, col: u16| PeId::new(row as u32 * self.cols as u32 + col as u32);
        // A link survives a row cut only if both endpoints sit on the same
        // side of the boundary.
        let same_island = |a: PeId, b: PeId| match self.cut_row {
            Some(cut) => {
                let row_of = |p: PeId| (p.index() as u32 / self.cols as u32) as u16;
                (row_of(a) < cut) == (row_of(b) < cut)
            }
            None => true,
        };
        for row in 0..self.rows {
            for col in 0..self.cols {
                let src = pe_id(row, col);
                let mut push = |dst: PeId, dir: Direction| {
                    if !same_island(src, dst) {
                        return;
                    }
                    let id = LinkId::new(links.len() as u32);
                    links.push(Link::new(id, src, dst, dir));
                };
                // North
                if row > 0 {
                    push(pe_id(row - 1, col), Direction::North);
                } else if self.torus && self.rows > 1 {
                    push(pe_id(self.rows - 1, col), Direction::North);
                }
                // East
                if col + 1 < self.cols {
                    push(pe_id(row, col + 1), Direction::East);
                } else if self.torus && self.cols > 1 {
                    push(pe_id(row, 0), Direction::East);
                }
                // South
                if row + 1 < self.rows {
                    push(pe_id(row + 1, col), Direction::South);
                } else if self.torus && self.rows > 1 {
                    push(pe_id(0, col), Direction::South);
                }
                // West
                if col > 0 {
                    push(pe_id(row, col - 1), Direction::West);
                } else if self.torus && self.cols > 1 {
                    push(pe_id(row, self.cols - 1), Direction::West);
                }
                // Diagonals (mesh-internal only; no torus wrap).
                if self.diagonals {
                    if row > 0 && col > 0 {
                        push(pe_id(row - 1, col - 1), Direction::NorthWest);
                    }
                    if row > 0 && col + 1 < self.cols {
                        push(pe_id(row - 1, col + 1), Direction::NorthEast);
                    }
                    if row + 1 < self.rows && col > 0 {
                        push(pe_id(row + 1, col - 1), Direction::SouthWest);
                    }
                    if row + 1 < self.rows && col + 1 < self.cols {
                        push(pe_id(row + 1, col + 1), Direction::SouthEast);
                    }
                }
            }
        }

        Ok(Cgra::from_parts(
            self.rows,
            self.cols,
            self.regs_per_pe,
            self.memory_banks,
            pes,
            links,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_link_count() {
        // rows*(cols-1) horizontal pairs * 2 directions + cols*(rows-1)*2.
        let cgra = CgraBuilder::new(4, 4).build().unwrap();
        assert_eq!(cgra.num_links(), 4 * 3 * 2 + 4 * 3 * 2);
    }

    #[test]
    fn diagonal_link_count() {
        // 4×4 mesh: 48 orthogonal + 2·(rows−1)·(cols−1)·2 diagonal links.
        let cgra = CgraBuilder::new(4, 4).diagonals(true).build().unwrap();
        assert_eq!(cgra.num_links(), 48 + 4 * 9);
        // Corner PE gains exactly one diagonal.
        let corner = cgra.pe_at(crate::Coord::new(0, 0)).unwrap().id();
        assert_eq!(cgra.links_from(corner).count(), 3);
    }

    #[test]
    fn torus_link_count() {
        let cgra = CgraBuilder::new(4, 4).torus(true).build().unwrap();
        // Every PE has exactly 4 outgoing links on a 4×4 torus.
        assert_eq!(cgra.num_links(), 16 * 4);
    }

    #[test]
    fn empty_grid_rejected() {
        assert_eq!(
            CgraBuilder::new(0, 4).build().unwrap_err(),
            BuildCgraError::EmptyGrid
        );
        assert_eq!(
            CgraBuilder::new(4, 0).build().unwrap_err(),
            BuildCgraError::EmptyGrid
        );
    }

    #[test]
    fn out_of_range_memory_column_rejected() {
        let err = CgraBuilder::new(2, 2)
            .memory_banks(1)
            .memory_columns([5])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildCgraError::MemoryColumnOutOfRange { column: 5, cols: 2 }
        );
    }

    #[test]
    fn inconsistent_memory_rejected() {
        assert_eq!(
            CgraBuilder::new(2, 2).memory_banks(2).build().unwrap_err(),
            BuildCgraError::InconsistentMemory
        );
        assert_eq!(
            CgraBuilder::new(2, 2)
                .memory_columns([0])
                .build()
                .unwrap_err(),
            BuildCgraError::InconsistentMemory
        );
    }

    #[test]
    fn cut_row_disconnects_the_fabric() {
        let cgra = CgraBuilder::new(4, 3)
            .torus(true)
            .cut_row(2)
            .build()
            .unwrap();
        for link in cgra.links() {
            let a = cgra.pe(link.src()).coord().row;
            let b = cgra.pe(link.dst()).coord().row;
            assert_eq!(a < 2, b < 2, "{link} crosses the cut");
        }
        // Each 2×3 torus island keeps its internal wrap links.
        assert!(cgra.num_links() > 0);
    }

    #[test]
    fn cut_row_must_split_the_grid() {
        for bad in [0, 4, 9] {
            assert_eq!(
                CgraBuilder::new(4, 4).cut_row(bad).build().unwrap_err(),
                BuildCgraError::CutRowOutOfRange { row: bad, rows: 4 }
            );
        }
    }

    #[test]
    fn single_pe_has_no_links() {
        let cgra = CgraBuilder::new(1, 1).build().unwrap();
        assert_eq!(cgra.num_pes(), 1);
        assert_eq!(cgra.num_links(), 0);
    }

    #[test]
    fn links_connect_neighbours_only() {
        let cgra = CgraBuilder::new(3, 3).build().unwrap();
        for link in cgra.links() {
            let a = cgra.pe(link.src()).coord();
            let b = cgra.pe(link.dst()).coord();
            assert_eq!(a.manhattan(b), 1, "{link}");
        }
    }
}
