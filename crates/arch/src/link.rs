//! Directed NoC links between neighbouring PEs.

use crate::{LinkId, PeId};
use std::fmt;

/// Compass direction of a mesh link, from the source PE's point of view.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// Towards row − 1.
    North,
    /// Towards col + 1.
    East,
    /// Towards row + 1.
    South,
    /// Towards col − 1.
    West,
    /// Towards row − 1, col + 1 (diagonal interconnects only).
    NorthEast,
    /// Towards row − 1, col − 1.
    NorthWest,
    /// Towards row + 1, col + 1.
    SouthEast,
    /// Towards row + 1, col − 1.
    SouthWest,
}

impl Direction {
    /// All eight directions (orthogonal first, then diagonal).
    pub const ALL: [Direction; 8] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::NorthEast,
        Direction::NorthWest,
        Direction::SouthEast,
        Direction::SouthWest,
    ];

    /// The opposite direction.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_arch::Direction;
    /// assert_eq!(Direction::North.opposite(), Direction::South);
    /// assert_eq!(Direction::East.opposite(), Direction::West);
    /// ```
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::NorthEast => Direction::SouthWest,
            Direction::NorthWest => Direction::SouthEast,
            Direction::SouthEast => Direction::NorthWest,
            Direction::SouthWest => Direction::NorthEast,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::NorthEast => "NE",
            Direction::NorthWest => "NW",
            Direction::SouthEast => "SE",
            Direction::SouthWest => "SW",
        };
        f.write_str(s)
    }
}

/// A directed single-hop NoC link `src → dst`.
///
/// A value departing on a link at cycle `t` arrives at the destination PE at
/// cycle `t + 1`; this single-cycle-per-hop latency is the timing contract
/// every router in the workspace assumes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Link {
    id: LinkId,
    src: PeId,
    dst: PeId,
    direction: Direction,
}

impl Link {
    pub(crate) fn new(id: LinkId, src: PeId, dst: PeId, direction: Direction) -> Self {
        Self {
            id,
            src,
            dst,
            direction,
        }
    }

    /// Dense identifier of this link.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The PE the value departs from.
    pub fn src(&self) -> PeId {
        self.src
    }

    /// The PE the value arrives at (one cycle later).
    pub fn dst(&self) -> PeId {
        self.dst
    }

    /// Compass direction of the hop.
    pub fn direction(&self) -> Direction {
        self.direction
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}→{}", self.id, self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn link_accessors() {
        let l = Link::new(LinkId::new(0), PeId::new(1), PeId::new(2), Direction::East);
        assert_eq!(l.src(), PeId::new(1));
        assert_eq!(l.dst(), PeId::new(2));
        assert_eq!(l.direction(), Direction::East);
        assert_eq!(format!("{l}"), "L0:PE1→PE2");
    }
}
