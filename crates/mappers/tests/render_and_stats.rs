//! Rendering and statistics coverage across fabrics and IIs.

use rewire_arch::{presets, CgraBuilder};
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
use std::time::Duration;

#[test]
fn grid_render_scales_to_8x8() {
    let cgra = presets::paper_8x8_r4();
    let dfg = kernels::mvt();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(3));
    let Some(m) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping else {
        return;
    };
    let art = m.render_grid(&dfg, &cgra);
    // 8 fabric rows per slot grid.
    let rows_per_slot = art.lines().filter(|l| l.starts_with("  [")).count();
    assert_eq!(rows_per_slot, 8 * m.ii() as usize);
}

#[test]
fn throughput_improves_with_register_budget() {
    // More registers never hurt the achievable II on the same kernel.
    let rich = presets::paper_4x4_r4();
    let poor = presets::paper_4x4_r1();
    let dfg = kernels::fir();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let a = PathFinderMapper::new().map(&dfg, &rich, &limits);
    let b = PathFinderMapper::new().map(&dfg, &poor, &limits);
    if let (Some(ia), Some(ib)) = (a.stats.achieved_ii, b.stats.achieved_ii) {
        assert!(
            ia <= ib + 1,
            "4 regs ({ia}) should not trail 1 reg ({ib}) by much"
        );
    }
}

#[test]
fn tiny_fabric_still_renders() {
    let cgra = CgraBuilder::new(1, 2)
        .memory_banks(1)
        .memory_columns([0])
        .build()
        .unwrap();
    let mut dfg = rewire_dfg::Dfg::new("t");
    let a = dfg.add_node("a", rewire_arch::OpKind::Load);
    let b = dfg.add_node("b", rewire_arch::OpKind::Add);
    dfg.add_edge(a, b, 0).unwrap();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(1));
    if let Some(m) = PathFinderMapper::new().map(&dfg, &cgra, &limits).mapping {
        let art = m.render_grid(&dfg, &cgra);
        assert!(art.contains("[") && art.contains("]"));
    }
}
