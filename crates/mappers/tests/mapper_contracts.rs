//! Contract tests every mapper in the workspace must satisfy.

use rewire_arch::presets;
use rewire_dfg::kernels;
use rewire_mappers::{ExhaustiveMapper, MapLimits, Mapper, PathFinderMapper, SaMapper};
use std::time::Duration;

fn mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(PathFinderMapper::new()),
        Box::new(SaMapper::new()),
        Box::new(ExhaustiveMapper::new()),
    ]
}

/// Whatever a mapper returns, stats and mapping must agree.
#[test]
fn outcome_coherence() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::fir();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(800));
    for mapper in mappers() {
        let out = mapper.map(&dfg, &cgra, &limits);
        match &out.mapping {
            Some(m) => {
                assert_eq!(Some(m.ii()), out.stats.achieved_ii, "{}", mapper.name());
                assert!(m.is_valid(&dfg, &cgra), "{}", mapper.name());
                assert!(m.ii() >= out.stats.mii, "{}", mapper.name());
            }
            None => assert_eq!(out.stats.achieved_ii, None, "{}", mapper.name()),
        }
        assert_eq!(out.stats.kernel, dfg.name(), "{}", mapper.name());
        assert!(!out.stats.mapper.is_empty());
    }
}

/// Mappers must respect the II ceiling.
#[test]
fn max_ii_is_respected() {
    let cgra = presets::paper_4x4_r1(); // hard fabric
    let dfg = kernels::gemver();
    let mii = dfg.mii(&cgra).unwrap();
    let limits = MapLimits::fast()
        .with_ii_time_budget(Duration::from_millis(200))
        .with_max_ii(mii); // a single II attempt allowed
    for mapper in mappers() {
        let out = mapper.map(&dfg, &cgra, &limits);
        if let Some(ii) = out.stats.achieved_ii {
            assert_eq!(ii, mii, "{}", mapper.name());
        }
        assert!(out.stats.iis_explored <= 1, "{}", mapper.name());
    }
}

/// A zero-ish time budget fails gracefully, never panics.
#[test]
fn tiny_budget_fails_cleanly() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::gemver();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(1));
    for mapper in mappers() {
        let out = mapper.map(&dfg, &cgra, &limits);
        // Either an early success (unlikely) or a clean failure.
        if let Some(m) = out.mapping {
            assert!(m.is_valid(&dfg, &cgra), "{}", mapper.name());
        }
    }
}

/// The stats' elapsed time is populated.
#[test]
fn elapsed_is_measured() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::fir();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(300));
    for mapper in mappers() {
        let out = mapper.map(&dfg, &cgra, &limits);
        assert!(out.stats.elapsed > Duration::ZERO, "{}", mapper.name());
    }
}
