//! Property-based tests of the iterative modulo scheduler.

use proptest::prelude::*;
use rewire_arch::presets;
use rewire_dfg::generate::{random_dfg, RandomDfgParams};
use rewire_mappers::{modulo_schedule, schedule_asap};

fn params(nodes: usize) -> RandomDfgParams {
    RandomDfgParams {
        nodes,
        memory_fraction: 0.2,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any schedule IMS returns satisfies every dependence constraint and
    /// never oversubscribes a modulo slot.
    #[test]
    fn ims_schedules_are_feasible(seed in 0u64..10_000, nodes in 6usize..30, ii in 1u32..8) {
        let dfg = random_dfg(&params(nodes), seed);
        let cgra = presets::paper_4x4_r4();
        let Some(t) = modulo_schedule(&dfg, &cgra, ii) else { return Ok(()) };
        prop_assert_eq!(t.len(), dfg.num_nodes());
        // Dependence: t_dst + d·II ≥ t_src + 1.
        for e in dfg.edges() {
            prop_assert!(
                t[e.dst().index()] as i64 + (e.distance() * ii) as i64
                    > t[e.src().index()] as i64,
                "{e}"
            );
        }
        // Resources: per-slot op counts within capacity.
        let mut total = vec![0usize; ii as usize];
        let mut mem = vec![0usize; ii as usize];
        for v in dfg.node_ids() {
            let slot = (t[v.index()] % ii) as usize;
            total[slot] += 1;
            if dfg.node(v).op().is_memory() {
                mem[slot] += 1;
            }
        }
        for s in 0..ii as usize {
            prop_assert!(total[s] <= cgra.num_pes());
            prop_assert!(mem[s] <= cgra.memory_pes().count());
        }
    }

    /// Below RecMII no schedule exists; at RecMII (or above) the plain
    /// ASAP relaxation converges.
    #[test]
    fn asap_tracks_rec_mii(seed in 0u64..10_000) {
        let dfg = random_dfg(&params(14), seed);
        let rec = dfg.rec_mii();
        if rec > 1 {
            prop_assert!(schedule_asap(&dfg, rec - 1).is_none());
        }
        prop_assert!(schedule_asap(&dfg, rec).is_some());
    }

    /// IMS never schedules below the plain ASAP lower bounds' feasibility:
    /// whenever IMS succeeds, ASAP also has a solution at that II.
    #[test]
    fn ims_implies_asap_feasibility(seed in 0u64..10_000, ii in 1u32..6) {
        let dfg = random_dfg(&params(12), seed);
        let cgra = presets::paper_4x4_r4();
        if modulo_schedule(&dfg, &cgra, ii).is_some() {
            prop_assert!(schedule_asap(&dfg, ii).is_some());
        }
    }
}
