//! Pluggable consumers of the [`MapEvent`] stream.
//!
//! Three sinks cover the workspace's needs: [`Silent`] (the default —
//! mapping stays allocation- and I/O-free), [`StderrProgress`] (compact
//! human-readable progress lines), and [`JsonlTrace`] (one JSON object per
//! event, the machine-readable trace the bench binaries expose via
//! `--trace`). [`SharedSink`] adapts any sink for concurrent runs and
//! [`Fanout`] duplicates the stream to several sinks at once.

use super::events::{MapEvent, RunMeta};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A consumer of mapping events.
///
/// Implementations must be cheap when idle: the engine and the mappers
/// emit events unconditionally, trusting sinks like [`Silent`] to make the
/// instrumented path cost one virtual call.
pub trait EventSink {
    /// Consumes one event. `meta` identifies the run that produced it.
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent);
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        (**self).emit(meta, event)
    }
}

/// Drops every event. The default sink of [`crate::Mapper::map`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl EventSink for Silent {
    fn emit(&mut self, _meta: &RunMeta<'_>, _event: &MapEvent) {}
}

/// Prints compact progress lines to stderr.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrProgress;

impl EventSink for StderrProgress {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        let id = format!("{}/{}", meta.mapper, meta.kernel);
        match event {
            MapEvent::IiStarted { ii } => eprintln!("[{id}] II {ii}: attempting"),
            MapEvent::NegotiationRound {
                ii,
                iteration,
                ill_nodes,
                overuse,
            } => eprintln!("[{id}] II {ii}: round {iteration}, {ill_nodes} ill, overuse {overuse}"),
            MapEvent::AttemptFinished {
                ii,
                routed,
                overuse,
                iterations,
            } => {
                let verdict = if *routed { "routed" } else { "failed" };
                eprintln!(
                    "[{id}] II {ii}: {verdict} after {iterations} iterations (overuse {overuse})"
                )
            }
            MapEvent::Mapped {
                ii,
                iis_explored,
                elapsed_us,
            } => eprintln!(
                "[{id}] mapped at II {ii} ({iis_explored} IIs, {:.1} ms)",
                *elapsed_us as f64 / 1000.0
            ),
            MapEvent::GaveUp {
                reason,
                iis_explored,
                elapsed_us,
            } => eprintln!(
                "[{id}] gave up ({}) after {iis_explored} IIs, {:.1} ms",
                reason.label(),
                *elapsed_us as f64 / 1000.0
            ),
        }
    }
}

/// Appends one JSON object per event to a writer (JSON Lines).
///
/// Write errors are swallowed: tracing must never abort a mapping run.
#[derive(Debug)]
pub struct JsonlTrace<W: Write> {
    out: W,
}

impl JsonlTrace<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlTrace<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> EventSink for JsonlTrace<W> {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        let _ = writeln!(self.out, "{}", event.to_json(meta));
    }
}

/// A cloneable, thread-safe handle to one shared sink.
///
/// The bench harness hands one clone to every worker thread of its
/// `--jobs` fan-out, so events from concurrent runs interleave *per line*
/// (each line still carries its [`RunMeta`] identity) without interleaving
/// mid-line.
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<Box<dyn EventSink + Send>>>);

impl SharedSink {
    /// Wraps `sink` for shared use.
    pub fn new(sink: impl EventSink + Send + 'static) -> Self {
        Self(Arc::new(Mutex::new(Box::new(sink))))
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink")
    }
}

impl EventSink for SharedSink {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        if let Ok(mut sink) = self.0.lock() {
            sink.emit(meta, event);
        }
    }
}

/// Duplicates every event to each contained sink, in order.
#[derive(Default)]
pub struct Fanout(pub Vec<Box<dyn EventSink>>);

impl EventSink for Fanout {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        for sink in &mut self.0 {
            sink.emit(meta, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GiveUpReason;

    fn meta() -> RunMeta<'static> {
        RunMeta {
            mapper: "SA",
            kernel: "fir",
            seed: 1,
        }
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlTrace::new(Vec::new());
        sink.emit(&meta(), &MapEvent::IiStarted { ii: 2 });
        sink.emit(
            &meta(),
            &MapEvent::GaveUp {
                reason: GiveUpReason::MaxIiReached,
                iis_explored: 1,
                elapsed_us: 10,
            },
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"mapper\":\"SA\""), "{line}");
        }
    }

    #[test]
    fn shared_sink_is_cloneable_and_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedSink>();
        let mut a = SharedSink::new(Silent);
        let mut b = a.clone();
        a.emit(&meta(), &MapEvent::IiStarted { ii: 1 });
        b.emit(&meta(), &MapEvent::IiStarted { ii: 2 });
    }

    #[test]
    fn fanout_forwards_to_every_sink() {
        struct Count(std::rc::Rc<std::cell::Cell<u32>>);
        impl EventSink for Count {
            fn emit(&mut self, _: &RunMeta<'_>, _: &MapEvent) {
                self.0.set(self.0.get() + 1);
            }
        }
        let n = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut fan = Fanout(vec![Box::new(Count(n.clone())), Box::new(Count(n.clone()))]);
        fan.emit(&meta(), &MapEvent::IiStarted { ii: 1 });
        assert_eq!(n.get(), 2);
    }
}
