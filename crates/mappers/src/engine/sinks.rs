//! Pluggable consumers of the [`MapEvent`] stream.
//!
//! Three sinks cover the workspace's needs: [`Silent`] (the default —
//! mapping stays allocation- and I/O-free), [`StderrProgress`] (compact
//! human-readable progress lines), and [`JsonlTrace`] (one JSON object per
//! event, the machine-readable trace the bench binaries expose via
//! `--trace`). [`SharedSink`] adapts any sink for concurrent runs and
//! [`Fanout`] duplicates the stream to several sinks at once.

use super::events::{GiveUpReason, MapEvent, RunMeta};
use rewire_obs as obs;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A consumer of mapping events.
///
/// Implementations must be cheap when idle: the engine and the mappers
/// emit events unconditionally, trusting sinks like [`Silent`] to make the
/// instrumented path cost one virtual call.
pub trait EventSink {
    /// Consumes one event. `meta` identifies the run that produced it.
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent);

    /// Signals that no more events will arrive: flush buffers, close out
    /// resources. Callers that own a sink for a batch of runs (the bench
    /// harness) call this once at the end; sinks with buffered state must
    /// also flush on drop so a panicking or early-returning caller cannot
    /// lose data. The default is a no-op.
    fn finish(&mut self) {}
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        (**self).emit(meta, event)
    }

    fn finish(&mut self) {
        (**self).finish()
    }
}

/// Drops every event. The default sink of [`crate::Mapper::map`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl EventSink for Silent {
    fn emit(&mut self, _meta: &RunMeta<'_>, _event: &MapEvent) {}
}

/// Prints compact progress lines to stderr.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrProgress;

impl EventSink for StderrProgress {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        let id = format!("{}/{}", meta.mapper, meta.kernel);
        match event {
            MapEvent::IiStarted { ii } => eprintln!("[{id}] II {ii}: attempting"),
            MapEvent::NegotiationRound {
                ii,
                iteration,
                ill_nodes,
                overuse,
            } => eprintln!("[{id}] II {ii}: round {iteration}, {ill_nodes} ill, overuse {overuse}"),
            MapEvent::AttemptFinished {
                ii,
                routed,
                overuse,
                iterations,
                elapsed_us,
            } => {
                let verdict = if *routed { "routed" } else { "failed" };
                eprintln!(
                    "[{id}] II {ii}: {verdict} after {iterations} iterations (overuse {overuse}, {:.1} ms)",
                    *elapsed_us as f64 / 1000.0
                )
            }
            MapEvent::Mapped {
                ii,
                iis_explored,
                elapsed_us,
            } => eprintln!(
                "[{id}] mapped at II {ii} ({iis_explored} IIs, {:.1} ms)",
                *elapsed_us as f64 / 1000.0
            ),
            MapEvent::GaveUp {
                reason,
                iis_explored,
                elapsed_us,
            } => eprintln!(
                "[{id}] gave up ({}) after {iis_explored} IIs, {:.1} ms",
                reason.label(),
                *elapsed_us as f64 / 1000.0
            ),
        }
    }
}

/// Appends one JSON object per event to a writer (JSON Lines).
///
/// Write errors are swallowed: tracing must never abort a mapping run.
/// The buffer is flushed after every terminal event (`mapped`/`gave_up`),
/// on [`finish`](EventSink::finish), and on drop, so a run killed between
/// runs leaves at most the current run's tail unwritten — never a line
/// truncated mid-record by a lost buffer.
#[derive(Debug)]
pub struct JsonlTrace<W: Write> {
    /// `None` only after `into_inner` moved the writer out (lets the
    /// `Drop` flush coexist with by-value extraction without unsafe).
    out: Option<W>,
}

impl JsonlTrace<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlTrace<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self { out: Some(out) }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer only taken here");
        let _ = out.flush();
        out
    }
}

impl<W: Write> EventSink for JsonlTrace<W> {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        let Some(out) = self.out.as_mut() else {
            return;
        };
        let _ = writeln!(out, "{}", event.to_json(meta));
        if matches!(event, MapEvent::Mapped { .. } | MapEvent::GaveUp { .. }) {
            let _ = out.flush();
        }
    }

    fn finish(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write> Drop for JsonlTrace<W> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Derives `events.*` metrics from the event stream into the global
/// [`rewire_obs::metrics`] registry, under an explicit
/// `"<mapper>/<kernel>"` scope taken from each event's [`RunMeta`].
///
/// This is the bridge between the two observability planes: the trace
/// records *what happened when*, the metrics record *how much in total*.
/// Using the meta's identity (rather than the thread's current scope)
/// makes the sink correct even when one thread multiplexes events from
/// several runs (the bench harness's shared sink).
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSink;

impl MetricsSink {
    /// Creates the sink (stateless; records into the global registry).
    pub fn new() -> Self {
        Self
    }
}

impl EventSink for MetricsSink {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        let registry = obs::metrics();
        let scope = format!("{}/{}", meta.mapper, meta.kernel);
        let us64 = |us: u128| u64::try_from(us).unwrap_or(u64::MAX);
        match event {
            MapEvent::IiStarted { .. } => {
                registry.counter_in(&scope, "events.ii_attempts").incr();
            }
            MapEvent::NegotiationRound { overuse, .. } => {
                registry
                    .counter_in(&scope, "events.negotiation_rounds")
                    .incr();
                registry
                    .histogram_in(&scope, "events.round_overuse")
                    .record(*overuse);
            }
            MapEvent::AttemptFinished {
                routed,
                iterations,
                elapsed_us,
                ..
            } => {
                let name = if *routed {
                    "events.attempts_routed"
                } else {
                    "events.attempts_failed"
                };
                registry.counter_in(&scope, name).incr();
                registry
                    .histogram_in(&scope, "events.attempt_iterations")
                    .record(*iterations);
                registry
                    .histogram_in(&scope, "events.attempt_us")
                    .record(us64(*elapsed_us));
            }
            MapEvent::Mapped { ii, elapsed_us, .. } => {
                registry.counter_in(&scope, "events.mapped").incr();
                registry
                    .gauge_in(&scope, "events.achieved_ii")
                    .set(*ii as i64);
                registry
                    .histogram_in(&scope, "events.map_time_us")
                    .record(us64(*elapsed_us));
            }
            MapEvent::GaveUp {
                reason, elapsed_us, ..
            } => {
                registry.counter_in(&scope, "events.gave_up").incr();
                registry.counter_in(&scope, gave_up_counter(*reason)).incr();
                registry
                    .histogram_in(&scope, "events.map_time_us")
                    .record(us64(*elapsed_us));
            }
        }
    }
}

/// Static counter name for a give-up reason (no per-event allocation).
fn gave_up_counter(reason: GiveUpReason) -> &'static str {
    match reason {
        GiveUpReason::NoMii => "events.gave_up.no_mii",
        GiveUpReason::MaxIiReached => "events.gave_up.max_ii_reached",
        GiveUpReason::TotalBudget => "events.gave_up.total_budget",
        GiveUpReason::Refused => "events.gave_up.refused",
    }
}

/// A cloneable, thread-safe handle to one shared sink.
///
/// The bench harness hands one clone to every worker thread of its
/// `--jobs` fan-out, so events from concurrent runs interleave *per line*
/// (each line still carries its [`RunMeta`] identity) without interleaving
/// mid-line.
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<Box<dyn EventSink + Send>>>);

impl SharedSink {
    /// Wraps `sink` for shared use.
    pub fn new(sink: impl EventSink + Send + 'static) -> Self {
        Self(Arc::new(Mutex::new(Box::new(sink))))
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink")
    }
}

impl EventSink for SharedSink {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        if let Ok(mut sink) = self.0.lock() {
            sink.emit(meta, event);
        }
    }

    fn finish(&mut self) {
        if let Ok(mut sink) = self.0.lock() {
            sink.finish();
        }
    }
}

/// Duplicates every event to each contained sink, in order.
///
/// The boxes are `Send` so a composed fanout (e.g. trace + metrics) can be
/// wrapped in a [`SharedSink`] and cloned across bench worker threads.
#[derive(Default)]
pub struct Fanout(pub Vec<Box<dyn EventSink + Send>>);

impl EventSink for Fanout {
    fn emit(&mut self, meta: &RunMeta<'_>, event: &MapEvent) {
        for sink in &mut self.0 {
            sink.emit(meta, event);
        }
    }

    fn finish(&mut self) {
        for sink in &mut self.0 {
            sink.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GiveUpReason;

    fn meta() -> RunMeta<'static> {
        RunMeta {
            mapper: "SA",
            kernel: "fir",
            seed: 1,
        }
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlTrace::new(Vec::new());
        sink.emit(&meta(), &MapEvent::IiStarted { ii: 2 });
        sink.emit(
            &meta(),
            &MapEvent::GaveUp {
                reason: GiveUpReason::MaxIiReached,
                iis_explored: 1,
                elapsed_us: 10,
            },
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"mapper\":\"SA\""), "{line}");
        }
    }

    #[test]
    fn jsonl_flushes_on_drop() {
        use std::io::BufWriter;
        use std::sync::{Arc, Mutex};

        /// A writer that records what reached it only via `write`, so a
        /// `BufWriter` in front of it shows whether buffers were flushed.
        #[derive(Clone, Default)]
        struct Probe(Arc<Mutex<Vec<u8>>>);
        impl Write for Probe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let probe = Probe::default();
        {
            let mut sink = JsonlTrace::new(BufWriter::new(probe.clone()));
            sink.emit(&meta(), &MapEvent::IiStarted { ii: 2 });
            // Non-terminal event: may still sit in the BufWriter here.
        }
        let text = String::from_utf8(probe.0.lock().unwrap().clone()).unwrap();
        assert!(
            text.contains("\"type\":\"ii_started\""),
            "drop flushed the buffered line: {text:?}"
        );
    }

    #[test]
    fn jsonl_flushes_after_terminal_events() {
        use std::io::BufWriter;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Probe(Arc<Mutex<Vec<u8>>>);
        impl Write for Probe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let probe = Probe::default();
        let mut sink = JsonlTrace::new(BufWriter::new(probe.clone()));
        sink.emit(
            &meta(),
            &MapEvent::Mapped {
                ii: 2,
                iis_explored: 1,
                elapsed_us: 5,
            },
        );
        let text = String::from_utf8(probe.0.lock().unwrap().clone()).unwrap();
        assert!(
            text.contains("\"type\":\"mapped\""),
            "terminal event reached the writer before drop: {text:?}"
        );
        std::mem::forget(sink); // leak: even without drop the line is safe
    }

    #[test]
    fn metrics_sink_derives_event_counters() {
        let m = RunMeta {
            mapper: "SA",
            kernel: "metrics_sink_test_kernel",
            seed: 1,
        };
        let mut sink = MetricsSink::new();
        sink.emit(&m, &MapEvent::IiStarted { ii: 3 });
        sink.emit(
            &m,
            &MapEvent::NegotiationRound {
                ii: 3,
                iteration: 50,
                ill_nodes: 2,
                overuse: 7,
            },
        );
        sink.emit(
            &m,
            &MapEvent::AttemptFinished {
                ii: 3,
                routed: false,
                overuse: 7,
                iterations: 120,
                elapsed_us: 900,
            },
        );
        sink.emit(
            &m,
            &MapEvent::GaveUp {
                reason: GiveUpReason::MaxIiReached,
                iis_explored: 1,
                elapsed_us: 1000,
            },
        );
        let snap = obs::metrics().snapshot();
        let s = &snap.scopes["SA/metrics_sink_test_kernel"];
        assert_eq!(s.counters["events.ii_attempts"], 1);
        assert_eq!(s.counters["events.negotiation_rounds"], 1);
        assert_eq!(s.counters["events.attempts_failed"], 1);
        assert_eq!(s.counters["events.gave_up"], 1);
        assert_eq!(s.counters["events.gave_up.max_ii_reached"], 1);
        assert_eq!(s.histograms["events.round_overuse"].max, Some(7));
        assert_eq!(s.histograms["events.attempt_us"].max, Some(900));
    }

    #[test]
    fn shared_sink_is_cloneable_and_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedSink>();
        let mut a = SharedSink::new(Silent);
        let mut b = a.clone();
        a.emit(&meta(), &MapEvent::IiStarted { ii: 1 });
        b.emit(&meta(), &MapEvent::IiStarted { ii: 2 });
    }

    #[test]
    fn fanout_forwards_to_every_sink() {
        use std::sync::atomic::{AtomicU32, Ordering};
        struct Count(Arc<AtomicU32>);
        impl EventSink for Count {
            fn emit(&mut self, _: &RunMeta<'_>, _: &MapEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let n = Arc::new(AtomicU32::new(0));
        let mut fan = Fanout(vec![Box::new(Count(n.clone())), Box::new(Count(n.clone()))]);
        fan.emit(&meta(), &MapEvent::IiStarted { ii: 1 });
        assert_eq!(n.load(Ordering::Relaxed), 2);
    }
}
