//! The typed event stream every engine-driven mapping run emits.
//!
//! Events describe the *shape* of a run — which IIs were tried, how each
//! attempt ended, when negotiation made progress — without exposing mapper
//! internals. Sinks ([`crate::engine::EventSink`]) decide what to do with
//! them: drop them, print progress, or append JSONL trace lines.

/// Identity of one mapping run, attached to every emitted event.
///
/// The engine constructs it from the mapper's display name, the kernel
/// name, and the run's base seed, so traces from concurrent runs (the
/// bench harness `--jobs` fan-out) stay attributable line by line.
#[derive(Clone, Copy, Debug)]
pub struct RunMeta<'a> {
    /// Mapper display name (`"Rewire"`, `"PF*"`, `"SA"`).
    pub mapper: &'a str,
    /// Kernel name.
    pub kernel: &'a str,
    /// Base RNG seed of the run ([`crate::MapLimits::seed`]).
    pub seed: u64,
}

/// Why an engine-driven run ended without a mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GiveUpReason {
    /// The DFG can never map on this fabric (MII undefined).
    NoMii,
    /// Every II up to [`crate::MapLimits::max_ii`] failed.
    MaxIiReached,
    /// The total wall-clock budget expired before `max_ii` was reached.
    TotalBudget,
    /// The mapper declined the instance outright (e.g. the exhaustive
    /// oracle's node-count guard).
    Refused,
}

impl GiveUpReason {
    /// Stable snake_case label used in the JSONL trace.
    pub fn label(self) -> &'static str {
        match self {
            GiveUpReason::NoMii => "no_mii",
            GiveUpReason::MaxIiReached => "max_ii_reached",
            GiveUpReason::TotalBudget => "total_budget",
            GiveUpReason::Refused => "refused",
        }
    }
}

/// One event in the life of a mapping run.
///
/// The engine emits `IiStarted` / `AttemptFinished` around every II attempt
/// and exactly one terminal event (`Mapped` or `GaveUp`) per run; mappers
/// themselves emit coarse-grained `NegotiationRound` progress from inside
/// an attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapEvent {
    /// The engine is about to attempt this II.
    IiStarted {
        /// The II being attempted.
        ii: u32,
    },
    /// Progress heartbeat from inside an attempt: one negotiation /
    /// annealing / amendment round. Emitted at mapper-chosen granularity
    /// (every few dozen iterations), never per inner iteration.
    NegotiationRound {
        /// The II being attempted.
        ii: u32,
        /// Mapper-specific round counter (rip-up iterations for PF*,
        /// moves for SA, amendment restarts for Rewire).
        iteration: u64,
        /// Ill-mapped node count at this round.
        ill_nodes: usize,
        /// Total resource overuse at this round.
        overuse: u64,
    },
    /// One II attempt ended (success or failure).
    AttemptFinished {
        /// The II that was attempted.
        ii: u32,
        /// Whether a complete, valid mapping was produced.
        routed: bool,
        /// Residual resource overuse of the failed attempt (0 on success;
        /// for Rewire, the overuse of the initial mapping it amended).
        overuse: u64,
        /// Single-node remapping iterations the attempt consumed.
        iterations: u64,
        /// Wall-clock time this attempt took, in microseconds.
        elapsed_us: u128,
    },
    /// Terminal: the run produced a valid mapping.
    Mapped {
        /// The achieved II.
        ii: u32,
        /// IIs explored, including the successful one.
        iis_explored: u32,
        /// Total wall-clock time in microseconds.
        elapsed_us: u128,
    },
    /// Terminal: the run ended without a mapping.
    GaveUp {
        /// Why the run stopped.
        reason: GiveUpReason,
        /// IIs explored before giving up.
        iis_explored: u32,
        /// Total wall-clock time in microseconds.
        elapsed_us: u128,
    },
}

impl MapEvent {
    /// Stable snake_case discriminant used in the JSONL trace.
    pub fn kind(&self) -> &'static str {
        match self {
            MapEvent::IiStarted { .. } => "ii_started",
            MapEvent::NegotiationRound { .. } => "negotiation_round",
            MapEvent::AttemptFinished { .. } => "attempt_finished",
            MapEvent::Mapped { .. } => "mapped",
            MapEvent::GaveUp { .. } => "gave_up",
        }
    }

    /// Renders the event as one self-contained JSON object (no trailing
    /// newline). The workspace is fully offline, so this hand-rolls the
    /// tiny JSON subset it needs instead of pulling in serde.
    pub fn to_json(&self, meta: &RunMeta<'_>) -> String {
        let mut s = String::with_capacity(128);
        s.push('{');
        push_str_field(&mut s, "mapper", meta.mapper);
        s.push(',');
        push_str_field(&mut s, "kernel", meta.kernel);
        s.push(',');
        s.push_str(&format!("\"seed\":{}", meta.seed));
        s.push(',');
        push_str_field(&mut s, "type", self.kind());
        match self {
            MapEvent::IiStarted { ii } => s.push_str(&format!(",\"ii\":{ii}")),
            MapEvent::NegotiationRound {
                ii,
                iteration,
                ill_nodes,
                overuse,
            } => s.push_str(&format!(
                ",\"ii\":{ii},\"iteration\":{iteration},\"ill_nodes\":{ill_nodes},\"overuse\":{overuse}"
            )),
            MapEvent::AttemptFinished {
                ii,
                routed,
                overuse,
                iterations,
                elapsed_us,
            } => s.push_str(&format!(
                ",\"ii\":{ii},\"routed\":{routed},\"overuse\":{overuse},\"iterations\":{iterations},\"elapsed_us\":{elapsed_us}"
            )),
            MapEvent::Mapped {
                ii,
                iis_explored,
                elapsed_us,
            } => s.push_str(&format!(
                ",\"ii\":{ii},\"iis_explored\":{iis_explored},\"elapsed_us\":{elapsed_us}"
            )),
            MapEvent::GaveUp {
                reason,
                iis_explored,
                elapsed_us,
            } => s.push_str(&format!(
                ",\"reason\":\"{}\",\"iis_explored\":{iis_explored},\"elapsed_us\":{elapsed_us}",
                reason.label()
            )),
        }
        s.push('}');
        s
    }
}

/// Appends `"key":"escaped value"` to `s`.
fn push_str_field(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta<'static> {
        RunMeta {
            mapper: "PF*",
            kernel: "atax",
            seed: 7,
        }
    }

    #[test]
    fn json_lines_carry_identity_and_kind() {
        let e = MapEvent::IiStarted { ii: 3 };
        let j = e.to_json(&meta());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"mapper\":\"PF*\""));
        assert!(j.contains("\"kernel\":\"atax\""));
        assert!(j.contains("\"seed\":7"));
        assert!(j.contains("\"type\":\"ii_started\""));
        assert!(j.contains("\"ii\":3"));
    }

    #[test]
    fn every_variant_serialises_with_its_kind() {
        let events = [
            MapEvent::IiStarted { ii: 1 },
            MapEvent::NegotiationRound {
                ii: 1,
                iteration: 50,
                ill_nodes: 4,
                overuse: 2,
            },
            MapEvent::AttemptFinished {
                ii: 1,
                routed: false,
                overuse: 3,
                iterations: 900,
                elapsed_us: 42,
            },
            MapEvent::Mapped {
                ii: 2,
                iis_explored: 2,
                elapsed_us: 1234,
            },
            MapEvent::GaveUp {
                reason: GiveUpReason::MaxIiReached,
                iis_explored: 18,
                elapsed_us: 99,
            },
        ];
        for e in &events {
            let j = e.to_json(&meta());
            assert!(j.contains(&format!("\"type\":\"{}\"", e.kind())), "{j}");
            assert_eq!(j.matches('{').count(), 1, "flat object: {j}");
            assert_eq!(j.matches('}').count(), 1, "flat object: {j}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let m = RunMeta {
            mapper: "a\"b\\c",
            kernel: "k\n",
            seed: 0,
        };
        let j = MapEvent::IiStarted { ii: 1 }.to_json(&m);
        assert!(j.contains("a\\\"b\\\\c"));
        assert!(j.contains("k\\n"));
    }

    #[test]
    fn give_up_reasons_have_stable_labels() {
        assert_eq!(GiveUpReason::NoMii.label(), "no_mii");
        assert_eq!(GiveUpReason::MaxIiReached.label(), "max_ii_reached");
        assert_eq!(GiveUpReason::TotalBudget.label(), "total_budget");
        assert_eq!(GiveUpReason::Refused.label(), "refused");
    }
}
