//! The consolidated mapping engine: one II-search driver under every
//! mapper in the workspace.
//!
//! The paper's thesis is consolidation, and the outer mapping loop is the
//! same for every mapper the evaluation compares: compute the MII, try
//! each II in ascending order under a wall-clock budget, and assemble
//! [`MapStats`]. This module owns that loop once — [`IiSearch`] — while
//! each mapper implements only [`IiAttempt`]: *"try to map at this II
//! under this deadline."* Identical budget enforcement across mappers is
//! what makes the relative comparison fair (the same observation drives
//! mapper-agnostic harnesses like SAT-MapIt's modulo-scheduling loop).
//!
//! The engine also threads a typed [`MapEvent`] stream through every run;
//! see [`EventSink`] for the pluggable sinks.
//!
//! ```text
//! Mapper::map_with_events(dfg, cgra, limits, sink)
//!   └─ IiSearch::run
//!        ├─ MII, per-II deadline = min(ii_time_budget, total budget left)
//!        ├─ for ii in mii..=max_ii:
//!        │    emit IiStarted → IiAttempt::attempt → emit AttemptFinished
//!        └─ emit Mapped / GaveUp, assemble MapStats
//! ```

mod events;
mod sinks;

pub use events::{GiveUpReason, MapEvent, RunMeta};
pub use sinks::{EventSink, Fanout, JsonlTrace, MetricsSink, SharedSink, Silent, StderrProgress};

use crate::{MapLimits, MapOutcome, MapStats, Mapping};
use rewire_arch::Cgra;
use rewire_dfg::Dfg;
use rewire_obs as obs;
use rewire_obs::FlightEvent;
use std::time::{Duration, Instant};

/// The engine's passive stall watchdog.
///
/// No watchdog thread — a thread would observe wall-clock state
/// nondeterministically and could never be byte-identical-safe. Instead the
/// engine stamps a flight-recorder heartbeat at every attempt boundary and,
/// when an attempt *returns*, checks how far it overshot its deadline. An
/// overshoot beyond [`StallWatchdog::GRACE`] is a stall: the attempt sat
/// inside one inner iteration long past the budget — exactly the runtime
/// cliff the forensics pipeline exists to explain. Stalls are counted
/// (`engine.stalls`) and stamped into the flight record; nothing feeds back
/// into the search.
struct StallWatchdog {
    /// Deadline overshoot tolerated before an attempt counts as stalled.
    grace: Duration,
}

impl StallWatchdog {
    /// Overshoot tolerance: attempts legitimately finish their current
    /// inner iteration after the deadline, so only a 2× blowup (relative
    /// to a floor of 50 ms for tiny budgets) is flagged.
    fn new(ii_budget: Duration) -> Self {
        Self {
            grace: ii_budget.max(Duration::from_millis(50)),
        }
    }

    /// Heartbeat: the engine is about to hand control to an attempt.
    fn attempt_started(&self, ii: u32) {
        obs::flight_event(FlightEvent::AttemptPhase {
            phase: "attempt_start",
            ii,
        });
    }

    /// Heartbeat: the attempt returned. Flags a stall if control came
    /// back long after the deadline passed.
    fn attempt_finished(&self, ii: u32, routed: bool, deadline: Instant) {
        obs::flight_event(FlightEvent::AttemptPhase {
            phase: if routed { "attempt_ok" } else { "attempt_fail" },
            ii,
        });
        let overshoot = Instant::now().saturating_duration_since(deadline);
        if overshoot > self.grace {
            obs::counter("engine.stalls").incr();
            obs::flight_event(FlightEvent::AttemptPhase {
                phase: "stall_detected",
                ii,
            });
        }
    }

    /// Terminal heartbeat: the run is over. On failure this is the drain
    /// marker — export readers (the Chrome exporter merges the flight ring
    /// as instant events, `--flight` writes it verbatim) see the full
    /// decision record up to this stamp.
    fn run_ended(&self, phase: &'static str, ii: u32) {
        obs::flight_event(FlightEvent::AttemptPhase { phase, ii });
    }
}

/// The emitting half handed to attempts: a sink plus the run's identity.
///
/// Attempts call [`Emitter::emit`] for coarse-grained progress
/// ([`MapEvent::NegotiationRound`]); the engine uses the same channel for
/// the lifecycle events.
pub struct Emitter<'a> {
    meta: RunMeta<'a>,
    sink: &'a mut dyn EventSink,
    rounds: u64,
}

impl<'a> Emitter<'a> {
    /// Pairs a sink with a run identity. Public so the equivalence tests
    /// (and custom drivers) can feed attempts outside [`IiSearch`].
    pub fn new(meta: RunMeta<'a>, sink: &'a mut dyn EventSink) -> Self {
        Self {
            meta,
            sink,
            rounds: 0,
        }
    }

    /// Emits one event under this run's identity.
    pub fn emit(&mut self, event: MapEvent) {
        if matches!(event, MapEvent::NegotiationRound { .. }) {
            self.rounds += 1;
        }
        self.sink.emit(&self.meta, &event);
    }

    /// The run identity events are tagged with.
    pub fn meta(&self) -> &RunMeta<'a> {
        &self.meta
    }

    /// How many [`MapEvent::NegotiationRound`] events passed through —
    /// the engine copies this into [`MapStats::negotiation_rounds`].
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Everything an attempt may depend on at one II.
///
/// The engine derives the deadline (per-II budget clamped to the total
/// budget) and a per-II seed; the attempt must not outlive the deadline
/// and must treat `seed` as its only source of per-II randomness *if* it
/// wants II-independent streams. (The workspace mappers instead carry one
/// RNG across IIs — the historical behaviour the determinism tests pin.)
#[derive(Clone, Copy, Debug)]
pub struct AttemptCtx<'a> {
    /// The II to attempt.
    pub ii: u32,
    /// The theoretical minimum II the search started from.
    pub mii: u32,
    /// Hard wall-clock deadline for this attempt.
    pub deadline: Instant,
    /// Per-II seed, [`worker_seed`]`(limits.seed, ii, 0)`.
    pub seed: u64,
    /// The run's budgets.
    pub limits: &'a MapLimits,
}

/// A machine-checked claim about one II, produced by *exact* attempts.
///
/// The heuristic mappers never set a verdict: their failures are upper
/// bounds ("didn't find a mapping"), not proofs. The exact SAT backend
/// sets one per attempt, which is what lets the engine, the MII-tightness
/// study, and the fuzz oracle treat a failure at an II as ground truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttemptVerdict {
    /// A mapping was found at this II *and* every lower II since MII was
    /// proven infeasible in the same sweep — the II is exactly minimal.
    Optimal,
    /// UNSAT: no mapping exists at this II (within the encoder's shared
    /// schedule horizon). A proof, trusted by the differential oracle.
    InfeasibleAtII,
    /// The deterministic conflict budget (or the wall-clock deadline)
    /// fired before a verdict; `conflicts` is how much search was spent.
    Unknown {
        /// Conflicts spent before giving up.
        conflicts: u64,
    },
}

impl AttemptVerdict {
    /// Stable label for traces and metrics: `"optimal"`,
    /// `"infeasible"`, or `"unknown"`.
    pub fn label(&self) -> &'static str {
        match self {
            AttemptVerdict::Optimal => "optimal",
            AttemptVerdict::InfeasibleAtII => "infeasible",
            AttemptVerdict::Unknown { .. } => "unknown",
        }
    }
}

/// What one II attempt produced.
#[derive(Debug, Default)]
pub struct AttemptOutcome {
    /// A complete, valid mapping at the attempted II, or `None`.
    pub mapping: Option<Mapping>,
    /// Single-node remapping iterations consumed (the Table I counter).
    pub iterations: u64,
    /// Residual resource overuse when the attempt failed (0 on success).
    pub overuse: u64,
    /// Exact backends attach a machine-checked per-II verdict; heuristic
    /// attempts leave `None`. The engine records it in
    /// [`MapStats::verdicts`].
    pub verdict: Option<AttemptVerdict>,
}

impl AttemptOutcome {
    /// A failed attempt with the given counters.
    pub fn failed(iterations: u64, overuse: u64) -> Self {
        Self {
            mapping: None,
            iterations,
            overuse,
            verdict: None,
        }
    }

    /// A successful attempt.
    pub fn mapped(mapping: Mapping, iterations: u64) -> Self {
        Self {
            mapping: Some(mapping),
            iterations,
            overuse: 0,
            verdict: None,
        }
    }

    /// Attaches an exact verdict to this outcome.
    pub fn with_verdict(mut self, verdict: AttemptVerdict) -> Self {
        self.verdict = Some(verdict);
        self
    }
}

/// One mapper's inner loop: *try to map at this II under this deadline.*
///
/// Implementations hold whatever state must persist across IIs (typically
/// the RNG stream) and are driven by [`IiSearch::run`]. The contract the
/// conformance suite audits:
///
/// * a returned mapping is complete, valid against the DFG/CGRA, and its
///   II equals `ctx.ii`;
/// * the attempt respects `ctx.deadline` (best effort — it may overshoot
///   by one inner iteration, never unboundedly);
/// * `iterations` counts the mapper's single-node remapping work so
///   [`MapStats::remap_iterations`] stays comparable across mappers.
pub trait IiAttempt {
    /// Attempts to map `dfg` onto `cgra` at `ctx.ii`.
    fn attempt(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        ctx: &AttemptCtx<'_>,
        events: &mut Emitter<'_>,
    ) -> AttemptOutcome;
}

/// The shared ascending-II search driver.
///
/// Owns everything the three mappers used to duplicate: MII computation,
/// the `for ii in mii..=max_ii` loop, per-II *and* total wall-clock budget
/// enforcement, per-II seed derivation, [`MapStats`] assembly, and the
/// lifecycle events.
#[derive(Clone, Copy, Debug)]
pub struct IiSearch<'a> {
    name: &'a str,
}

impl<'a> IiSearch<'a> {
    /// A driver reporting `name` as the mapper name in stats and events.
    pub fn new(name: &'a str) -> Self {
        Self { name }
    }

    /// Runs the ascending-II search.
    ///
    /// Per II the attempt gets a deadline of `limits.ii_time_budget`,
    /// clamped so the whole run never exceeds
    /// [`MapLimits::total_time_budget`] (when set) — previously a failing
    /// workload could consume `max_ii × ii_time_budget`.
    pub fn run(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
        attempt: &mut dyn IiAttempt,
        events: &mut dyn EventSink,
    ) -> MapOutcome {
        let start = Instant::now();
        let total_deadline = limits.total_time_budget.map(|budget| start + budget);
        // Observe-only: the scope attributes every metric recorded below
        // this frame (router counters included) to this run, and the spans
        // time the per-phase breakdown. Neither feeds back into mapping.
        let _scope = obs::scope(format!("{}/{}", self.name, dfg.name()));
        let run_span = obs::span("run");
        // Fabric size alongside the run's metrics, so `rewire-report` can
        // correlate map time and distance-table memory with PE count, and
        // the doctor can draw the fabric grid (PE ids are row-major).
        obs::gauge("engine.fabric_pes").set(cgra.num_pes() as i64);
        obs::gauge("engine.fabric_rows").set(i64::from(cgra.rows()));
        obs::gauge("engine.fabric_cols").set(i64::from(cgra.cols()));
        let watchdog = StallWatchdog::new(limits.ii_time_budget);
        let mut emitter = Emitter::new(
            RunMeta {
                mapper: self.name,
                kernel: dfg.name(),
                seed: limits.seed,
            },
            events,
        );
        let mut stats = MapStats {
            mapper: self.name.to_string(),
            kernel: dfg.name().to_string(),
            ..MapStats::default()
        };

        let mii = {
            let _mii_span = obs::span("mii");
            dfg.mii(cgra)
        };
        let Some(mii) = mii else {
            stats.elapsed = start.elapsed();
            emitter.emit(MapEvent::GaveUp {
                reason: GiveUpReason::NoMii,
                iis_explored: 0,
                elapsed_us: stats.elapsed.as_micros(),
            });
            obs::counter("engine.gave_up").incr();
            watchdog.run_ended("gave_up_no_mii", 0);
            drop(run_span);
            return MapOutcome {
                mapping: None,
                stats,
            };
        };
        stats.mii = mii;

        for ii in mii..=limits.max_ii {
            let now = Instant::now();
            if let Some(td) = total_deadline {
                if now >= td {
                    stats.elapsed = start.elapsed();
                    stats.negotiation_rounds = emitter.rounds();
                    emitter.emit(MapEvent::GaveUp {
                        reason: GiveUpReason::TotalBudget,
                        iis_explored: stats.iis_explored,
                        elapsed_us: stats.elapsed.as_micros(),
                    });
                    obs::counter("engine.gave_up").incr();
                    watchdog.run_ended("gave_up_total_budget", ii);
                    drop(run_span);
                    return MapOutcome {
                        mapping: None,
                        stats,
                    };
                }
            }
            stats.iis_explored += 1;
            obs::counter("engine.iis_explored").incr();
            let mut deadline = now + limits.ii_time_budget;
            if let Some(td) = total_deadline {
                deadline = deadline.min(td);
            }
            emitter.emit(MapEvent::IiStarted { ii });
            let ctx = AttemptCtx {
                ii,
                mii,
                deadline,
                seed: worker_seed(limits.seed, ii, 0),
                limits,
            };
            obs::counter("engine.attempts").incr();
            watchdog.attempt_started(ii);
            let attempt_start = Instant::now();
            let outcome = {
                let _attempt_span = obs::span("attempt");
                attempt.attempt(dfg, cgra, &ctx, &mut emitter)
            };
            let attempt_elapsed = attempt_start.elapsed();
            watchdog.attempt_finished(ii, outcome.mapping.is_some(), deadline);
            obs::histogram("engine.attempt_us")
                .record(u64::try_from(attempt_elapsed.as_micros()).unwrap_or(u64::MAX));
            stats.remap_iterations += outcome.iterations;
            if let Some(verdict) = outcome.verdict {
                stats.verdicts.push((ii, verdict));
            }
            emitter.emit(MapEvent::AttemptFinished {
                ii,
                routed: outcome.mapping.is_some(),
                overuse: outcome.overuse,
                iterations: outcome.iterations,
                elapsed_us: attempt_elapsed.as_micros(),
            });
            if let Some(mut m) = outcome.mapping {
                debug_assert!(m.is_valid(dfg, cgra), "attempt returned invalid mapping");
                debug_assert_eq!(m.ii(), ii, "attempt returned mapping at the wrong II");
                // Steiner consolidation: with tree fan-out routing on,
                // every successful mapping — whichever mapper produced it —
                // gets its multi-sink signals re-routed as shared route
                // trees. Strict-improvement-only commits keep II and
                // validity untouched (see `crate::fanout`).
                if rewire_mrrg::default_fanout_mode() == rewire_mrrg::FanoutMode::Tree {
                    let _consolidate_span = obs::span("consolidate_fanout");
                    crate::fanout::consolidate_fanout(dfg, cgra, &mut m);
                    debug_assert!(m.is_valid(dfg, cgra), "consolidation broke the mapping");
                }
                stats.achieved_ii = Some(ii);
                stats.elapsed = start.elapsed();
                stats.negotiation_rounds = emitter.rounds();
                emitter.emit(MapEvent::Mapped {
                    ii,
                    iis_explored: stats.iis_explored,
                    elapsed_us: stats.elapsed.as_micros(),
                });
                obs::counter("engine.mapped").incr();
                watchdog.run_ended("mapped", ii);
                drop(run_span);
                return MapOutcome {
                    mapping: Some(m),
                    stats,
                };
            }
        }

        stats.elapsed = start.elapsed();
        stats.negotiation_rounds = emitter.rounds();
        emitter.emit(MapEvent::GaveUp {
            reason: GiveUpReason::MaxIiReached,
            iis_explored: stats.iis_explored,
            elapsed_us: stats.elapsed.as_micros(),
        });
        obs::counter("engine.gave_up").incr();
        watchdog.run_ended("gave_up_max_ii", limits.max_ii);
        drop(run_span);
        MapOutcome {
            mapping: None,
            stats,
        }
    }
}

/// SplitMix64-style mix of `(base seed, II, stream rank)` into one derived
/// seed. A pure function of its inputs, so every derived stream is
/// reproducible: the engine uses rank 0 for [`AttemptCtx::seed`] and the
/// Rewire portfolio uses ranks `0..width` for its restart workers.
pub fn worker_seed(seed: u64, ii: u32, rank: u64) -> u64 {
    let mut z = seed ^ 0x5E11 ^ (u64::from(ii) << 32) ^ rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Collects every event for sequence assertions.
    #[derive(Default)]
    pub(crate) struct Recorder(pub Vec<MapEvent>);

    impl EventSink for Recorder {
        fn emit(&mut self, _meta: &RunMeta<'_>, event: &MapEvent) {
            self.0.push(event.clone());
        }
    }

    /// An attempt that always fails after sleeping, for budget tests.
    struct SleepyFail(Duration);

    impl IiAttempt for SleepyFail {
        fn attempt(
            &mut self,
            _dfg: &Dfg,
            _cgra: &Cgra,
            _ctx: &AttemptCtx<'_>,
            _events: &mut Emitter<'_>,
        ) -> AttemptOutcome {
            std::thread::sleep(self.0);
            AttemptOutcome::failed(1, 2)
        }
    }

    fn chain() -> Dfg {
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_node("ld", rewire_arch::OpKind::Load);
        for i in 0..3 {
            let n = dfg.add_node(format!("a{i}"), rewire_arch::OpKind::Add);
            dfg.add_edge(prev, n, 0).unwrap();
            prev = n;
        }
        dfg
    }

    #[test]
    fn total_budget_caps_the_ii_sweep() {
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let dfg = chain();
        let limits = MapLimits::fast()
            .with_max_ii(1000)
            .with_ii_time_budget(Duration::from_millis(1))
            .with_total_time_budget(Duration::from_millis(40));
        let mut recorder = Recorder::default();
        let start = Instant::now();
        let out = IiSearch::new("test").run(
            &dfg,
            &cgra,
            &limits,
            &mut SleepyFail(Duration::from_millis(10)),
            &mut recorder,
        );
        assert!(out.mapping.is_none());
        // Without the total cap this would be 1000 × 10 ms; with it the
        // sweep stops after ~4 attempts.
        assert!(
            out.stats.iis_explored < 100,
            "explored {} IIs",
            out.stats.iis_explored
        );
        assert!(start.elapsed() < Duration::from_secs(5));
        match recorder.0.last() {
            Some(MapEvent::GaveUp { reason, .. }) => {
                assert_eq!(*reason, GiveUpReason::TotalBudget)
            }
            other => panic!("expected GaveUp, got {other:?}"),
        }
    }

    #[test]
    fn per_ii_deadline_is_clamped_to_the_total_budget() {
        struct DeadlineProbe(Vec<Duration>);
        impl IiAttempt for DeadlineProbe {
            fn attempt(
                &mut self,
                _dfg: &Dfg,
                _cgra: &Cgra,
                ctx: &AttemptCtx<'_>,
                _events: &mut Emitter<'_>,
            ) -> AttemptOutcome {
                self.0
                    .push(ctx.deadline.saturating_duration_since(Instant::now()));
                AttemptOutcome::failed(0, 0)
            }
        }
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let dfg = chain();
        let limits = MapLimits::fast()
            .with_max_ii(4)
            .with_ii_time_budget(Duration::from_secs(3600))
            .with_total_time_budget(Duration::from_millis(200));
        let mut probe = DeadlineProbe(Vec::new());
        let _ = IiSearch::new("test").run(&dfg, &cgra, &limits, &mut probe, &mut Silent);
        assert!(!probe.0.is_empty());
        for remaining in &probe.0 {
            assert!(
                *remaining <= Duration::from_millis(200),
                "per-II deadline exceeds the total budget: {remaining:?}"
            );
        }
    }

    #[test]
    fn unmappable_dfg_gives_up_with_no_mii() {
        let cgra = rewire_arch::CgraBuilder::new(2, 2).build().unwrap();
        let mut dfg = Dfg::new("needs-mem");
        dfg.add_node("ld", rewire_arch::OpKind::Load);
        let mut recorder = Recorder::default();
        let out = IiSearch::new("test").run(
            &dfg,
            &cgra,
            &MapLimits::fast(),
            &mut SleepyFail(Duration::ZERO),
            &mut recorder,
        );
        assert!(out.mapping.is_none());
        assert_eq!(out.stats.iis_explored, 0);
        assert_eq!(recorder.0.len(), 1);
        assert!(matches!(
            recorder.0[0],
            MapEvent::GaveUp {
                reason: GiveUpReason::NoMii,
                ..
            }
        ));
    }

    #[test]
    fn exhausting_max_ii_gives_up_and_counts_iterations() {
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let dfg = chain();
        let mii = dfg.mii(&cgra).unwrap();
        let limits = MapLimits::fast().with_max_ii(mii + 2);
        let mut recorder = Recorder::default();
        let out = IiSearch::new("test").run(
            &dfg,
            &cgra,
            &limits,
            &mut SleepyFail(Duration::ZERO),
            &mut recorder,
        );
        assert!(out.mapping.is_none());
        assert_eq!(out.stats.iis_explored, 3);
        assert_eq!(out.stats.remap_iterations, 3, "1 per attempted II");
        let starts = recorder
            .0
            .iter()
            .filter(|e| matches!(e, MapEvent::IiStarted { .. }))
            .count();
        let finishes = recorder
            .0
            .iter()
            .filter(|e| matches!(e, MapEvent::AttemptFinished { routed: false, .. }))
            .count();
        assert_eq!(starts, 3);
        assert_eq!(finishes, 3);
        assert!(matches!(
            recorder.0.last(),
            Some(MapEvent::GaveUp {
                reason: GiveUpReason::MaxIiReached,
                ..
            })
        ));
    }

    #[test]
    fn negotiation_rounds_are_totalled_into_stats() {
        struct TwoRounds;
        impl IiAttempt for TwoRounds {
            fn attempt(
                &mut self,
                _dfg: &Dfg,
                _cgra: &Cgra,
                ctx: &AttemptCtx<'_>,
                events: &mut Emitter<'_>,
            ) -> AttemptOutcome {
                for iteration in 1..=2 {
                    events.emit(MapEvent::NegotiationRound {
                        ii: ctx.ii,
                        iteration,
                        ill_nodes: 0,
                        overuse: 0,
                    });
                }
                AttemptOutcome::failed(0, 0)
            }
        }
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let dfg = chain();
        let mii = dfg.mii(&cgra).unwrap();
        let limits = MapLimits::fast().with_max_ii(mii + 2);
        let out = IiSearch::new("test").run(&dfg, &cgra, &limits, &mut TwoRounds, &mut Silent);
        assert_eq!(out.stats.iis_explored, 3);
        assert_eq!(out.stats.negotiation_rounds, 6, "2 rounds × 3 IIs");
    }

    #[test]
    fn engine_metrics_are_scoped_per_run() {
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let dfg = chain();
        let mii = dfg.mii(&cgra).unwrap();
        let limits = MapLimits::fast().with_max_ii(mii + 1);
        let _ = IiSearch::new("engine-metrics-test").run(
            &dfg,
            &cgra,
            &limits,
            &mut SleepyFail(Duration::ZERO),
            &mut Silent,
        );
        let snap = obs::metrics().snapshot();
        let s = &snap.scopes["engine-metrics-test/chain"];
        assert_eq!(s.counters["engine.iis_explored"], 2);
        assert_eq!(s.counters["engine.gave_up"], 1);
        assert_eq!(s.histograms["engine.attempt_us"].count, 2);
        assert_eq!(s.spans["run"].count, 1);
        assert_eq!(s.spans["run/mii"].count, 1);
        assert_eq!(s.spans["run/attempt"].count, 2);
        assert!(
            s.spans["run"].total_ns >= s.spans["run/attempt"].total_ns,
            "parent span covers its children"
        );
    }

    #[test]
    fn worker_seeds_are_distinct_and_stable() {
        let s0 = worker_seed(42, 2, 0);
        assert_eq!(s0, worker_seed(42, 2, 0), "pure function of its inputs");
        assert_ne!(s0, worker_seed(42, 2, 1), "ranks get distinct streams");
        assert_ne!(s0, worker_seed(42, 3, 0), "IIs get distinct streams");
        assert_ne!(s0, worker_seed(43, 2, 0), "seeds get distinct streams");
    }

    #[test]
    fn ctx_seed_is_the_rank_zero_worker_seed() {
        struct SeedProbe(Vec<(u32, u64)>);
        impl IiAttempt for SeedProbe {
            fn attempt(
                &mut self,
                _dfg: &Dfg,
                _cgra: &Cgra,
                ctx: &AttemptCtx<'_>,
                _events: &mut Emitter<'_>,
            ) -> AttemptOutcome {
                self.0.push((ctx.ii, ctx.seed));
                AttemptOutcome::failed(0, 0)
            }
        }
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let dfg = chain();
        let limits = MapLimits::fast().with_seed(99).with_max_ii(3);
        let mut probe = SeedProbe(Vec::new());
        let _ = IiSearch::new("test").run(&dfg, &cgra, &limits, &mut probe, &mut Silent);
        for (ii, seed) in &probe.0 {
            assert_eq!(*seed, worker_seed(99, *ii, 0));
        }
    }
}
