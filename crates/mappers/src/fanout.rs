//! Post-success fan-out consolidation: re-route each multi-sink signal as
//! a shared route tree and keep the result only when it strictly shrinks
//! the signal's resource footprint.
//!
//! This is how every mapper gets the Steiner-tree win without touching its
//! search loop: the engine calls [`consolidate_fanout`] on each successful
//! mapping (when [`FanoutMode::Tree`](rewire_mrrg::FanoutMode) is the
//! process default), after the attempt and before the outcome is returned.
//! The pass is *provably safe* by construction:
//!
//! * **II never changes** — placements and schedule times are untouched;
//!   only routes between fixed endpoints are replaced, and every
//!   replacement satisfies the same [`RouteRequest`]s as the originals.
//! * **Per-signal footprint never grows** — a consolidated tree is
//!   committed only when its distinct-cell footprint is *strictly* below
//!   the per-edge routes it replaces; otherwise the originals are kept.
//! * **No overuse is introduced** — replacement routes are found under
//!   [`UnitCost`], which refuses any cell the signal cannot legally share,
//!   against an occupancy snapshot equal to the live one minus the
//!   signal's own routes. Signals are consolidated one at a time so each
//!   decision sees all earlier commits.
//!
//! The differential suite (`tests/route_tree_mappers.rs`) pins these
//! guarantees across all mappers, kernels and fuzz scenarios.

use crate::Mapping;
use rewire_arch::Cgra;
use rewire_dfg::{Dfg, EdgeId, NodeId};
use rewire_mrrg::{RouteRequest, RouteTree, Router, UnitCost};
use rewire_obs as obs;

/// What one [`consolidate_fanout`] pass achieved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ConsolidationStats {
    /// Fan-out signals whose routes were replaced by a smaller tree.
    pub signals_consolidated: u64,
    /// Distinct MRRG cells freed across all consolidated signals.
    pub cells_saved: u64,
}

/// Re-routes every fan-out signal of a **valid** `mapping` as a shared
/// route tree, committing each tree only on strict footprint improvement.
///
/// Signals are visited in node-id order, so the pass is deterministic.
/// The mapping stays valid throughout; on any per-signal failure the
/// signal's original routes are kept verbatim.
///
/// Publishes `fanout.consolidations` and `fanout.cells_saved` counters.
pub fn consolidate_fanout(dfg: &Dfg, cgra: &Cgra, mapping: &mut Mapping) -> ConsolidationStats {
    // Router over a local MRRG handle: `Mapping::mrrg()` borrows the
    // mapping, which must stay mutable below, so clone the (cheap,
    // shape-only) graph out first.
    let mrrg = mapping.mrrg().clone();
    let router = Router::new(cgra, &mrrg);
    let mut stats = ConsolidationStats::default();

    for u in (0..dfg.num_nodes() as u32).map(NodeId::new) {
        let edges: Vec<EdgeId> = dfg
            .out_edges(u)
            .filter(|e| mapping.route(e.id()).is_some())
            .map(|e| e.id())
            .collect();
        if edges.len() < 2 {
            continue; // fan-out of one is already a (trivial) tree
        }
        let old: Vec<_> = edges
            .iter()
            .map(|&e| mapping.route(e).expect("filtered to routed").clone())
            .collect();
        // A valid mapping's per-signal routes always form a tree (they are
        // overuse-free, hence phase-consistent); guard anyway so a
        // mid-negotiation caller cannot panic the pass.
        let Ok(old_tree) = RouteTree::from_branches(old.clone()) else {
            continue;
        };
        let old_footprint = old_tree.footprint();
        let reqs: Vec<RouteRequest> = old.iter().map(|r| *r.request()).collect();

        // Route against a snapshot with this signal's routes released —
        // exactly the occupancy a commit would re-claim into.
        let mut occ = mapping.occupancy().clone();
        for r in &old {
            occ.release_route(r);
        }
        let Ok(new) = router.route_fanout(&mut occ, &reqs, &UnitCost) else {
            continue; // originals stay committed
        };
        let Ok(new_tree) = RouteTree::from_branches(new.clone()) else {
            continue;
        };
        let new_footprint = new_tree.footprint();
        if new_footprint >= old_footprint {
            continue; // strict improvement only
        }
        for (&e, r) in edges.iter().zip(new) {
            mapping.clear_route(e);
            mapping.set_route(e, r);
        }
        stats.signals_consolidated += 1;
        stats.cells_saved += (old_footprint - new_footprint) as u64;
    }

    obs::counter("fanout.consolidations").add(stats.signals_consolidated);
    obs::counter("fanout.cells_saved").add(stats.cells_saved);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MapLimits, Mapper, PathFinderMapper};
    use rewire_arch::presets;
    use rewire_dfg::kernels;
    use rewire_mrrg::{set_default_fanout_mode, FanoutMode};

    /// Consolidation keeps the mapping valid, keeps the II, and never
    /// grows any signal's footprint.
    #[test]
    fn consolidation_is_safe_and_monotone() {
        // Per-edge baseline mapping so the pass has something to improve.
        let prev = set_default_fanout_mode(FanoutMode::PerEdge);
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let out = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        set_default_fanout_mode(prev);
        let mut m = out.mapping.expect("fir maps on 4x4/r4");
        let ii = m.ii();

        let before: Vec<(u64, usize)> = per_signal_footprints(&dfg, &m);
        let stats = consolidate_fanout(&dfg, &cgra, &mut m);
        let after: Vec<(u64, usize)> = per_signal_footprints(&dfg, &m);

        assert!(m.is_valid(&dfg, &cgra), "consolidation broke the mapping");
        assert_eq!(m.ii(), ii);
        for ((sig, b), (sig2, a)) in before.iter().zip(&after) {
            assert_eq!(sig, sig2);
            assert!(a <= b, "signal {sig} footprint grew: {b} -> {a}");
        }
        let saved: usize = before
            .iter()
            .zip(&after)
            .map(|((_, b), (_, a))| b - a)
            .sum();
        assert_eq!(stats.cells_saved as usize, saved);
        // Idempotence: a second pass finds nothing further to shrink on
        // signals it already consolidated to their tree optimum... it may
        // still shave others, but must stay safe.
        let again = consolidate_fanout(&dfg, &cgra, &mut m);
        assert!(m.is_valid(&dfg, &cgra));
        assert!(again.cells_saved <= stats.cells_saved + saved as u64);
    }

    fn per_signal_footprints(dfg: &Dfg, m: &Mapping) -> Vec<(u64, usize)> {
        (0..dfg.num_nodes() as u32)
            .map(NodeId::new)
            .filter_map(|u| {
                let routes: Vec<_> = dfg
                    .out_edges(u)
                    .filter_map(|e| m.route(e.id()).cloned())
                    .collect();
                if routes.is_empty() {
                    return None;
                }
                let tree = RouteTree::from_branches(routes).expect("valid mapping forms trees");
                Some((u.index() as u64, tree.footprint()))
            })
            .collect()
    }
}
