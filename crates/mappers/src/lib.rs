//! Mapping state, validation, scheduling helpers, and the two baseline
//! CGRA mappers the Rewire paper compares against.
//!
//! * [`Mapping`] — placement + routes + occupancy with full validation,
//!   shared by every mapper in the workspace (including `rewire-core`),
//! * [`PathFinderMapper`] — `PF*`, negotiated-congestion rip-up/re-place in
//!   the SPR/PathFinder tradition; also supplies the *initial mapping*
//!   Rewire amends,
//! * [`SaMapper`] — `SA`, simulated annealing over placements,
//! * [`Mapper`] / [`MapOutcome`] / [`MapStats`] / [`MapLimits`] — the
//!   interface and bookkeeping the evaluation harness consumes.
//!
//! # Examples
//!
//! ```
//! use rewire_arch::presets;
//! use rewire_dfg::kernels;
//! use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
//!
//! let cgra = presets::paper_4x4_r4();
//! let dfg = kernels::gesummv();
//! let outcome = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast());
//! if let Some(mapping) = &outcome.mapping {
//!     assert!(mapping.is_valid(&dfg, &cgra));
//!     println!("mapped at II {}", mapping.ii());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealing;
pub mod engine;
mod exact;
mod exhaustive;
mod fanout;
mod limits;
mod mapping;
mod pathfinder;
mod render;
mod schedule;
mod stats;
mod traits;

pub use annealing::{SaAttempt, SaConfig, SaMapper};
pub use engine::{AttemptVerdict, EventSink, IiAttempt, IiSearch, MapEvent, Silent};
pub use exact::{ExactAttempt, ExactSatMapper};
pub use exhaustive::{ExhaustiveAttempt, ExhaustiveMapper};
pub use fanout::{consolidate_fanout, ConsolidationStats};
pub use limits::MapLimits;
pub use mapping::{Mapping, MappingIssue};
pub use pathfinder::{PathFinderAttempt, PathFinderConfig, PathFinderMapper};
pub use schedule::{candidate_pes, default_horizon, modulo_schedule, schedule_asap, time_window};
pub use stats::MapStats;
pub use traits::{MapOutcome, Mapper};
