//! `PF*` — the PathFinder-style negotiated-congestion baseline.
//!
//! The paper describes its fine-tuned comparator as: "generate an initial
//! mapping by selecting the placement with the minimal routing cost for the
//! edges and then amend the mapping through multiple remapping iterations
//! until a feasible solution is reached". This implementation follows that
//! recipe, in the SPR/PathFinder tradition:
//!
//! 1. nodes are placed in topological order at the min-cost `(PE, time)`
//!    candidate under a negotiated congestion cost (overuse allowed),
//! 2. while the mapping is invalid, one ill-mapped node per iteration is
//!    ripped up and re-placed at the then-cheapest candidate, with history
//!    costs accumulating on persistently overused cells,
//! 3. if the iteration or time budget is exhausted, II is increased.
//!
//! Every rip-up/re-place counts as one *single-node remapping iteration* —
//! the quantity Table I reports.

use crate::engine::{
    AttemptCtx, AttemptOutcome, Emitter, EventSink, IiAttempt, IiSearch, MapEvent,
};
use crate::schedule::{candidate_pes, modulo_schedule};
use crate::{MapLimits, MapOutcome, Mapper, Mapping};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rewire_arch::{Cgra, PeId};
use rewire_dfg::{Dfg, EdgeId, NodeId};
use rewire_mrrg::{
    default_fanout_mode, CostModel, FanoutMode, Mrrg, NegotiatedCost, Resource, Route, Router,
};
use rewire_obs::{self as obs, FlightEvent};
use std::time::Instant;

/// Configuration of the PF* baseline.
#[derive(Clone, Debug)]
pub struct PathFinderConfig {
    /// Present-congestion factor of the negotiated cost.
    pub present_factor: f64,
    /// History increment applied to overused cells each iteration.
    pub history_increment: f64,
    /// Hard cap on remapping iterations per II.
    pub max_iterations_per_ii: u64,
    /// How many schedule times are examined per candidate PE.
    pub times_per_candidate: u32,
    /// How many promising candidates are fully routed per placement.
    /// The paper's PF* "evaluates all the placement candidates", so the
    /// default is unlimited (the admissible lower-bound cut still applies);
    /// lower it for a faster, weaker baseline.
    pub max_full_evals: u32,
    /// When `true`, a failed II attempt is retried with fresh randomness
    /// until the per-II wall-clock budget is exhausted, instead of the
    /// faithful early termination ("backtracking limitation"). Used by the
    /// equal-budget compile-time experiment (Fig 6).
    pub use_full_budget: bool,
}

impl Default for PathFinderConfig {
    fn default() -> Self {
        Self {
            present_factor: 4.0,
            history_increment: 1.0,
            max_iterations_per_ii: 900,
            times_per_candidate: 6,
            max_full_evals: u32::MAX,
            use_full_budget: false,
        }
    }
}

/// The PF* mapper. See the module docs for the algorithm.
#[derive(Clone, Debug, Default)]
pub struct PathFinderMapper {
    config: PathFinderConfig,
}

impl PathFinderMapper {
    /// Creates a PF* mapper with default negotiation factors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a PF* mapper with an explicit configuration.
    pub fn with_config(config: PathFinderConfig) -> Self {
        Self { config }
    }

    /// Produces only the *initial* (possibly invalid) mapping at `ii` —
    /// the starting point the paper feeds to Rewire ("we use the initial
    /// mapping of PF* as the initial mapping for Rewire").
    ///
    /// Returns `None` when no modulo schedule exists at `ii` (below
    /// RecMII).
    pub fn initial_mapping(&self, dfg: &Dfg, cgra: &Cgra, ii: u32, seed: u64) -> Option<Mapping> {
        let mut rng = StdRng::seed_from_u64(seed);
        let asap = modulo_schedule(dfg, cgra, ii)?;
        let mrrg = Mrrg::new(cgra, ii);
        let router = Router::new(cgra, &mrrg);
        let mut mapping = Mapping::new(dfg, &mrrg);
        let cost = NegotiatedCost::new(&mrrg, self.config.present_factor, 0.0);
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        let mut placement_history = vec![0.0f64; dfg.num_nodes() * cgra.num_pes()];
        for v in dfg.topo_order() {
            self.place_min_cost(
                dfg,
                cgra,
                &router,
                &mut mapping,
                &asap,
                v,
                &cost,
                &mut placement_history,
                &mut rng,
                deadline,
            );
        }
        Some(mapping)
    }

    /// One full II attempt. Returns the mapping on success, the number of
    /// remapping iterations spent either way, and the residual overuse on
    /// failure.
    fn try_ii(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        ii: u32,
        deadline: Instant,
        rng: &mut StdRng,
        events: &mut Emitter<'_>,
    ) -> (Option<Mapping>, u64, u64) {
        let Some(asap) = modulo_schedule(dfg, cgra, ii) else {
            return (None, 0, 0);
        };
        let mrrg = Mrrg::new(cgra, ii);
        let router = Router::new(cgra, &mrrg);
        let mut mapping = Mapping::new(dfg, &mrrg);
        let mut cost = NegotiatedCost::new(
            &mrrg,
            self.config.present_factor,
            self.config.history_increment,
        );

        let m_placements = obs::counter("pf.placements");
        let m_rip_ups = obs::counter("pf.rip_ups");

        // Placement history: (node, PE) pairs that were tried and left
        // edges unrouted get progressively more expensive, the PathFinder
        // idea lifted from cells to placements. Without it the cost
        // landscape is static and endpoint pairs ping-pong forever.
        let mut placement_history = vec![0.0f64; dfg.num_nodes() * cgra.num_pes()];
        {
            let _place_span = obs::span("place");
            for v in dfg.topo_order() {
                self.place_min_cost(
                    dfg,
                    cgra,
                    &router,
                    &mut mapping,
                    &asap,
                    v,
                    &cost,
                    &mut placement_history,
                    rng,
                    deadline,
                );
                m_placements.incr();
            }
        }

        let _negotiate_span = obs::span("negotiate");
        let mut iterations = 0u64;
        let trace = std::env::var_os("PF_TRACE").is_some();
        let tree_mode = default_fanout_mode() == FanoutMode::Tree;
        // Stall detection drives the escalation to *partial remapping*
        // (the paper's term): when single-node moves stop reducing the
        // ill-node count, the victim's whole placed neighbourhood is
        // ripped so a multi-node repair can happen.
        let mut best_ill = usize::MAX;
        let mut stall = 0u32;
        while iterations < self.config.max_iterations_per_ii && Instant::now() < deadline {
            if mapping.is_complete(dfg) {
                debug_assert!(mapping.is_valid(dfg, cgra));
                return (Some(mapping), iterations, 0);
            }
            // Subtree-delta re-routing (tree mode only): before ripping up
            // whole placements, try the cheaper repair of re-growing just
            // the branches of fan-out trees that cross congested cells.
            // Consumes no randomness, commits only on a strict overuse
            // decrease, and can finish the II on its own.
            if tree_mode
                && self.subtree_delta_reroute(dfg, &router, &mut mapping, &cost) > 0
                && mapping.is_complete(dfg)
            {
                debug_assert!(mapping.is_valid(dfg, cgra));
                return (Some(mapping), iterations, 0);
            }
            let ill_count = mapping.ill_mapped_nodes(dfg).len();
            if iterations > 0 && iterations.is_multiple_of(50) {
                events.emit(MapEvent::NegotiationRound {
                    ii,
                    iteration: iterations,
                    ill_nodes: ill_count,
                    overuse: mapping.total_overuse() as u64,
                });
                // Forensics sampling rides the same cadence: one heatmap
                // pass over the overused cells plus the round's peak cell.
                let flight = obs::flight();
                if flight.is_enabled() {
                    let mut peak: Option<((u32, &'static str, u32), u64)> = None;
                    mapping.occupancy().for_each_overused(|cell, excess| {
                        let key = cell.forensics_key(cgra);
                        flight.heat(key.0, key.1, key.2, excess);
                        if peak.is_none_or(|(_, p)| excess > p) {
                            peak = Some((key, excess));
                        }
                    });
                    if let Some(((pe, class, cycle), overuse)) = peak {
                        flight.record(FlightEvent::CongestionPeak {
                            pe,
                            class,
                            cycle,
                            overuse,
                            round: iterations,
                        });
                    }
                }
            }
            if ill_count < best_ill {
                best_ill = ill_count;
                stall = 0;
            } else {
                stall += 1;
            }
            cost.accumulate_history_everywhere(mapping.occupancy());
            let victim = self.pick_victim(dfg, &mapping, rng);
            if stall > 30 {
                stall = 0;
                best_ill = usize::MAX;
                for n in dfg.neighbors(victim) {
                    if mapping.is_placed(n) {
                        mapping.unplace(dfg, n);
                    }
                }
            }
            if trace && iterations.is_multiple_of(25) {
                eprintln!(
                    "  it={iterations} victim={} unplaced={} overuse={} ill={}",
                    dfg.node(victim).name(),
                    mapping.unplaced_nodes(dfg).len(),
                    mapping.total_overuse(),
                    mapping.ill_mapped_nodes(dfg).len()
                );
            }
            // Coordinated rip-up: an unrouted edge needs BOTH endpoints to
            // move towards each other, so rip the partners too. They rejoin
            // the ill pool and are re-placed with the victim's new position
            // visible.
            let partners: Vec<NodeId> = dfg
                .in_edges(victim)
                .chain(dfg.out_edges(victim))
                .filter(|e| {
                    mapping.route(e.id()).is_none()
                        && mapping.is_placed(e.src())
                        && mapping.is_placed(e.dst())
                })
                .map(|e| if e.src() == victim { e.dst() } else { e.src() })
                .filter(|&n| n != victim)
                .collect();
            for p in partners {
                if mapping.is_placed(p) {
                    mapping.unplace(dfg, p);
                }
            }
            if let Some((pe, t_v)) = mapping.placement(victim) {
                obs::flight_event(FlightEvent::RipUp {
                    pe: pe.index() as u32,
                    class: "fu",
                    cycle: mapping.mrrg().slot_of(t_v),
                    round: iterations,
                });
            }
            mapping.unplace(dfg, victim);
            m_rip_ups.incr();
            self.place_min_cost(
                dfg,
                cgra,
                &router,
                &mut mapping,
                &asap,
                victim,
                &cost,
                &mut placement_history,
                rng,
                deadline,
            );
            m_placements.incr();
            iterations += 1;
        }
        if mapping.is_complete(dfg) {
            debug_assert!(mapping.is_valid(dfg, cgra));
            return (Some(mapping), iterations, 0);
        }
        if std::env::var_os("PF_DEBUG").is_some() {
            eprintln!(
                "PF_DEBUG ii={ii} iters={iterations} unplaced={} unrouted={} overuse={}",
                mapping.unplaced_nodes(dfg).len(),
                mapping.unrouted_edges(dfg).len(),
                mapping.total_overuse()
            );
            for e in mapping.unrouted_edges(dfg) {
                let ed = dfg.edge(e);
                eprintln!(
                    "  unrouted {}->{} dist={} src={:?} dst={:?}",
                    dfg.node(ed.src()).name(),
                    dfg.node(ed.dst()).name(),
                    ed.distance(),
                    mapping.placement(ed.src()),
                    mapping.placement(ed.dst())
                );
            }
            for v in mapping.unplaced_nodes(dfg) {
                eprintln!(
                    "  unplaced {} t={} op={}",
                    dfg.node(v).name(),
                    asap[v.index()],
                    dfg.node(v).op()
                );
                for e in dfg.in_edges(v) {
                    eprintln!(
                        "    in  {} t={} placed={:?} dist={}",
                        dfg.node(e.src()).name(),
                        asap[e.src().index()],
                        mapping.placement(e.src()),
                        e.distance()
                    );
                }
                for e in dfg.out_edges(v) {
                    eprintln!(
                        "    out {} t={} placed={:?} dist={}",
                        dfg.node(e.dst()).name(),
                        asap[e.dst().index()],
                        mapping.placement(e.dst()),
                        e.distance()
                    );
                }
            }
        }
        (None, iterations, mapping.total_overuse() as u64)
    }

    /// Subtree-delta re-routing: for every fan-out signal with a branch
    /// crossing an overused cell, rip up *only the crossing branches* and
    /// re-grow them with [`Router::route_fanout`] against the surviving
    /// siblings (whose cells the tree cost discounts, so repaired branches
    /// re-merge onto the retained trunk).
    ///
    /// The whole pass is **transactional**: per-signal re-routes are
    /// committed tentatively when they strictly reduce total overuse, and
    /// the accumulated commits are kept only if the pass finishes with a
    /// *complete* mapping — i.e. it resolved the II attempt outright.
    /// Otherwise every branch is restored verbatim. Because the pass also
    /// consumes no randomness, a rolled-back pass leaves the negotiation
    /// trajectory byte-identical to per-edge mode: tree mode can finish an
    /// II earlier than per-edge PF*, but can never finish later.
    ///
    /// Deterministic (node-id order) and a no-op when the mapping has no
    /// overuse. Returns the number of branches re-routed and kept, also
    /// published on the `router.subtree_reroutes` counter.
    fn subtree_delta_reroute(
        &self,
        dfg: &Dfg,
        router: &Router<'_>,
        mapping: &mut Mapping,
        cost: &NegotiatedCost,
    ) -> u64 {
        if mapping.total_overuse() == 0 {
            return 0;
        }
        // Undo log of every tentatively committed signal: (edge, original
        // route), restored in reverse order on rollback.
        let mut undo: Vec<(EdgeId, Route)> = Vec::new();
        let mut kept = 0u64;
        for u in dfg.topo_order() {
            let routed: Vec<EdgeId> = dfg
                .out_edges(u)
                .filter(|e| mapping.route(e.id()).is_some())
                .map(|e| e.id())
                .collect();
            if routed.len() < 2 {
                continue;
            }
            let crossing: Vec<EdgeId> = routed
                .iter()
                .copied()
                .filter(|&e| {
                    mapping
                        .route(e)
                        .expect("filtered to routed")
                        .resources()
                        .iter()
                        .any(|&c| mapping.occupancy().is_overused(c))
                })
                .collect();
            if crossing.is_empty() || crossing.len() == routed.len() {
                // Nothing congested, or no clean sibling to re-merge onto:
                // a full re-route is the whole-edge rip-up the regular
                // negotiation already does better (with history).
                continue;
            }
            let before = mapping.total_overuse();
            let old: Vec<(EdgeId, Route)> = crossing
                .iter()
                .map(|&e| (e, mapping.route(e).expect("filtered to routed").clone()))
                .collect();
            for &(e, _) in &old {
                mapping.clear_route(e);
            }
            let reqs: Vec<rewire_mrrg::RouteRequest> =
                old.iter().map(|(_, r)| *r.request()).collect();
            let mut occ = mapping.occupancy().clone();
            match router.route_fanout(&mut occ, &reqs, cost) {
                Ok(new_routes) => {
                    for (&(e, _), r) in old.iter().zip(new_routes) {
                        mapping.set_route(e, r);
                    }
                    if mapping.total_overuse() < before {
                        kept += old.len() as u64;
                        undo.extend(old);
                    } else {
                        for &(e, _) in &old {
                            mapping.clear_route(e);
                        }
                        for (e, r) in old {
                            mapping.set_route(e, r);
                        }
                    }
                }
                Err(_) => {
                    for (e, r) in old {
                        mapping.set_route(e, r);
                    }
                }
            }
            if mapping.total_overuse() == 0 {
                break; // nothing congested is left to repair
            }
        }
        if kept > 0 && !mapping.is_complete(dfg) {
            // The deltas helped but did not finish the II: roll everything
            // back so the regular negotiation proceeds exactly as it would
            // have under per-edge routing.
            for (e, r) in undo.into_iter().rev() {
                mapping.clear_route(e);
                mapping.set_route(e, r);
            }
            return 0;
        }
        obs::counter("router.subtree_reroutes").add(kept);
        kept
    }

    /// Builds the [`IiAttempt`] adapter driving this mapper through the
    /// shared [`IiSearch`] engine. The adapter owns the RNG stream, seeded
    /// from `limits.seed` once and carried across IIs exactly as the
    /// pre-engine loop did.
    pub fn ii_attempt(&self, limits: &MapLimits) -> PathFinderAttempt<'_> {
        PathFinderAttempt {
            mapper: self,
            rng: StdRng::seed_from_u64(limits.seed),
        }
    }

    /// Chooses the node to rip up: an unplaced node if any, otherwise the
    /// node most involved in congestion/unrouted edges.
    fn pick_victim(&self, dfg: &Dfg, mapping: &Mapping, rng: &mut StdRng) -> NodeId {
        let ill = mapping.ill_mapped_nodes(dfg);
        debug_assert!(!ill.is_empty(), "victim requested on a valid mapping");
        // Uniform over all ill nodes: preferring unplaced nodes sounds
        // natural but starves the owners of congested routes and livelocks.
        ill[rng.random_range(0..ill.len())]
    }

    /// Places `v` on the cheapest PE at its fixed modulo-schedule time and
    /// commits routes for every adjacent edge that can be routed there.
    ///
    /// PF* follows the SPR/DRESC discipline: the schedule is fixed by
    /// iterative modulo scheduling, and negotiation happens purely over
    /// placement and routing. A placement always succeeds — edges that are
    /// geometrically unroutable at the chosen PE simply stay unrouted
    /// (penalised in the candidate cost), leaving both endpoints ill-mapped
    /// so later iterations move the other side. PEs whose FU cell is free
    /// are strictly preferred; when none exists the cheapest occupied cell
    /// is taken and its owner evicted (rip-up).
    #[allow(clippy::too_many_arguments)]
    fn place_min_cost(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        router: &Router<'_>,
        mapping: &mut Mapping,
        asap: &[u32],
        v: NodeId,
        cost: &NegotiatedCost,
        placement_history: &mut [f64],
        rng: &mut StdRng,
        deadline: Instant,
    ) {
        let _ = rng;
        let ii = mapping.ii();
        let t = asap[v.index()];
        let op = dfg.node(v).op();
        const UNROUTABLE: f64 = 60.0;

        // Soft attraction through unplaced neighbours: if v feeds (or is
        // fed by) an unplaced node u, v should land near u's other placed
        // partners so that u has a feasible spot between them — the
        // single-node analogue of Rewire's transitive source lookup.
        let mut attractors: Vec<PeId> = Vec::new();
        for u in dfg.neighbors(v) {
            if mapping.is_placed(u) {
                continue;
            }
            for w in dfg.neighbors(u) {
                if w != v {
                    if let Some((pe_w, _)) = mapping.placement(w) {
                        attractors.push(pe_w);
                    }
                }
            }
        }

        // Geometric lower bound: each adjacent placed edge contributes its
        // fixed path length, or a penalty when the Manhattan distance
        // cannot be covered in the available cycles (+1 for the delivery
        // hop).
        let lower_bound = |pe: PeId| -> f64 {
            let mut lb = 0.0;
            for a in &attractors {
                lb += 0.3 * cgra.distance(pe, *a) as f64;
            }
            for e in dfg.in_edges(v) {
                let (src_pe, t_src) = if e.src() == v {
                    (pe, t)
                } else {
                    match mapping.placement(e.src()) {
                        Some(p) => p,
                        None => continue,
                    }
                };
                let arrive = t + e.distance() * ii;
                match arrive.checked_sub(t_src + 1) {
                    Some(steps) if steps + 1 >= cgra.distance(src_pe, pe) => lb += steps as f64,
                    _ => lb += UNROUTABLE,
                }
            }
            for e in dfg.out_edges(v) {
                if e.dst() == v {
                    continue;
                }
                let Some((dst_pe, t_dst)) = mapping.placement(e.dst()) else {
                    continue;
                };
                let arrive = t_dst + e.distance() * ii;
                match arrive.checked_sub(t + 1) {
                    Some(steps) if steps + 1 >= cgra.distance(pe, dst_pe) => lb += steps as f64,
                    _ => lb += UNROUTABLE,
                }
            }
            lb
        };

        // Pass 1: free-FU candidates. Pass 2 (eviction) when none exists.
        for evict in [false, true] {
            let mut candidates: Vec<(f64, PeId)> = Vec::new();
            for pe in candidate_pes(cgra, op) {
                let fu = Resource::Fu {
                    pe,
                    slot: mapping.mrrg().slot_of(t),
                };
                if mapping.occupancy().usable_by(fu, v, 0) == evict {
                    continue;
                }
                let hist = placement_history[v.index() * cgra.num_pes() + pe.index()];
                candidates.push((lower_bound(pe) + hist, pe));
            }
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

            let mut best: Option<(f64, PeId)> = None;
            let mut evaluated = 0u32;
            for &(lb, pe) in &candidates {
                if evaluated >= self.config.max_full_evals
                    || (evaluated > 0 && Instant::now() >= deadline)
                {
                    break;
                }
                if let Some((b, _)) = &best {
                    if lb >= *b {
                        break; // lower bound already exceeds the best found
                    }
                }
                let fu = Resource::Fu {
                    pe,
                    slot: mapping.mrrg().slot_of(t),
                };
                let Some(fu_cost) = cost.cell_cost(mapping.occupancy(), fu, v, 0) else {
                    continue;
                };
                let (route_cost, _) =
                    self.route_adjacent(dfg, router, mapping, v, pe, t, cost, UNROUTABLE);
                evaluated += 1;
                let hist = placement_history[v.index() * cgra.num_pes() + pe.index()];
                let attract: f64 = attractors
                    .iter()
                    .map(|a| 0.3 * cgra.distance(pe, *a) as f64)
                    .sum();
                let total = fu_cost + route_cost + hist + attract;
                if best.as_ref().is_none_or(|(b, _)| total < *b) {
                    best = Some((total, pe));
                }
            }

            if let Some((_, pe)) = best {
                if evict {
                    let fu = Resource::Fu {
                        pe,
                        slot: mapping.mrrg().slot_of(t),
                    };
                    let occupants: Vec<NodeId> = mapping
                        .occupancy()
                        .owners(fu)
                        .iter()
                        .map(|((s, _), _)| *s)
                        .collect();
                    obs::counter("pf.evictions").add(occupants.len() as u64);
                    obs::flight_event(FlightEvent::Eviction {
                        pe: pe.index() as u32,
                        cycle: mapping.mrrg().slot_of(t),
                        victims: occupants.len() as u32,
                        ii,
                    });
                    for n in occupants {
                        mapping.unplace(dfg, n);
                    }
                }
                // Commit: place, then route each adjacent edge against the
                // live occupancy, claiming as we go. Unroutable edges stay
                // unrouted and keep their endpoints ill-mapped.
                mapping.place(v, pe, t);
                let adjacent: Vec<EdgeId> = dfg
                    .in_edges(v)
                    .chain(dfg.out_edges(v))
                    .map(|e| e.id())
                    .collect();
                let mut failed = false;
                for e in adjacent {
                    if mapping.route(e).is_some() {
                        continue;
                    }
                    let Some(req) = mapping.request_for(dfg, e) else {
                        continue;
                    };
                    match router.route(mapping.occupancy(), &req, cost) {
                        Ok(r) => mapping.set_route(e, r),
                        Err(err) => {
                            let ed = dfg.edge(e);
                            obs::flight_event(FlightEvent::RouteFailed {
                                edge: (ed.src().index() as u32, ed.dst().index() as u32),
                                ii,
                                reason: err.label(),
                            });
                            failed = true;
                        }
                    }
                }
                if failed {
                    placement_history[v.index() * cgra.num_pes() + pe.index()] +=
                        self.config.history_increment * 3.0;
                }
                return;
            }
        }
    }

    /// Estimates the routing cost of every edge between `v` (tentatively
    /// at `(pe, t)`) and its placed neighbours; unroutable edges contribute
    /// `penalty` each. Returns the summed cost and the number of routable
    /// edges.
    #[allow(clippy::too_many_arguments)]
    fn route_adjacent(
        &self,
        dfg: &Dfg,
        router: &Router<'_>,
        mapping: &Mapping,
        v: NodeId,
        pe: PeId,
        t: u32,
        cost: &NegotiatedCost,
        penalty: f64,
    ) -> (f64, usize) {
        let ii = mapping.ii();
        let mut total = 0.0;
        let mut routable = 0usize;
        for e in dfg.in_edges(v) {
            let (src_pe, t_src) = if e.src() == v {
                (pe, t)
            } else {
                match mapping.placement(e.src()) {
                    Some(p) => p,
                    None => continue,
                }
            };
            let req = rewire_mrrg::RouteRequest {
                signal: e.src(),
                src_pe,
                depart_cycle: t_src + 1,
                dst_pe: pe,
                arrive_cycle: t + e.distance() * ii,
            };
            match router.route(mapping.occupancy(), &req, cost) {
                Ok(route) => {
                    total += route.cost();
                    routable += 1;
                }
                Err(_) => total += penalty,
            }
        }
        for e in dfg.out_edges(v) {
            if e.dst() == v {
                continue; // handled above as an in-edge of v
            }
            let Some((dst_pe, t_dst)) = mapping.placement(e.dst()) else {
                continue;
            };
            let req = rewire_mrrg::RouteRequest {
                signal: v,
                src_pe: pe,
                depart_cycle: t + 1,
                dst_pe,
                arrive_cycle: t_dst + e.distance() * ii,
            };
            match router.route(mapping.occupancy(), &req, cost) {
                Ok(route) => {
                    total += route.cost();
                    routable += 1;
                }
                Err(_) => total += penalty,
            }
        }
        (total, routable)
    }
}

/// PF* driven by the shared engine: one II attempt (or, under
/// `use_full_budget`, restarts until the per-II deadline) with the RNG
/// stream carried across IIs.
pub struct PathFinderAttempt<'m> {
    mapper: &'m PathFinderMapper,
    rng: StdRng,
}

impl IiAttempt for PathFinderAttempt<'_> {
    fn attempt(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        ctx: &AttemptCtx<'_>,
        events: &mut Emitter<'_>,
    ) -> AttemptOutcome {
        // One attempt per II by default: PF* "can terminate early at each
        // II due to the backtracking limitation" (paper §V-B). Under
        // `use_full_budget` the attempt is restarted with fresh randomness
        // until the shared per-II budget runs out.
        let (mut mapping, mut iterations, mut overuse) =
            self.mapper
                .try_ii(dfg, cgra, ctx.ii, ctx.deadline, &mut self.rng, events);
        while self.mapper.config.use_full_budget
            && mapping.is_none()
            && Instant::now() < ctx.deadline
        {
            let (m, iters, ou) =
                self.mapper
                    .try_ii(dfg, cgra, ctx.ii, ctx.deadline, &mut self.rng, events);
            iterations += iters;
            overuse = ou;
            mapping = m;
        }
        AttemptOutcome {
            overuse: if mapping.is_some() { 0 } else { overuse },
            mapping,
            iterations,
            verdict: None,
        }
    }
}

impl Mapper for PathFinderMapper {
    fn name(&self) -> &'static str {
        "PF*"
    }

    fn map_with_events(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
        events: &mut dyn EventSink,
    ) -> MapOutcome {
        IiSearch::new(self.name()).run(dfg, cgra, limits, &mut self.ii_attempt(limits), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;
    use rewire_dfg::kernels;

    #[test]
    fn maps_a_small_chain_at_mii() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_node("ld", rewire_arch::OpKind::Load);
        for i in 0..4 {
            let n = dfg.add_node(format!("a{i}"), rewire_arch::OpKind::Add);
            dfg.add_edge(prev, n, 0).unwrap();
            prev = n;
        }
        let out = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        let m = out.mapping.expect("trivial chain must map");
        assert_eq!(out.stats.achieved_ii, Some(1));
        assert!(m.is_valid(&dfg, &cgra));
    }

    #[test]
    fn maps_gesummv_on_baseline_cgra() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::gesummv();
        let out = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        let m = out.mapping.expect("gesummv maps on 4x4/r4");
        assert!(m.is_valid(&dfg, &cgra));
        let ii = out.stats.achieved_ii.unwrap();
        assert!(ii >= out.stats.mii);
        assert!(ii <= 12, "II {ii} unexpectedly high");
    }

    #[test]
    fn initial_mapping_is_complete_but_may_be_invalid() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::atax();
        let mii = dfg.mii(&cgra).unwrap();
        // The fanout/memory-padded modulo schedule may need a slightly
        // higher II than the theoretical MII; use the first feasible one.
        let m = (mii..mii + 4)
            .find_map(|ii| PathFinderMapper::new().initial_mapping(&dfg, &cgra, ii, 1))
            .unwrap();
        // The initial pass places nearly everything (negotiation allows
        // overuse), though routes may conflict.
        assert!(m.unplaced_nodes(&dfg).len() <= dfg.num_nodes() / 4);
    }

    #[test]
    fn initial_mapping_below_recmii_is_none() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::cholesky(); // RecMII 4
        assert!(PathFinderMapper::new()
            .initial_mapping(&dfg, &cgra, 1, 0)
            .is_none());
    }

    #[test]
    fn unmappable_dfg_fails_cleanly() {
        // Memory op on a memory-less fabric: MII is undefined.
        let cgra = rewire_arch::CgraBuilder::new(2, 2).build().unwrap();
        let mut dfg = Dfg::new("needs-mem");
        dfg.add_node("ld", rewire_arch::OpKind::Load);
        let out = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert!(out.mapping.is_none());
        assert_eq!(out.stats.iis_explored, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let limits = MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(30));
        let a = PathFinderMapper::new().map(&dfg, &cgra, &limits);
        let b = PathFinderMapper::new().map(&dfg, &cgra, &limits);
        assert_eq!(a.stats.achieved_ii, b.stats.achieved_ii);
        assert_eq!(a.stats.remap_iterations, b.stats.remap_iterations);
    }
}
