//! Mapping statistics — the quantities Table I and Fig 6 report.

use crate::engine::AttemptVerdict;
use std::fmt;
use std::time::Duration;

/// Statistics of one mapping attempt (across all IIs explored).
#[derive(Clone, Debug, Default)]
pub struct MapStats {
    /// Mapper name (`"Rewire"`, `"PF*"`, `"SA"`).
    pub mapper: String,
    /// Kernel name.
    pub kernel: String,
    /// The theoretical minimum II the attempt started from.
    pub mii: u32,
    /// The II of the returned mapping (`None` on failure).
    pub achieved_ii: Option<u32>,
    /// Number of II values explored (success or exhaustion).
    pub iis_explored: u32,
    /// Total single-node remapping iterations across all IIs (the paper's
    /// Table I counter: one iteration = one node unmapped and retried).
    pub remap_iterations: u64,
    /// Total coarse-grained progress rounds reported across all IIs
    /// (negotiation iterations for PF*, annealing heartbeats for SA,
    /// amendment restarts for Rewire) — the engine counts the
    /// [`MapEvent::NegotiationRound`](crate::engine::MapEvent) events the
    /// run emitted.
    pub negotiation_rounds: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Machine-checked per-II verdicts, in exploration order. Only exact
    /// backends produce them ([`AttemptOutcome::verdict`]); heuristic
    /// mappers leave this empty.
    ///
    /// [`AttemptOutcome::verdict`]: crate::engine::AttemptOutcome::verdict
    pub verdicts: Vec<(u32, AttemptVerdict)>,
}

impl MapStats {
    /// Average remapping iterations per explored II — exactly the
    /// "average number of remapping iterations from the start II to the
    /// final mapped II" of Table I.
    pub fn remap_iterations_per_ii(&self) -> f64 {
        if self.iis_explored == 0 {
            0.0
        } else {
            self.remap_iterations as f64 / self.iis_explored as f64
        }
    }

    /// Whether a valid mapping was produced.
    pub fn success(&self) -> bool {
        self.achieved_ii.is_some()
    }

    /// Distance from the theoretical optimum: `achieved − MII`.
    /// `Some(0)` is optimal, `Some(1)` near-optimal (the paper's terms).
    pub fn gap_to_mii(&self) -> Option<u32> {
        self.achieved_ii.map(|ii| ii.saturating_sub(self.mii))
    }

    /// The exact verdict recorded at `ii`, if any.
    pub fn verdict_at(&self, ii: u32) -> Option<AttemptVerdict> {
        self.verdicts
            .iter()
            .find(|(v_ii, _)| *v_ii == ii)
            .map(|(_, v)| *v)
    }

    /// IIs this run *proved* infeasible
    /// ([`AttemptVerdict::InfeasibleAtII`]), in ascending order.
    pub fn proven_infeasible_iis(&self) -> Vec<u32> {
        self.verdicts
            .iter()
            .filter(|(_, v)| *v == AttemptVerdict::InfeasibleAtII)
            .map(|(ii, _)| *ii)
            .collect()
    }

    /// `true` when the achieved II carries a machine-checked optimality
    /// proof: the mapped attempt reported [`AttemptVerdict::Optimal`]
    /// (every lower II since MII was UNSAT in the same sweep).
    pub fn proven_optimal(&self) -> bool {
        match self.achieved_ii {
            Some(ii) => self.verdict_at(ii) == Some(AttemptVerdict::Optimal),
            None => false,
        }
    }
}

/// One-line human-readable summary. This is the single formatting path
/// shared by `rewire-map`'s final report and `rewire-report`'s per-run
/// lines, so the two tools can never drift apart:
///
/// ```text
/// PF*/fir: II 4 (MII 3) after 2 IIs, 123 iterations, 5 rounds, 12.3 ms
/// SA/atax: failed (MII 3) after 18 IIs, 990 iterations, 40 rounds, 950.0 ms
/// ```
impl fmt::Display for MapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: ", self.mapper, self.kernel)?;
        match self.achieved_ii {
            Some(ii) => write!(f, "II {ii}")?,
            None => write!(f, "failed")?,
        }
        write!(
            f,
            " (MII {}) after {} IIs, {} iterations, {} rounds, {:.1} ms",
            self.mii,
            self.iis_explored,
            self.remap_iterations,
            self.negotiation_rounds,
            self.elapsed.as_secs_f64() * 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_gaps() {
        let s = MapStats {
            mapper: "PF*".into(),
            kernel: "atax".into(),
            mii: 3,
            achieved_ii: Some(4),
            iis_explored: 2,
            remap_iterations: 100,
            negotiation_rounds: 5,
            elapsed: Duration::from_millis(5),
            ..MapStats::default()
        };
        assert_eq!(s.remap_iterations_per_ii(), 50.0);
        assert_eq!(s.gap_to_mii(), Some(1));
        assert!(s.success());
    }

    #[test]
    fn failure_has_no_gap() {
        let s = MapStats::default();
        assert!(!s.success());
        assert_eq!(s.gap_to_mii(), None);
        assert_eq!(s.remap_iterations_per_ii(), 0.0);
    }

    #[test]
    fn display_is_one_line_with_all_counters() {
        let s = MapStats {
            mapper: "PF*".into(),
            kernel: "fir".into(),
            mii: 3,
            achieved_ii: Some(4),
            iis_explored: 2,
            remap_iterations: 123,
            negotiation_rounds: 5,
            elapsed: Duration::from_micros(12_300),
            ..MapStats::default()
        };
        assert_eq!(
            s.to_string(),
            "PF*/fir: II 4 (MII 3) after 2 IIs, 123 iterations, 5 rounds, 12.3 ms"
        );
    }

    #[test]
    fn verdict_helpers_read_the_sweep() {
        let s = MapStats {
            mii: 2,
            achieved_ii: Some(4),
            verdicts: vec![
                (2, AttemptVerdict::InfeasibleAtII),
                (3, AttemptVerdict::InfeasibleAtII),
                (4, AttemptVerdict::Optimal),
            ],
            ..MapStats::default()
        };
        assert_eq!(s.verdict_at(3), Some(AttemptVerdict::InfeasibleAtII));
        assert_eq!(s.verdict_at(5), None);
        assert_eq!(s.proven_infeasible_iis(), vec![2, 3]);
        assert!(s.proven_optimal());

        let unknown = MapStats {
            mii: 2,
            achieved_ii: Some(3),
            verdicts: vec![
                (2, AttemptVerdict::Unknown { conflicts: 7 }),
                (3, AttemptVerdict::Optimal),
            ],
            ..MapStats::default()
        };
        // The attempt decides Optimal, not these helpers; a well-behaved
        // exact backend never labels Optimal above an Unknown, but the
        // helper just reads what was recorded.
        assert!(unknown.proven_optimal());
        assert_eq!(
            unknown.verdict_at(2),
            Some(AttemptVerdict::Unknown { conflicts: 7 })
        );
        assert!(!MapStats::default().proven_optimal());
        assert_eq!(AttemptVerdict::Optimal.label(), "optimal");
        assert_eq!(AttemptVerdict::InfeasibleAtII.label(), "infeasible");
        assert_eq!(AttemptVerdict::Unknown { conflicts: 0 }.label(), "unknown");
    }

    #[test]
    fn display_marks_failures() {
        let s = MapStats {
            mapper: "SA".into(),
            kernel: "atax".into(),
            mii: 3,
            iis_explored: 18,
            remap_iterations: 990,
            negotiation_rounds: 40,
            elapsed: Duration::from_millis(950),
            ..MapStats::default()
        };
        assert_eq!(
            s.to_string(),
            "SA/atax: failed (MII 3) after 18 IIs, 990 iterations, 40 rounds, 950.0 ms"
        );
    }
}
