//! Mapping statistics — the quantities Table I and Fig 6 report.

use std::time::Duration;

/// Statistics of one mapping attempt (across all IIs explored).
#[derive(Clone, Debug, Default)]
pub struct MapStats {
    /// Mapper name (`"Rewire"`, `"PF*"`, `"SA"`).
    pub mapper: String,
    /// Kernel name.
    pub kernel: String,
    /// The theoretical minimum II the attempt started from.
    pub mii: u32,
    /// The II of the returned mapping (`None` on failure).
    pub achieved_ii: Option<u32>,
    /// Number of II values explored (success or exhaustion).
    pub iis_explored: u32,
    /// Total single-node remapping iterations across all IIs (the paper's
    /// Table I counter: one iteration = one node unmapped and retried).
    pub remap_iterations: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl MapStats {
    /// Average remapping iterations per explored II — exactly the
    /// "average number of remapping iterations from the start II to the
    /// final mapped II" of Table I.
    pub fn remap_iterations_per_ii(&self) -> f64 {
        if self.iis_explored == 0 {
            0.0
        } else {
            self.remap_iterations as f64 / self.iis_explored as f64
        }
    }

    /// Whether a valid mapping was produced.
    pub fn success(&self) -> bool {
        self.achieved_ii.is_some()
    }

    /// Distance from the theoretical optimum: `achieved − MII`.
    /// `Some(0)` is optimal, `Some(1)` near-optimal (the paper's terms).
    pub fn gap_to_mii(&self) -> Option<u32> {
        self.achieved_ii.map(|ii| ii.saturating_sub(self.mii))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_gaps() {
        let s = MapStats {
            mapper: "PF*".into(),
            kernel: "atax".into(),
            mii: 3,
            achieved_ii: Some(4),
            iis_explored: 2,
            remap_iterations: 100,
            elapsed: Duration::from_millis(5),
        };
        assert_eq!(s.remap_iterations_per_ii(), 50.0);
        assert_eq!(s.gap_to_mii(), Some(1));
        assert!(s.success());
    }

    #[test]
    fn failure_has_no_gap() {
        let s = MapStats::default();
        assert!(!s.success());
        assert_eq!(s.gap_to_mii(), None);
        assert_eq!(s.remap_iterations_per_ii(), 0.0);
    }
}
