//! Exploration budgets shared by all mappers.

use std::time::Duration;

/// Budgets for one mapping attempt.
///
/// The paper lets each mapper explore "a maximum of one hour per II"; the
/// reproduction harness uses seconds-scale budgets, applied identically to
/// every mapper so the relative comparison stands.
#[derive(Clone, Copy, Debug)]
pub struct MapLimits {
    /// Give up raising II beyond this value.
    pub max_ii: u32,
    /// Wall-clock budget per explored II.
    pub ii_time_budget: Duration,
    /// RNG seed (cluster selection, SA moves, tie-breaking).
    pub seed: u64,
    /// Total wall-clock budget for the whole II sweep, or `None` for
    /// unlimited. Enforced by the shared engine ([`crate::IiSearch`]): the
    /// sweep stops once the budget is spent, and each per-II deadline is
    /// clamped so no attempt outlives it. Caps the
    /// `max_ii × ii_time_budget` worst case of an unmappable workload.
    pub total_time_budget: Option<Duration>,
}

impl MapLimits {
    /// Budgets suitable for tests and interactive use: II up to 16, half a
    /// second per II.
    pub fn fast() -> Self {
        Self {
            max_ii: 16,
            ii_time_budget: Duration::from_millis(500),
            seed: 0xC0FFEE,
            total_time_budget: None,
        }
    }

    /// Budgets for the benchmark harness: II up to 20, a few seconds per II.
    pub fn benchmark() -> Self {
        Self {
            max_ii: 20,
            ii_time_budget: Duration::from_secs(4),
            seed: 0xC0FFEE,
            total_time_budget: None,
        }
    }

    /// Replaces the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the per-II time budget (builder-style).
    pub fn with_ii_time_budget(mut self, budget: Duration) -> Self {
        self.ii_time_budget = budget;
        self
    }

    /// Replaces the maximum II (builder-style).
    pub fn with_max_ii(mut self, max_ii: u32) -> Self {
        self.max_ii = max_ii;
        self
    }

    /// Caps the total wall-clock time of the whole II sweep
    /// (builder-style).
    pub fn with_total_time_budget(mut self, budget: Duration) -> Self {
        self.total_time_budget = Some(budget);
        self
    }
}

impl Default for MapLimits {
    fn default() -> Self {
        Self::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_replace_fields() {
        let l = MapLimits::fast()
            .with_seed(7)
            .with_max_ii(9)
            .with_ii_time_budget(Duration::from_millis(10))
            .with_total_time_budget(Duration::from_secs(1));
        assert_eq!(l.seed, 7);
        assert_eq!(l.max_ii, 9);
        assert_eq!(l.ii_time_budget, Duration::from_millis(10));
        assert_eq!(l.total_time_budget, Some(Duration::from_secs(1)));
    }

    #[test]
    fn total_time_budget_defaults_to_unlimited() {
        assert_eq!(MapLimits::fast().total_time_budget, None);
        assert_eq!(MapLimits::benchmark().total_time_budget, None);
    }

    #[test]
    fn default_is_fast() {
        assert_eq!(MapLimits::default().max_ii, MapLimits::fast().max_ii);
    }
}
