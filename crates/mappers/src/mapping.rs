//! The mapping state shared by every mapper in the workspace.

use rewire_arch::{Cgra, PeId};
use rewire_dfg::{Dfg, EdgeId, NodeId};
use rewire_mrrg::{Mrrg, Occupancy, Resource, Route, RouteRequest};
use std::fmt;
use std::sync::Arc;

/// A (possibly partial, possibly overused) mapping of a DFG onto a CGRA at
/// a fixed initiation interval.
///
/// A `Mapping` tracks, per node, the placement `(PE, absolute schedule
/// time)` and, per edge, the committed [`Route`]. All resource claims go
/// through an internal [`Occupancy`], which tolerates overuse so that
/// negotiation-style mappers can explore; [`validate`](Mapping::validate)
/// decides whether the state is a physically realisable mapping.
///
/// # Examples
///
/// ```
/// use rewire_arch::{presets, OpKind};
/// use rewire_dfg::Dfg;
/// use rewire_mappers::Mapping;
/// use rewire_mrrg::{Mrrg, Router, UnitCost};
///
/// let cgra = presets::paper_4x4_r4();
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_node("a", OpKind::Add);
/// let b = dfg.add_node("b", OpKind::Add);
/// let e = dfg.add_edge(a, b, 0)?;
///
/// let mrrg = Mrrg::new(&cgra, 2);
/// let mut m = Mapping::new(&dfg, &mrrg);
/// let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
/// let p1 = cgra.pe_at((0, 1).into()).unwrap().id();
/// m.place(a, p0, 0);
/// m.place(b, p1, 1);
///
/// let router = Router::new(&cgra, &mrrg);
/// let req = m.request_for(&dfg, e).unwrap();
/// let route = router.route(m.occupancy(), &req, &UnitCost)?;
/// m.set_route(e, route);
/// assert!(m.validate(&dfg, &cgra).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Mapping {
    // One shared MRRG handle between the mapping and its occupancy table;
    // cloning a mapping (mapper restarts, portfolio workers) copies only
    // the handle.
    mrrg: Arc<Mrrg>,
    pes: Vec<Option<PeId>>,
    times: Vec<Option<u32>>,
    routes: Vec<Option<Route>>,
    occ: Occupancy,
}

/// One defect found by [`Mapping::validate`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum MappingIssue {
    /// A node has no placement.
    NodeUnplaced(NodeId),
    /// A node sits on a PE that cannot execute its operation.
    UnsupportedPe {
        /// The misplaced node.
        node: NodeId,
        /// The incapable PE.
        pe: PeId,
    },
    /// An edge has no committed route.
    EdgeUnrouted(EdgeId),
    /// An edge's route does not match the current placement of its
    /// endpoints (stale after a move).
    RouteMismatch(EdgeId),
    /// An edge's timing is impossible (`arrive < depart`).
    TimingViolation(EdgeId),
    /// Distinct signals share cells: the state is not physically
    /// realisable.
    Overuse {
        /// Total `(signals − 1)` across all cells.
        amount: usize,
    },
}

impl fmt::Display for MappingIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingIssue::NodeUnplaced(n) => write!(f, "node {n} is not placed"),
            MappingIssue::UnsupportedPe { node, pe } => {
                write!(f, "node {node} is placed on incapable {pe}")
            }
            MappingIssue::EdgeUnrouted(e) => write!(f, "edge {e} is not routed"),
            MappingIssue::RouteMismatch(e) => write!(f, "edge {e} has a stale route"),
            MappingIssue::TimingViolation(e) => write!(f, "edge {e} arrives before it departs"),
            MappingIssue::Overuse { amount } => write!(f, "{amount} cells are overused"),
        }
    }
}

impl Mapping {
    /// Creates an empty mapping for `dfg` over the given MRRG shape.
    pub fn new(dfg: &Dfg, mrrg: &Mrrg) -> Self {
        let mrrg = Arc::new(mrrg.clone());
        Self {
            mrrg: mrrg.clone(),
            pes: vec![None; dfg.num_nodes()],
            times: vec![None; dfg.num_nodes()],
            routes: vec![None; dfg.num_edges()],
            occ: Occupancy::new_shared(mrrg),
        }
    }

    /// The initiation interval of this mapping.
    pub fn ii(&self) -> u32 {
        self.mrrg.ii()
    }

    /// The MRRG shape.
    pub fn mrrg(&self) -> &Mrrg {
        &self.mrrg
    }

    /// The occupancy table (for routers and congestion inspection).
    pub fn occupancy(&self) -> &Occupancy {
        &self.occ
    }

    /// Places `node` on `pe` at absolute schedule time `time`, claiming the
    /// FU cell. Any previous placement must be removed first with
    /// [`unplace`](Mapping::unplace).
    ///
    /// # Panics
    ///
    /// Panics if the node is already placed.
    pub fn place(&mut self, node: NodeId, pe: PeId, time: u32) {
        assert!(
            self.pes[node.index()].is_none(),
            "node {node} is already placed"
        );
        self.pes[node.index()] = Some(pe);
        self.times[node.index()] = Some(time);
        self.occ.claim(
            Resource::Fu {
                pe,
                slot: self.mrrg.slot_of(time),
            },
            node,
            0,
        );
    }

    /// Removes `node`'s placement and rips up every route adjacent to it.
    /// Returns the edges whose routes were removed.
    pub fn unplace(&mut self, dfg: &Dfg, node: NodeId) -> Vec<EdgeId> {
        let Some(pe) = self.pes[node.index()].take() else {
            return Vec::new();
        };
        let time = self.times[node.index()]
            .take()
            .expect("pe and time in sync");
        self.occ.release(
            Resource::Fu {
                pe,
                slot: self.mrrg.slot_of(time),
            },
            node,
            0,
        );
        let mut ripped = Vec::new();
        for e in dfg.out_edges(node).chain(dfg.in_edges(node)) {
            if self.routes[e.id().index()].is_some() {
                self.clear_route(e.id());
                ripped.push(e.id());
            }
        }
        ripped
    }

    /// Current placement of `node`.
    pub fn placement(&self, node: NodeId) -> Option<(PeId, u32)> {
        Some((self.pes[node.index()]?, self.times[node.index()]?))
    }

    /// Whether `node` is placed.
    pub fn is_placed(&self, node: NodeId) -> bool {
        self.pes[node.index()].is_some()
    }

    /// Commits a route for `edge`, claiming its cells.
    ///
    /// # Panics
    ///
    /// Panics if the edge already has a route.
    pub fn set_route(&mut self, edge: EdgeId, route: Route) {
        assert!(
            self.routes[edge.index()].is_none(),
            "edge {edge} is already routed"
        );
        self.occ.claim_route(&route);
        self.routes[edge.index()] = Some(route);
    }

    /// Rips up the route of `edge` (no-op if unrouted).
    pub fn clear_route(&mut self, edge: EdgeId) {
        if let Some(route) = self.routes[edge.index()].take() {
            self.occ.release_route(&route);
        }
    }

    /// The committed route of `edge`, if any.
    pub fn route(&self, edge: EdgeId) -> Option<&Route> {
        self.routes[edge.index()].as_ref()
    }

    /// Builds the [`RouteRequest`] implied by the current placement of an
    /// edge's endpoints, or `None` if either endpoint is unplaced.
    ///
    /// Timing contract: `depart = t_src + 1`, `arrive = t_dst + dist·II`.
    pub fn request_for(&self, dfg: &Dfg, edge: EdgeId) -> Option<RouteRequest> {
        let e = dfg.edge(edge);
        let (src_pe, t_src) = self.placement(e.src())?;
        let (dst_pe, t_dst) = self.placement(e.dst())?;
        Some(RouteRequest {
            signal: e.src(),
            src_pe,
            depart_cycle: t_src + 1,
            dst_pe,
            arrive_cycle: t_dst + e.distance() * self.ii(),
        })
    }

    /// Edges with both endpoints placed but no committed route.
    pub fn unrouted_edges(&self, dfg: &Dfg) -> Vec<EdgeId> {
        dfg.edges()
            .filter(|e| {
                self.routes[e.id().index()].is_none()
                    && self.is_placed(e.src())
                    && self.is_placed(e.dst())
            })
            .map(|e| e.id())
            .collect()
    }

    /// Nodes without a placement.
    pub fn unplaced_nodes(&self, dfg: &Dfg) -> Vec<NodeId> {
        dfg.node_ids().filter(|&n| !self.is_placed(n)).collect()
    }

    /// Full validation: returns every defect, or `Ok` for a complete,
    /// physically realisable mapping.
    ///
    /// # Errors
    ///
    /// A non-empty [`MappingIssue`] list describing all defects.
    pub fn validate(&self, dfg: &Dfg, cgra: &Cgra) -> Result<(), Vec<MappingIssue>> {
        let mut issues = Vec::new();
        for node in dfg.nodes() {
            match self.placement(node.id()) {
                None => issues.push(MappingIssue::NodeUnplaced(node.id())),
                Some((pe, _)) => {
                    if !cgra.pe(pe).supports(node.op()) {
                        issues.push(MappingIssue::UnsupportedPe {
                            node: node.id(),
                            pe,
                        });
                    }
                }
            }
        }
        for e in dfg.edges() {
            let Some(expected) = self.request_for(dfg, e.id()) else {
                // Endpoint missing: already reported as NodeUnplaced.
                continue;
            };
            if expected.num_steps().is_none() {
                issues.push(MappingIssue::TimingViolation(e.id()));
                continue;
            }
            match self.route(e.id()) {
                None => issues.push(MappingIssue::EdgeUnrouted(e.id())),
                Some(route) => {
                    if route.request() != &expected {
                        issues.push(MappingIssue::RouteMismatch(e.id()));
                    }
                }
            }
        }
        let overuse = self.occ.total_overuse();
        if overuse > 0 {
            issues.push(MappingIssue::Overuse { amount: overuse });
        }
        if issues.is_empty() {
            Ok(())
        } else {
            Err(issues)
        }
    }

    /// `true` iff [`validate`](Mapping::validate) returns `Ok`.
    pub fn is_valid(&self, dfg: &Dfg, cgra: &Cgra) -> bool {
        self.validate(dfg, cgra).is_ok()
    }

    /// Allocation-free completeness check for mapper hot loops: every node
    /// placed, every edge routed, no overuse. Mappers that rip routes on
    /// every move keep routes fresh by construction, so this is equivalent
    /// to [`is_valid`](Mapping::is_valid) for them (debug-asserted at
    /// commit time).
    pub fn is_complete(&self, dfg: &Dfg) -> bool {
        debug_assert_eq!(self.pes.len(), dfg.num_nodes());
        self.pes.iter().all(|p| p.is_some())
            && self.routes.iter().all(|r| r.is_some())
            && self.occ.total_overuse() == 0
    }

    /// The nodes the paper calls *ill-mapped*: unplaced, or incident to an
    /// edge that is unrouted, mistimed, or riding on overused cells.
    pub fn ill_mapped_nodes(&self, dfg: &Dfg) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        let mark = |n: NodeId, out: &mut Vec<NodeId>| {
            if !out.contains(&n) {
                out.push(n);
            }
        };
        for &n in &self.unplaced_nodes(dfg) {
            mark(n, &mut out);
        }
        // Nodes whose FU cell is shared with another node.
        for n in dfg.node_ids() {
            if let Some((pe, t)) = self.placement(n) {
                let fu = Resource::Fu {
                    pe,
                    slot: self.mrrg.slot_of(t),
                };
                if self.occ.is_overused(fu) {
                    mark(n, &mut out);
                }
            }
        }
        for e in dfg.edges() {
            let bad = match (self.request_for(dfg, e.id()), self.route(e.id())) {
                (None, _) => false, // endpoint unplaced: already marked
                (Some(req), None) => {
                    // Unrouted or timing-violated.
                    let _ = req;
                    true
                }
                (Some(req), Some(route)) => {
                    route.request() != &req
                        || route
                            .resources()
                            .iter()
                            .any(|&cell| self.occ.is_overused(cell))
                }
            };
            if bad {
                mark(e.src(), &mut out);
                mark(e.dst(), &mut out);
            }
        }
        out
    }

    /// Total overuse of the underlying occupancy.
    pub fn total_overuse(&self) -> usize {
        self.occ.total_overuse()
    }

    /// Schedule length: the latest placed operation's absolute time plus
    /// one — the pipeline fill (prologue) depth in cycles.
    pub fn schedule_length(&self) -> u32 {
        self.times
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |t| t + 1)
    }

    /// Steady-state throughput in iterations per cycle (`1 / II`).
    pub fn throughput(&self) -> f64 {
        1.0 / self.ii() as f64
    }

    /// Total cycles to run `iterations` loop iterations, including the
    /// pipeline fill: `schedule_length + (iterations − 1) · II`.
    pub fn cycles_for(&self, iterations: u32) -> u64 {
        if iterations == 0 {
            return 0;
        }
        self.schedule_length() as u64 + (iterations as u64 - 1) * self.ii() as u64
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let placed = self.pes.iter().filter(|p| p.is_some()).count();
        let routed = self.routes.iter().filter(|r| r.is_some()).count();
        write!(
            f,
            "Mapping II={} ({placed}/{} nodes placed, {routed}/{} edges routed, overuse {})",
            self.ii(),
            self.pes.len(),
            self.routes.len(),
            self.total_overuse()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, OpKind};
    use rewire_mrrg::{Router, UnitCost};

    fn chain() -> (Dfg, NodeId, NodeId, EdgeId) {
        let mut dfg = Dfg::new("chain");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        let e = dfg.add_edge(a, b, 0).unwrap();
        (dfg, a, b, e)
    }

    fn setup(ii: u32) -> (Cgra, Mrrg) {
        let cgra = presets::paper_4x4_r4();
        let mrrg = Mrrg::new(&cgra, ii);
        (cgra, mrrg)
    }

    #[test]
    fn empty_mapping_reports_all_defects() {
        let (cgra, mrrg) = setup(2);
        let (dfg, _, _, _) = chain();
        let m = Mapping::new(&dfg, &mrrg);
        let issues = m.validate(&dfg, &cgra).unwrap_err();
        assert_eq!(
            issues
                .iter()
                .filter(|i| matches!(i, MappingIssue::NodeUnplaced(_)))
                .count(),
            2
        );
    }

    #[test]
    fn place_route_validate_round_trip() {
        let (cgra, mrrg) = setup(2);
        let (dfg, a, b, e) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p1 = cgra.pe_at((0, 1).into()).unwrap().id();
        m.place(a, p0, 0);
        m.place(b, p1, 1);
        let router = Router::new(&cgra, &mrrg);
        let req = m.request_for(&dfg, e).unwrap();
        assert_eq!(req.depart_cycle, 1);
        assert_eq!(req.arrive_cycle, 1);
        // 0-length across PEs is impossible: move b later.
        m.unplace(&dfg, b);
        m.place(b, p1, 2);
        let req = m.request_for(&dfg, e).unwrap();
        let route = router.route(m.occupancy(), &req, &UnitCost).unwrap();
        m.set_route(e, route);
        assert!(m.validate(&dfg, &cgra).is_ok());
    }

    #[test]
    fn unplace_rips_adjacent_routes() {
        let (cgra, mrrg) = setup(2);
        let (dfg, a, b, e) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p1 = cgra.pe_at((0, 1).into()).unwrap().id();
        m.place(a, p0, 0);
        m.place(b, p1, 2);
        let router = Router::new(&cgra, &mrrg);
        let req = m.request_for(&dfg, e).unwrap();
        let route = router.route(m.occupancy(), &req, &UnitCost).unwrap();
        m.set_route(e, route);
        let used_before = m.occupancy().used_cells();
        assert!(used_before >= 3); // two FUs + at least one route cell

        let ripped = m.unplace(&dfg, b);
        assert_eq!(ripped, vec![e]);
        assert!(m.route(e).is_none());
        assert!(!m.is_placed(b));
        // Only a's FU remains claimed.
        assert_eq!(m.occupancy().used_cells(), 1);
    }

    #[test]
    fn fu_conflicts_count_as_overuse() {
        let (cgra, mrrg) = setup(2);
        let (dfg, a, b, _) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        m.place(a, p0, 0);
        m.place(b, p0, 2); // same slot (2 % 2 == 0): conflict
        assert_eq!(m.total_overuse(), 1);
        let issues = m.validate(&dfg, &cgra).unwrap_err();
        assert!(issues
            .iter()
            .any(|i| matches!(i, MappingIssue::Overuse { amount: 1 })));
    }

    #[test]
    fn memory_op_on_compute_pe_is_flagged() {
        let (cgra, mrrg) = setup(2);
        let mut dfg = Dfg::new("m");
        let ld = dfg.add_node("ld", OpKind::Load);
        let mut m = Mapping::new(&dfg, &mrrg);
        let inner = cgra.pe_at((0, 2).into()).unwrap().id();
        m.place(ld, inner, 0);
        let issues = m.validate(&dfg, &cgra).unwrap_err();
        assert!(issues
            .iter()
            .any(|i| matches!(i, MappingIssue::UnsupportedPe { .. })));
    }

    #[test]
    fn timing_violation_detected() {
        let (cgra, mrrg) = setup(2);
        let (dfg, a, b, e) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p1 = cgra.pe_at((0, 1).into()).unwrap().id();
        m.place(a, p0, 5);
        m.place(b, p1, 2); // consumer before producer
        let issues = m.validate(&dfg, &cgra).unwrap_err();
        assert!(issues.contains(&MappingIssue::TimingViolation(e)));
    }

    #[test]
    fn ill_mapped_detection() {
        let (cgra, mrrg) = setup(2);
        let (dfg, a, b, _e) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p1 = cgra.pe_at((0, 1).into()).unwrap().id();
        assert_eq!(m.ill_mapped_nodes(&dfg).len(), 2); // both unplaced
        m.place(a, p0, 0);
        m.place(b, p1, 2);
        // Placed but edge unrouted: both endpoints ill-mapped.
        assert_eq!(m.ill_mapped_nodes(&dfg).len(), 2);
        let _ = cgra;
    }

    #[test]
    fn stale_route_detected() {
        let (cgra, mrrg) = setup(2);
        let (dfg, a, b, e) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p1 = cgra.pe_at((0, 1).into()).unwrap().id();
        m.place(a, p0, 0);
        m.place(b, p1, 2);
        let router = Router::new(&cgra, &mrrg);
        let req = m.request_for(&dfg, e).unwrap();
        let route = router.route(m.occupancy(), &req, &UnitCost).unwrap();
        // Move b without re-routing — but keep the stale route committed.
        m.set_route(e, route);
        let stale = m.route(e).cloned().unwrap();
        m.unplace(&dfg, b);
        m.place(b, p1, 3);
        m.set_route(e, stale);
        let issues = m.validate(&dfg, &cgra).unwrap_err();
        assert!(issues.contains(&MappingIssue::RouteMismatch(e)));
    }

    #[test]
    fn schedule_statistics() {
        let (cgra, mrrg) = setup(2);
        let (dfg, a, b, _e) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        assert_eq!(m.schedule_length(), 0);
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p1 = cgra.pe_at((0, 1).into()).unwrap().id();
        m.place(a, p0, 0);
        m.place(b, p1, 3);
        assert_eq!(m.schedule_length(), 4);
        assert!((m.throughput() - 0.5).abs() < 1e-9);
        // 4 fill cycles + 4 more iterations at II 2.
        assert_eq!(m.cycles_for(5), 4 + 4 * 2);
        assert_eq!(m.cycles_for(0), 0);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_panics() {
        let (_cgra, mrrg) = setup(2);
        let (dfg, a, _, _) = chain();
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, PeId::new(0), 0);
        m.place(a, PeId::new(1), 0);
    }
}
