//! `SA` — the simulated-annealing baseline.
//!
//! SA mappers (CGRA-ME, DSAGEN, Morpher variants) explore placements by
//! random perturbation: move one node to a random `(PE, time)` candidate,
//! re-route its edges, and accept by the Metropolis criterion on a cost
//! that penalises congestion and unroutable edges. Matching the paper's
//! setup, an II attempt terminates early when the best cost has not
//! improved for 100 iterations; every accepted-or-rejected move counts as
//! one single-node remapping iteration (Table I).
//!
//! Like the other mappers, SA routes per edge inside its search loop —
//! move evaluation stays mode-independent, so tree and per-edge runs
//! explore identical trajectories — and picks up shared fan-out trees
//! only through the engine's post-success consolidation pass
//! ([`crate::fanout`], DESIGN.md §6j), which swaps a signal's routes
//! solely on strict footprint improvement.

use crate::engine::{
    AttemptCtx, AttemptOutcome, Emitter, EventSink, IiAttempt, IiSearch, MapEvent,
};
use crate::schedule::{candidate_pes, modulo_schedule};
use crate::{MapLimits, MapOutcome, Mapper, Mapping};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rewire_arch::Cgra;
use rewire_dfg::{Dfg, EdgeId, NodeId};
use rewire_mrrg::{Mrrg, NegotiatedCost, Route, Router};
use rewire_obs::{self as obs, FlightEvent};
use std::time::Instant;

/// Configuration of the SA baseline.
#[derive(Clone, Debug)]
pub struct SaConfig {
    /// Starting temperature (cost units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per move.
    pub cooling: f64,
    /// Stop an II attempt after this many moves without improving the best
    /// cost (the paper's "no mapping cost improvement after 100
    /// iterations").
    pub stall_limit: u64,
    /// Hard cap on moves per II.
    pub max_iterations_per_ii: u64,
    /// Cost penalty per overused cell.
    pub overuse_penalty: f64,
    /// Cost penalty per unrouted or timing-violated edge.
    pub unrouted_penalty: f64,
    /// Cap on fresh random restarts per II (a stalled annealing run is
    /// normally restarted until the per-II deadline; tests bound this so
    /// outcomes don't depend on wall-clock timing).
    pub max_restarts_per_ii: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            initial_temperature: 20.0,
            cooling: 0.998,
            stall_limit: 100,
            max_iterations_per_ii: 3000,
            overuse_penalty: 12.0,
            unrouted_penalty: 25.0,
            max_restarts_per_ii: u64::MAX,
        }
    }
}

/// The SA mapper. See the module docs for the algorithm.
#[derive(Clone, Debug, Default)]
pub struct SaMapper {
    config: SaConfig,
}

impl SaMapper {
    /// Creates an SA mapper with default annealing parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an SA mapper with an explicit configuration.
    pub fn with_config(config: SaConfig) -> Self {
        Self { config }
    }

    fn cost(&self, dfg: &Dfg, mapping: &Mapping) -> f64 {
        let mut c = 0.0;
        let mut missing = 0usize;
        for e in dfg.edges() {
            match mapping.route(e.id()) {
                Some(r) => c += r.cost(),
                None => missing += 1,
            }
        }
        c += self.config.unrouted_penalty * missing as f64;
        c += self.config.overuse_penalty * mapping.total_overuse() as f64;
        c
    }

    /// Places `v` at `(pe, t)` and routes its adjacent edges with
    /// negotiated costs (failures leave edges unrouted, penalised by the
    /// cost function).
    #[allow(clippy::too_many_arguments)]
    fn place_and_route(
        &self,
        dfg: &Dfg,
        router: &Router<'_>,
        mapping: &mut Mapping,
        v: NodeId,
        pe: rewire_arch::PeId,
        t: u32,
        cost: &NegotiatedCost,
    ) {
        mapping.place(v, pe, t);
        let adjacent: Vec<EdgeId> = dfg
            .in_edges(v)
            .chain(dfg.out_edges(v))
            .map(|e| e.id())
            .collect();
        let mut done = Vec::new();
        for e in adjacent {
            if done.contains(&e) {
                continue; // self-loop appears in both in- and out-edges
            }
            done.push(e);
            if mapping.route(e).is_some() {
                continue;
            }
            let Some(req) = mapping.request_for(dfg, e) else {
                continue;
            };
            if req.num_steps().is_none() {
                continue; // timing violation: stays unrouted, penalised
            }
            match router.route(mapping.occupancy(), &req, cost) {
                Ok(route) => mapping.set_route(e, route),
                Err(err) => {
                    let ed = dfg.edge(e);
                    obs::flight_event(FlightEvent::RouteFailed {
                        edge: (ed.src().index() as u32, ed.dst().index() as u32),
                        ii: mapping.ii(),
                        reason: err.label(),
                    });
                }
            }
        }
    }

    /// A random PE at the node's fixed modulo-schedule time (DRESC-style
    /// SA anneals placement under a fixed schedule).
    fn random_candidate(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        mapping: &Mapping,
        asap: &[u32],
        v: NodeId,
        rng: &mut StdRng,
    ) -> Option<(rewire_arch::PeId, u32)> {
        let _ = mapping;
        let pes = candidate_pes(cgra, dfg.node(v).op());
        let pe = pes[rng.random_range(0..pes.len())];
        Some((pe, asap[v.index()]))
    }

    fn try_ii(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        ii: u32,
        deadline: Instant,
        rng: &mut StdRng,
        events: &mut Emitter<'_>,
    ) -> (Option<Mapping>, u64, u64) {
        let Some(asap) = modulo_schedule(dfg, cgra, ii) else {
            return (None, 0, 0);
        };
        let mrrg = Mrrg::new(cgra, ii);
        let router = Router::new(cgra, &mrrg);
        let cost_model = NegotiatedCost::new(&mrrg, 0.8, 0.0);
        let mut mapping = Mapping::new(dfg, &mrrg);

        // Random initial placement in topological order.
        {
            let _place_span = obs::span("place");
            for v in dfg.topo_order() {
                if let Some((pe, t)) = self.random_candidate(dfg, cgra, &mapping, &asap, v, rng) {
                    self.place_and_route(dfg, &router, &mut mapping, v, pe, t, &cost_model);
                }
            }
        }

        let _anneal_span = obs::span("anneal");
        let m_moves = obs::counter("sa.moves");
        let m_accepts = obs::counter("sa.accepts");
        let m_rejects = obs::counter("sa.rejects");
        let mut current = self.cost(dfg, &mapping);
        let mut best = current;
        let mut temperature = self.config.initial_temperature;
        let mut stall = 0u64;
        let mut iterations = 0u64;

        while iterations < self.config.max_iterations_per_ii
            && stall < self.config.stall_limit
            && Instant::now() < deadline
        {
            if mapping.is_complete(dfg) {
                debug_assert!(mapping.is_valid(dfg, cgra));
                return (Some(mapping), iterations, 0);
            }
            if iterations > 0 && iterations.is_multiple_of(100) {
                events.emit(MapEvent::NegotiationRound {
                    ii,
                    iteration: iterations,
                    ill_nodes: mapping.ill_mapped_nodes(dfg).len(),
                    overuse: mapping.total_overuse() as u64,
                });
            }
            iterations += 1;
            temperature *= self.config.cooling;

            // Perturb a random node — bias towards ill-mapped ones, which
            // is what real SA mappers do to converge at all.
            let ill = mapping.ill_mapped_nodes(dfg);
            let v = if !ill.is_empty() && rng.random_bool(0.5) {
                ill[rng.random_range(0..ill.len())]
            } else {
                NodeId::new(rng.random_range(0..dfg.num_nodes() as u32))
            };

            // Save state for revert.
            let old_placement = mapping.placement(v);
            let mut saved: Vec<(EdgeId, Route)> = Vec::new();
            for e in dfg.in_edges(v).chain(dfg.out_edges(v)) {
                if let Some(r) = mapping.route(e.id()) {
                    if !saved.iter().any(|(id, _)| *id == e.id()) {
                        saved.push((e.id(), r.clone()));
                    }
                }
            }

            mapping.unplace(dfg, v);
            let cand = self.random_candidate(dfg, cgra, &mapping, &asap, v, rng);
            if let Some((pe, t)) = cand {
                self.place_and_route(dfg, &router, &mut mapping, v, pe, t, &cost_model);
            }

            let new_cost = self.cost(dfg, &mapping);
            let delta = new_cost - current;
            let accept = delta <= 0.0
                || rng.random_bool((-delta / temperature.max(1e-9)).exp().clamp(0.0, 1.0));
            m_moves.incr();
            if accept {
                m_accepts.incr();
            } else {
                m_rejects.incr();
            }
            if accept {
                current = new_cost;
                if current < best {
                    best = current;
                    stall = 0;
                } else {
                    stall += 1;
                }
            } else {
                // Revert: drop the new placement, restore the old one.
                mapping.unplace(dfg, v);
                if let Some((pe, t)) = old_placement {
                    mapping.place(v, pe, t);
                    for (e, r) in saved {
                        mapping.set_route(e, r);
                    }
                }
                stall += 1;
            }
        }
        if mapping.is_complete(dfg) {
            debug_assert!(mapping.is_valid(dfg, cgra));
            (Some(mapping), iterations, 0)
        } else {
            (None, iterations, mapping.total_overuse() as u64)
        }
    }

    /// Builds the [`IiAttempt`] adapter driving this mapper through the
    /// shared [`IiSearch`] engine. The RNG stream (`seed ^ 0x5A5A`) is
    /// created once and carried across IIs exactly as the pre-engine loop
    /// did.
    pub fn ii_attempt(&self, limits: &MapLimits) -> SaAttempt<'_> {
        SaAttempt {
            mapper: self,
            rng: StdRng::seed_from_u64(limits.seed ^ 0x5A5A),
        }
    }
}

/// SA driven by the shared engine: annealing runs with fresh random
/// restarts until the per-II deadline (or the configured restart cap).
pub struct SaAttempt<'m> {
    mapper: &'m SaMapper,
    rng: StdRng,
}

impl IiAttempt for SaAttempt<'_> {
    fn attempt(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        ctx: &AttemptCtx<'_>,
        events: &mut Emitter<'_>,
    ) -> AttemptOutcome {
        // Use the full per-II budget: each stalled annealing run is
        // followed by a fresh random restart.
        let mut mapping = None;
        let mut iterations = 0u64;
        let mut overuse = 0u64;
        let mut restarts = 0u64;
        while mapping.is_none()
            && restarts < self.mapper.config.max_restarts_per_ii
            && Instant::now() < ctx.deadline
        {
            restarts += 1;
            if restarts > 1 {
                obs::counter("sa.restarts").incr();
            }
            let (m, iters, ou) =
                self.mapper
                    .try_ii(dfg, cgra, ctx.ii, ctx.deadline, &mut self.rng, events);
            iterations += iters;
            overuse = ou;
            mapping = m;
        }
        AttemptOutcome {
            overuse: if mapping.is_some() { 0 } else { overuse },
            mapping,
            iterations,
            verdict: None,
        }
    }
}

impl Mapper for SaMapper {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn map_with_events(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
        events: &mut dyn EventSink,
    ) -> MapOutcome {
        IiSearch::new(self.name()).run(dfg, cgra, limits, &mut self.ii_attempt(limits), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;
    use rewire_dfg::kernels;

    #[test]
    fn maps_a_small_chain() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_node("ld", rewire_arch::OpKind::Load);
        for i in 0..3 {
            let n = dfg.add_node(format!("a{i}"), rewire_arch::OpKind::Add);
            dfg.add_edge(prev, n, 0).unwrap();
            prev = n;
        }
        let out = SaMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        let m = out.mapping.expect("small chain must map");
        assert!(m.is_valid(&dfg, &cgra));
    }

    #[test]
    fn maps_fir_eventually() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let limits = MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(2));
        let out = SaMapper::new().map(&dfg, &cgra, &limits);
        if let Some(m) = out.mapping {
            assert!(m.is_valid(&dfg, &cgra));
            assert!(out.stats.achieved_ii.unwrap() >= out.stats.mii);
        }
        // SA may legitimately fail on tight budgets — the paper reports 12
        // outright failures — but the stats must still be coherent.
        assert!(out.stats.iis_explored >= 1);
    }

    #[test]
    fn counts_iterations() {
        let cgra = presets::paper_4x4_r2();
        let dfg = kernels::atax();
        let out = SaMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        // atax on a 2-register fabric is not trivial: SA must have done
        // some work regardless of success.
        assert!(out.stats.remap_iterations > 0);
    }

    #[test]
    fn unmappable_dfg_fails_cleanly() {
        let cgra = rewire_arch::CgraBuilder::new(2, 2).build().unwrap();
        let mut dfg = Dfg::new("needs-mem");
        dfg.add_node("st", rewire_arch::OpKind::Store);
        let out = SaMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert!(out.mapping.is_none());
    }
}
