//! The common mapper interface.

use crate::engine::{EventSink, Silent};
use crate::{MapLimits, MapStats, Mapping};
use rewire_arch::Cgra;
use rewire_dfg::Dfg;

/// Result of a mapping attempt: the mapping (if one was found) plus the
/// statistics the evaluation harness reports.
#[derive(Clone, Debug)]
pub struct MapOutcome {
    /// A validated mapping, or `None` on failure.
    pub mapping: Option<Mapping>,
    /// Counters and timings (always populated).
    pub stats: MapStats,
}

/// A CGRA mapper: given a DFG and an architecture, find a valid mapping at
/// the lowest II it can within the budgets.
///
/// Implementations in this workspace: `PathFinderMapper` (PF*),
/// `SaMapper` (SA), and `RewireMapper` in the `rewire-core` crate.
pub trait Mapper {
    /// Display name used in tables (`"PF*"`, `"SA"`, `"Rewire"`).
    fn name(&self) -> &'static str;

    /// Attempts to map `dfg` onto `cgra`, reporting progress to `events`.
    ///
    /// Contract (audited by the shared conformance suite): if
    /// `MapOutcome::mapping` is `Some`, it validates cleanly against
    /// `dfg`/`cgra` and its II equals `stats.achieved_ii`; on failure
    /// `stats` is still fully populated; and identical inputs (same seed,
    /// same budgets, caps binding before wall-clock deadlines) produce
    /// identical outcomes.
    fn map_with_events(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
        events: &mut dyn EventSink,
    ) -> MapOutcome;

    /// Attempts to map `dfg` onto `cgra`, discarding events.
    fn map(&self, dfg: &Dfg, cgra: &Cgra, limits: &MapLimits) -> MapOutcome {
        self.map_with_events(dfg, cgra, limits, &mut Silent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trait must stay object-safe: the bench harness stores mappers as
    // `Box<dyn Mapper>`.
    #[test]
    fn mapper_is_object_safe() {
        fn _takes(_: &dyn Mapper) {}
    }

    #[test]
    fn outcome_is_cloneable() {
        let o = MapOutcome {
            mapping: None,
            stats: MapStats::default(),
        };
        let _ = o.clone();
    }
}
