//! Human-readable rendering of mappings: a per-slot grid of the fabric.

use crate::Mapping;
use rewire_arch::Cgra;
use rewire_dfg::Dfg;
use std::fmt::Write as _;

impl Mapping {
    /// Renders the mapping as one fabric grid per modulo slot, each cell
    /// showing the node executing there (or `·` for an idle FU), plus a
    /// per-slot routing-pressure line.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_arch::presets;
    /// use rewire_dfg::kernels;
    /// use rewire_mappers::{MapLimits, Mapper, PathFinderMapper};
    ///
    /// let cgra = presets::paper_4x4_r4();
    /// let dfg = kernels::fir();
    /// if let Some(m) = PathFinderMapper::new().map(&dfg, &cgra, &MapLimits::fast()).mapping {
    ///     let art = m.render_grid(&dfg, &cgra);
    ///     assert!(art.contains("slot 0"));
    /// }
    /// ```
    pub fn render_grid(&self, dfg: &Dfg, cgra: &Cgra) -> String {
        let ii = self.ii();
        // Column width: longest node name, at least 3.
        let width = dfg
            .nodes()
            .map(|n| n.name().len())
            .max()
            .unwrap_or(1)
            .max(3);

        // slot -> coord -> name
        let mut grid: Vec<Vec<Vec<Option<String>>>> =
            vec![vec![vec![None; cgra.cols() as usize]; cgra.rows() as usize]; ii as usize];
        for node in dfg.nodes() {
            if let Some((pe, t)) = self.placement(node.id()) {
                let c = cgra.pe(pe).coord();
                grid[(t % ii) as usize][c.row as usize][c.col as usize] =
                    Some(node.name().to_string());
            }
        }

        // Routing pressure per slot: occupied link/register cells.
        let mut links_used = vec![0usize; ii as usize];
        let mut regs_used = vec![0usize; ii as usize];
        for e in dfg.edges() {
            if let Some(route) = self.route(e.id()) {
                for cell in route.resources() {
                    match cell {
                        rewire_mrrg::Resource::Link { slot, .. } => {
                            links_used[*slot as usize] += 1;
                        }
                        rewire_mrrg::Resource::Reg { slot, .. } => {
                            regs_used[*slot as usize] += 1;
                        }
                        rewire_mrrg::Resource::Fu { .. } => {}
                    }
                }
            }
        }

        let mut out = String::new();
        for slot in 0..ii as usize {
            let _ = writeln!(
                out,
                "slot {slot}:  ({} link cells, {} register cells in use)",
                links_used[slot], regs_used[slot]
            );
            for row in &grid[slot] {
                let _ = write!(out, "  ");
                for cell in row {
                    match cell {
                        Some(name) => {
                            let _ = write!(out, "[{name:>width$}]");
                        }
                        None => {
                            let _ = write!(out, "[{:>width$}]", "·");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MapLimits, Mapper, PathFinderMapper};
    use rewire_arch::presets;
    use rewire_dfg::kernels;
    use std::time::Duration;

    #[test]
    fn grid_shows_every_placed_node_once() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
        let m = PathFinderMapper::new()
            .map(&dfg, &cgra, &limits)
            .mapping
            .expect("fir maps");
        let art = m.render_grid(&dfg, &cgra);
        for node in dfg.nodes() {
            assert!(art.contains(node.name()), "{} missing", node.name());
        }
        // One grid per slot, each with 4 rows.
        assert_eq!(art.matches("slot ").count(), m.ii() as usize);
    }

    #[test]
    fn empty_mapping_renders_idle_fabric() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let mrrg = rewire_mrrg::Mrrg::new(&cgra, 2);
        let m = Mapping::new(&dfg, &mrrg);
        let art = m.render_grid(&dfg, &cgra);
        assert!(art.contains("slot 0"));
        assert!(art.contains("slot 1"));
        assert!(art.contains("·"));
    }
}
