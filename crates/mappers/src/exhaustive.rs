//! An exhaustive branch-and-bound mapper for tiny DFGs — the optimality
//! oracle used by tests and ablations.
//!
//! It enumerates placements `(PE, time)` in topological order with
//! incremental exact routing, so the first II at which it succeeds is the
//! true minimum achievable II under this workspace's timing model. The
//! search is exponential; it is deliberately restricted to small graphs.

use crate::engine::{
    AttemptCtx, AttemptOutcome, Emitter, EventSink, GiveUpReason, IiAttempt, IiSearch, MapEvent,
    RunMeta,
};
use crate::schedule::candidate_pes;
use crate::{MapLimits, MapOutcome, MapStats, Mapper, Mapping};
use rewire_dfg::{Dfg, NodeId};
use rewire_mrrg::{Mrrg, Router, UnitCost};
use rewire_obs as obs;
use std::cell::Cell;
use std::time::Instant;

/// The exhaustive mapper. Refuses DFGs larger than
/// [`max_nodes`](ExhaustiveMapper::with_max_nodes) (default 12).
#[derive(Clone, Debug)]
pub struct ExhaustiveMapper {
    max_nodes: usize,
    max_search_nodes: u64,
}

impl Default for ExhaustiveMapper {
    fn default() -> Self {
        Self {
            max_nodes: 12,
            max_search_nodes: u64::MAX,
        }
    }
}

impl ExhaustiveMapper {
    /// Creates an oracle with the default node limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the node limit (be careful: the search is exponential).
    pub fn with_max_nodes(max_nodes: usize) -> Self {
        Self {
            max_nodes,
            ..Self::default()
        }
    }

    /// Caps the branch-and-bound at `max_search_nodes` search-tree nodes
    /// per II. Unlike the wall-clock deadline, the cap truncates the
    /// search *deterministically* — the same instance always explores the
    /// same prefix of the tree — which is what replay-exact harnesses
    /// (the differential fuzzer) need. A truncated II is reported as
    /// failed, so optimality claims weaken to "best within the cap".
    pub fn with_max_search_nodes(mut self, max_search_nodes: u64) -> Self {
        self.max_search_nodes = max_search_nodes;
        self
    }

    fn try_ii(
        &self,
        dfg: &Dfg,
        cgra: &rewire_arch::Cgra,
        ii: u32,
        deadline: Instant,
    ) -> (Option<Mapping>, u64) {
        let mrrg = Mrrg::new(cgra, ii);
        let router = Router::new(cgra, &mrrg);
        let mut mapping = Mapping::new(dfg, &mrrg);
        let order = dfg.topo_order();
        // Bound on schedule times: depth plus one II round of slack per
        // node keeps the search finite yet complete enough in practice.
        let horizon = dfg.longest_path() + 2 * ii;
        // Count search-tree nodes locally and flush once per II so the hot
        // recursion touches a plain `Cell`, not an atomic.
        let nodes = Cell::new(0u64);
        let ok = self.search(
            dfg,
            cgra,
            &router,
            &mut mapping,
            &order,
            0,
            horizon,
            deadline,
            &nodes,
        );
        obs::counter("exhaustive.search_nodes").add(nodes.get());
        (ok.then_some(mapping), nodes.get())
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        dfg: &Dfg,
        cgra: &rewire_arch::Cgra,
        router: &Router<'_>,
        mapping: &mut Mapping,
        order: &[NodeId],
        depth: usize,
        horizon: u32,
        deadline: Instant,
        nodes: &Cell<u64>,
    ) -> bool {
        nodes.set(nodes.get() + 1);
        if depth == order.len() {
            return mapping.is_complete(dfg);
        }
        if nodes.get() >= self.max_search_nodes || Instant::now() >= deadline {
            return false;
        }
        let v = order[depth];
        let ii = mapping.ii();
        // Earliest time from placed parents.
        let mut lb = 0i64;
        for e in dfg.in_edges(v) {
            if e.src() == v {
                continue;
            }
            if let Some((_, tp)) = mapping.placement(e.src()) {
                lb = lb.max(tp as i64 + 1 - (e.distance() * ii) as i64);
            }
        }
        let lb = lb.max(0) as u32;
        for t in lb..=horizon {
            for pe in candidate_pes(cgra, dfg.node(v).op()) {
                let fu = rewire_mrrg::Resource::Fu {
                    pe,
                    slot: mapping.mrrg().slot_of(t),
                };
                if !mapping.occupancy().usable_by(fu, v, 0) {
                    continue;
                }
                mapping.place(v, pe, t);
                // Route every edge whose endpoints are now both placed.
                let mut all_routed = true;
                let mut routed = Vec::new();
                for e in dfg.in_edges(v).chain(dfg.out_edges(v)) {
                    if mapping.route(e.id()).is_some() {
                        continue;
                    }
                    let Some(req) = mapping.request_for(dfg, e.id()) else {
                        continue;
                    };
                    match router.route(mapping.occupancy(), &req, &UnitCost) {
                        Ok(r) => {
                            mapping.set_route(e.id(), r);
                            routed.push(e.id());
                        }
                        Err(_) => {
                            all_routed = false;
                            break;
                        }
                    }
                }
                if all_routed
                    && self.search(
                        dfg,
                        cgra,
                        router,
                        mapping,
                        order,
                        depth + 1,
                        horizon,
                        deadline,
                        nodes,
                    )
                {
                    return true;
                }
                for e in routed {
                    mapping.clear_route(e);
                }
                mapping.unplace(dfg, v);
            }
        }
        false
    }
}

/// The oracle driven by the shared engine. Stateless across IIs: one
/// branch-and-bound search per II under the engine's deadline.
pub struct ExhaustiveAttempt<'m> {
    mapper: &'m ExhaustiveMapper,
}

impl IiAttempt for ExhaustiveAttempt<'_> {
    fn attempt(
        &mut self,
        dfg: &Dfg,
        cgra: &rewire_arch::Cgra,
        ctx: &AttemptCtx<'_>,
        _events: &mut Emitter<'_>,
    ) -> AttemptOutcome {
        // Search-tree nodes are reported as the attempt's iteration count,
        // so `remap_iterations` reveals (to oracles comparing against this
        // mapper) whether a deterministic search-node cap could have
        // truncated any II of the sweep.
        match self.mapper.try_ii(dfg, cgra, ctx.ii, ctx.deadline) {
            (Some(m), nodes) => AttemptOutcome::mapped(m, nodes),
            (None, nodes) => AttemptOutcome::failed(nodes, 0),
        }
    }
}

impl Mapper for ExhaustiveMapper {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn map_with_events(
        &self,
        dfg: &Dfg,
        cgra: &rewire_arch::Cgra,
        limits: &MapLimits,
        events: &mut dyn EventSink,
    ) -> MapOutcome {
        // The node-count guard sits in front of the engine: the oracle
        // refuses large instances outright, before any II is explored.
        if dfg.num_nodes() > self.max_nodes {
            obs::counter("exhaustive.refused").incr();
            let start = Instant::now();
            let stats = MapStats {
                mapper: self.name().to_string(),
                kernel: dfg.name().to_string(),
                elapsed: start.elapsed(),
                ..MapStats::default()
            };
            events.emit(
                &RunMeta {
                    mapper: self.name(),
                    kernel: dfg.name(),
                    seed: limits.seed,
                },
                &MapEvent::GaveUp {
                    reason: GiveUpReason::Refused,
                    iis_explored: 0,
                    elapsed_us: stats.elapsed.as_micros(),
                },
            );
            return MapOutcome {
                mapping: None,
                stats,
            };
        }
        IiSearch::new(self.name()).run(
            dfg,
            cgra,
            limits,
            &mut ExhaustiveAttempt { mapper: self },
            events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, OpKind};

    fn tiny_chain(n: usize) -> Dfg {
        let mut g = Dfg::new("tiny");
        let mut prev = g.add_node("n0", OpKind::Load);
        for i in 1..n {
            let v = g.add_node(format!("n{i}"), OpKind::Add);
            g.add_edge(prev, v, 0).unwrap();
            prev = v;
        }
        g
    }

    #[test]
    fn finds_the_optimum_on_a_chain() {
        let cgra = presets::paper_4x4_r4();
        let dfg = tiny_chain(5);
        let out = ExhaustiveMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert_eq!(out.stats.achieved_ii, Some(1), "a chain maps at II 1");
        assert!(out.mapping.unwrap().is_valid(&dfg, &cgra));
    }

    #[test]
    fn refuses_big_dfgs() {
        let cgra = presets::paper_4x4_r4();
        let dfg = rewire_dfg::kernels::fir();
        let out = ExhaustiveMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert!(out.mapping.is_none());
        assert_eq!(out.stats.iis_explored, 0);
    }

    #[test]
    fn accumulator_needs_ii_two() {
        let cgra = presets::paper_4x4_r4();
        let mut g = Dfg::new("acc");
        let phi = g.add_node("phi", OpKind::Phi);
        let c = g.add_node("c", OpKind::Const);
        let add = g.add_node("add", OpKind::Add);
        g.add_edge(phi, add, 0).unwrap();
        g.add_edge(c, add, 0).unwrap();
        g.add_edge(add, phi, 1).unwrap();
        let out = ExhaustiveMapper::new().map(&g, &cgra, &MapLimits::fast());
        assert_eq!(out.stats.achieved_ii, Some(2), "RecMII 2 is achievable");
    }

    #[test]
    fn heuristic_mappers_match_the_oracle_on_small_graphs() {
        use crate::{Mapper, PathFinderMapper};
        let cgra = presets::paper_4x4_r4();
        let limits = MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(2));
        for n in [3usize, 5, 7] {
            let dfg = tiny_chain(n);
            let oracle = ExhaustiveMapper::new().map(&dfg, &cgra, &limits);
            let pf = PathFinderMapper::new().map(&dfg, &cgra, &limits);
            assert_eq!(
                pf.stats.achieved_ii, oracle.stats.achieved_ii,
                "PF* should reach the oracle's II on a {n}-node chain"
            );
        }
    }
}
