//! Modulo-scheduling helpers shared by all mappers.
//!
//! Schedule times are what the fan-out consolidation pass
//! ([`crate::fanout`]) treats as immutable: a multi-sink signal's route
//! tree must deliver the value to every sink at exactly the time the
//! schedule assigned it, so consolidating routes can never perturb the
//! functions here — only the paths between the scheduled endpoints.

use crate::Mapping;
use rewire_arch::{Cgra, OpKind, PeId};
use rewire_dfg::{Dfg, NodeId};

/// Modulo-constrained ASAP schedule: the earliest absolute time of every
/// node under `t_dst ≥ t_src + 1 − dist·II`, shifted so the minimum is 0.
///
/// Returns `None` if `ii < RecMII` (the constraint system has a positive
/// cycle and no schedule exists).
///
/// # Examples
///
/// ```
/// use rewire_arch::OpKind;
/// use rewire_dfg::Dfg;
/// use rewire_mappers::schedule_asap;
///
/// let mut dfg = Dfg::new("acc");
/// let phi = dfg.add_node("phi", OpKind::Phi);
/// let add = dfg.add_node("add", OpKind::Add);
/// dfg.add_edge(phi, add, 0)?;
/// dfg.add_edge(add, phi, 1)?;
/// assert!(schedule_asap(&dfg, 1).is_none()); // RecMII is 2
/// let t = schedule_asap(&dfg, 2).unwrap();
/// assert_eq!(t[add.index()], t[phi.index()] + 1);
/// # Ok::<(), rewire_dfg::GraphError>(())
/// ```
pub fn schedule_asap(dfg: &Dfg, ii: u32) -> Option<Vec<u32>> {
    let n = dfg.num_nodes();
    let mut t = vec![0i64; n];
    let mut converged = false;
    for _ in 0..=n {
        let mut changed = false;
        for e in dfg.edges() {
            let w = 1i64 - ii as i64 * e.distance() as i64;
            let cand = t[e.src().index()] + w;
            if cand > t[e.dst().index()] {
                t[e.dst().index()] = cand;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    if !converged {
        return None; // positive cycle: ii below RecMII
    }
    let min = t.iter().copied().min().unwrap_or(0);
    Some(t.into_iter().map(|x| (x - min) as u32).collect())
}

/// The feasible absolute-time window for (re)placing `node` given the
/// *currently placed* neighbours in `mapping`:
///
/// * lower bound: `asap(node)`, and `t_p + 1 − dist·II` for each placed
///   parent `p`,
/// * upper bound: `t_c + dist·II − 1` for each placed child `c`, and
///   `horizon`.
///
/// Returns `None` when the window is empty (the neighbours pin the node
/// into an impossible slot — a rip-up of a neighbour is needed).
pub fn time_window(
    dfg: &Dfg,
    mapping: &Mapping,
    asap: &[u32],
    node: NodeId,
    horizon: u32,
) -> Option<std::ops::RangeInclusive<u32>> {
    let ii = mapping.ii();
    let mut lo = asap[node.index()] as i64;
    let mut hi = horizon as i64;
    for e in dfg.in_edges(node) {
        if let Some((_, t_p)) = mapping.placement(e.src()) {
            lo = lo.max(t_p as i64 + 1 - (e.distance() * ii) as i64);
        }
    }
    for e in dfg.out_edges(node) {
        if let Some((_, t_c)) = mapping.placement(e.dst()) {
            hi = hi.min(t_c as i64 + (e.distance() * ii) as i64 - 1);
        }
    }
    // Self-loops contribute both bounds but are trivially satisfied when
    // dist·II ≥ 1; the formulas above handle them because t_p == t_c == the
    // node's own (absent) placement — i.e. they don't fire for an unplaced
    // node.
    if lo > hi {
        None
    } else {
        Some(lo.max(0) as u32..=hi.max(0) as u32)
    }
}

/// PEs able to execute `op`, in id order.
pub fn candidate_pes(cgra: &Cgra, op: OpKind) -> Vec<PeId> {
    cgra.pes_supporting(op).map(|p| p.id()).collect()
}

/// Iterative modulo scheduling (Rau, MICRO '94 — the paper's citation for
/// MII): assigns every node an absolute time such that
///
/// * all dependence constraints `t_dst ≥ t_src + 1 − dist·II` hold, and
/// * no modulo slot is oversubscribed (at most `#PEs` operations and at
///   most `#memory PEs` memory operations per slot).
///
/// Operations are scheduled in decreasing criticality (height) order at
/// their earliest feasible slot; when a slot range is full, the scheduler
/// force-places and evicts lower-priority conflicting operations, within an
/// iteration budget.
///
/// Returns `None` when `ii < RecMII` or the budget is exhausted — the
/// caller should try the next II.
pub fn modulo_schedule(dfg: &Dfg, cgra: &Cgra, ii: u32) -> Option<Vec<u32>> {
    let n = dfg.num_nodes();
    if n == 0 {
        return Some(Vec::new());
    }
    schedule_asap(dfg, ii)?; // fail fast below RecMII

    // Height-based priority: distance to the furthest sink over intra
    // edges; higher = more critical = scheduled first.
    let order = dfg.topo_order();
    let mut height = vec![0u32; n];
    for &v in order.iter().rev() {
        for e in dfg.out_edges(v) {
            if e.distance() == 0 {
                height[v.index()] = height[v.index()].max(height[e.dst().index()] + 1);
            }
        }
    }

    // Fanout-aware edge latency: a producer with f consumers needs them
    // spread over a radius-r neighbourhood with capacity ≥ f (a mesh holds
    // ~5 PEs at radius 1, ~13 at radius 2), so high-fanout edges get extra
    // schedule slack for routing. Without this, ASAP packing makes wide
    // broadcasts geometrically unplaceable.
    // Memory operations are pinned to the memory columns, so values moving
    // into or out of them typically cross the fabric: give those edges one
    // extra cycle of slack as well.
    let mem_cols = cgra.memory_pes().count() < cgra.num_pes();
    let latency: Vec<u32> = dfg
        .node_ids()
        .map(|u| {
            let fanout_lat = match dfg.children(u).count() {
                0..=3 => 1,
                4..=8 => 2,
                _ => 3,
            };
            let mem_pad = u32::from(
                mem_cols
                    && (dfg.node(u).op().is_memory()
                        || dfg.children(u).any(|c| dfg.node(c).op().is_memory())),
            );
            fanout_lat + mem_pad
        })
        .collect();

    let pes = cgra.num_pes() as u32;
    let mem_pes = cgra.memory_pes().count() as u32;
    let mut total = vec![0u32; ii as usize];
    let mut mem = vec![0u32; ii as usize];
    let mut time: Vec<Option<u32>> = vec![None; n];
    let is_mem: Vec<bool> = dfg.nodes().map(|v| v.op().is_memory()).collect();

    let fits = |slot: usize, is_mem_op: bool, total: &[u32], mem: &[u32]| {
        total[slot] < pes && (!is_mem_op || mem[slot] < mem_pes)
    };

    // Worklist in priority order; evictions push back.
    let mut worklist: Vec<NodeId> = dfg.node_ids().collect();
    worklist.sort_by_key(|v| std::cmp::Reverse(height[v.index()]));
    let mut queue: std::collections::VecDeque<NodeId> = worklist.into();
    let mut budget = 20 * n as u32 + 100;

    while let Some(v) = queue.pop_front() {
        if budget == 0 {
            return None;
        }
        budget -= 1;

        let mut lb = 0i64;
        for e in dfg.in_edges(v) {
            if e.src() == v {
                continue; // self-loop: satisfied whenever dist·II ≥ 1
            }
            if let Some(tp) = time[e.src().index()] {
                // Loop-carried edges already have dist·II cycles of routing
                // slack; only intra-iteration edges need the fanout/memory
                // latency padding.
                let lat = if e.distance() == 0 {
                    latency[e.src().index()] as i64
                } else {
                    1
                };
                lb = lb.max(tp as i64 + lat - (e.distance() * ii) as i64);
            }
        }
        let lb = lb.max(0) as u32;

        // Earliest feasible slot within one II period of the lower bound.
        let chosen = (lb..lb + ii)
            .find(|&t| fits((t % ii) as usize, is_mem[v.index()], &total, &mem))
            .unwrap_or(lb);
        let slot = (chosen % ii) as usize;

        // Evict a resource conflict if the forced slot is full: a memory op
        // blocked on memory capacity must evict a memory op; otherwise any
        // occupant of the slot will do.
        if !fits(slot, is_mem[v.index()], &total, &mem) {
            let need_mem_victim = is_mem[v.index()] && mem[slot] >= mem_pes;
            let victim = dfg
                .node_ids()
                .filter(|u| {
                    time[u.index()].is_some_and(|t| (t % ii) as usize == slot)
                        && (!need_mem_victim || is_mem[u.index()])
                })
                .min_by_key(|u| height[u.index()])?;
            let tv = time[victim.index()].take().expect("victim was scheduled");
            let vslot = (tv % ii) as usize;
            total[vslot] -= 1;
            if is_mem[victim.index()] {
                mem[vslot] -= 1;
            }
            queue.push_back(victim);
        }

        time[v.index()] = Some(chosen);
        total[slot] += 1;
        if is_mem[v.index()] {
            mem[slot] += 1;
        }

        // Evict scheduled successors whose dependence is now violated.
        for e in dfg.out_edges(v) {
            if e.dst() == v {
                continue;
            }
            if let Some(tc) = time[e.dst().index()] {
                let lat = if e.distance() == 0 {
                    latency[v.index()]
                } else {
                    1
                };
                if ((tc + e.distance() * ii) as i64) < (chosen + lat) as i64 {
                    let cslot = (tc % ii) as usize;
                    total[cslot] -= 1;
                    if is_mem[e.dst().index()] {
                        mem[cslot] -= 1;
                    }
                    time[e.dst().index()] = None;
                    queue.push_back(e.dst());
                }
            }
        }
    }

    let times: Vec<u32> = time
        .into_iter()
        .map(|t| t.expect("queue drained"))
        .collect();
    // Final sanity: all dependence constraints hold (with the padded
    // latencies, which imply the architectural ≥ 1 requirement).
    for e in dfg.edges() {
        // Self-loops and loop-carried edges need no padding (dist·II cycles
        // of slack); the architectural ≥ 1 cycle is all that applies.
        let lat = if e.src() == e.dst() || e.distance() > 0 {
            1
        } else {
            latency[e.src().index()] as i64
        };
        let ok = times[e.dst().index()] as i64 + (e.distance() * ii) as i64
            >= times[e.src().index()] as i64 + lat;
        if !ok {
            return None;
        }
    }
    let min = *times.iter().min().expect("non-empty");
    Some(times.into_iter().map(|t| t - min).collect())
}

/// A default scheduling horizon: enough room for the critical path plus
/// slack for routing detours, in absolute cycles.
pub fn default_horizon(dfg: &Dfg, ii: u32) -> u32 {
    dfg.longest_path() + 3 * ii + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;
    use rewire_mrrg::Mrrg;

    fn diamond() -> Dfg {
        let mut g = Dfg::new("d");
        let a = g.add_node("a", OpKind::Load);
        let b = g.add_node("b", OpKind::Add);
        let c = g.add_node("c", OpKind::Mul);
        let d = g.add_node("d", OpKind::Store);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(a, c, 0).unwrap();
        g.add_edge(b, d, 0).unwrap();
        g.add_edge(c, d, 0).unwrap();
        g
    }

    #[test]
    fn asap_matches_plain_asap_without_recurrences() {
        let g = diamond();
        assert_eq!(schedule_asap(&g, 1).unwrap(), g.asap_times());
    }

    #[test]
    fn asap_respects_recurrences() {
        let mut g = Dfg::new("r");
        let phi = g.add_node("phi", OpKind::Phi);
        let a = g.add_node("a", OpKind::Add);
        let b = g.add_node("b", OpKind::Add);
        g.add_edge(phi, a, 0).unwrap();
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, phi, 1).unwrap();
        assert!(schedule_asap(&g, 2).is_none(), "RecMII is 3");
        let t = schedule_asap(&g, 3).unwrap();
        // Constraint t_phi >= t_b + 1 - 3 must hold.
        assert!(t[phi.index()] as i64 >= t[b.index()] as i64 + 1 - 3);
    }

    #[test]
    fn window_narrows_with_placed_neighbours() {
        let cgra = presets::paper_4x4_r4();
        let g = diamond();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&g, &mrrg);
        let asap = schedule_asap(&g, 2).unwrap();
        let a = g.node_by_name("a").unwrap().id();
        let b = g.node_by_name("b").unwrap().id();
        let d = g.node_by_name("d").unwrap().id();

        // Nothing placed: full window.
        let w = time_window(&g, &m, &asap, b, 20).unwrap();
        assert_eq!(*w.start(), asap[b.index()]);
        assert_eq!(*w.end(), 20);

        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p3 = cgra.pe_at((0, 3).into()).unwrap().id();
        m.place(a, p0, 4);
        m.place(d, p3, 7);
        let w = time_window(&g, &m, &asap, b, 20).unwrap();
        assert_eq!(w, 5..=6);
    }

    #[test]
    fn empty_window_is_none() {
        let cgra = presets::paper_4x4_r4();
        let g = diamond();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&g, &mrrg);
        let asap = schedule_asap(&g, 2).unwrap();
        let a = g.node_by_name("a").unwrap().id();
        let b = g.node_by_name("b").unwrap().id();
        let d = g.node_by_name("d").unwrap().id();
        let p0 = cgra.pe_at((0, 0).into()).unwrap().id();
        let p3 = cgra.pe_at((0, 3).into()).unwrap().id();
        m.place(a, p0, 4);
        m.place(d, p3, 5); // b needs t in [5, 4]: impossible
        assert!(time_window(&g, &m, &asap, b, 20).is_none());
    }

    #[test]
    fn memory_candidates_are_restricted() {
        let cgra = presets::paper_4x4_r4();
        assert_eq!(candidate_pes(&cgra, OpKind::Load).len(), 4);
        assert_eq!(candidate_pes(&cgra, OpKind::Add).len(), 16);
    }

    #[test]
    fn horizon_scales_with_depth_and_ii() {
        let g = diamond();
        assert!(default_horizon(&g, 4) > default_horizon(&g, 2));
    }
}
