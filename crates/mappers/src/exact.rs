//! Exact modulo mapping via a CNF encoding of the MRRG — the fifth
//! [`IiAttempt`], and the only one whose *failures* are proofs.
//!
//! Every heuristic in the workspace reports failures as upper bounds
//! ("didn't find a mapping at this II"). This mapper lowers the joint
//! placement-and-routing problem at one II to propositional SAT and asks
//! the vendored CDCL core ([`rewire_sat`]); an UNSAT answer is a
//! machine-checked proof that *no* mapping exists at that II within the
//! shared schedule horizon, surfaced as
//! [`AttemptVerdict::InfeasibleAtII`]. A SAT answer decodes into a
//! [`Mapping`] that passes [`Mapping::validate`], and when every lower II
//! since MII was refuted in the same sweep the mapped II carries an
//! [`AttemptVerdict::Optimal`] certificate.
//!
//! # The encoding
//!
//! Given `(dfg, cgra, ii)` and the horizon `H = default_horizon(dfg, ii)`
//! (the same bound the heuristic mappers schedule within, so UNSAT here
//! refutes anything they could produce):
//!
//! * **Placement** — one boolean `x[v,p,t]` per node, candidate PE, and
//!   time in the node's ASAP/ALAP window; exactly one per node. Per
//!   `(PE, slot)`, at most one placement — the FU cell exclusivity of
//!   [`Occupancy`](rewire_mrrg::Occupancy).
//! * **Routing** — per edge, location variables `At[e,c,ℓ]` ("the value
//!   is at wire/register ℓ at absolute cycle `c`") plus per-cycle
//!   resource-use variables for links and registers, mirroring the layered
//!   router's transition relation exactly: a link hop is legal from any
//!   carrier, a register cell is enterable from any carrier on its PE, and
//!   the final *delivery hop* may cross one link into the consumer during
//!   the consumption cycle itself. Support clauses chain strictly backward
//!   in time and ground at the producer's placement, so circular
//!   self-support is impossible by construction.
//! * **Exclusivity** — per-signal usage variables aggregate the edge-level
//!   uses (edges of one producer share cells at equal phases, exactly like
//!   [`Occupancy`](rewire_mrrg::Occupancy) refcounting), and a sequential
//!   at-most-one ladder per `(resource, slot)` enforces modulo
//!   exclusivity. This also subsumes the router's register-run bound: a
//!   residency longer than II would claim some modulo cell twice.
//!
//! # Determinism and budget contract
//!
//! The encoder iterates every collection in fixed index order and the CDCL
//! core is deterministic, so the same `(dfg, cgra, ii)` always yields the
//! same verdict, the same model, and the same work counters. The primary
//! budget is a deterministic per-II conflict cap; the engine's wall-clock
//! deadline is polled as a secondary stop. Both truncations yield
//! [`AttemptVerdict::Unknown`] — never a flipped verdict.

use crate::engine::{
    AttemptCtx, AttemptOutcome, AttemptVerdict, Emitter, EventSink, GiveUpReason, IiAttempt,
    IiSearch, MapEvent, RunMeta,
};
use crate::schedule::{candidate_pes, default_horizon, schedule_asap};
use crate::{MapLimits, MapOutcome, MapStats, Mapper, Mapping};
use rewire_arch::{Cgra, LinkId, PeId};
use rewire_dfg::Dfg;
use rewire_mrrg::{Mrrg, Resource, Route};
use rewire_obs as obs;
use rewire_sat::{Lit, SolveResult, Solver, Var};
use std::collections::BTreeMap;
use std::time::Instant;

/// Instances with more DFG nodes are refused outright (CNF size grows with
/// nodes × windows × fabric). The default admits the whole bundled kernel
/// suite (29–48 nodes); the conflict budget and the variable-count valve
/// keep the hard ones truncating to `Unknown` instead of hanging.
const DEFAULT_MAX_NODES: usize = 48;
/// Instances on fabrics with more PEs are refused outright.
const DEFAULT_MAX_PES: usize = 40;
/// Deterministic per-II conflict budget: the primary truncation knob.
const DEFAULT_CONFLICT_BUDGET: u64 = 200_000;
/// Per-II safety valve: an encoding estimated beyond this many variables
/// reports [`AttemptVerdict::Unknown`] instead of being built.
const MAX_ENCODED_VARS: usize = 2_000_000;

/// The exact SAT-backed mapper. Produces machine-checked
/// [`AttemptVerdict`]s per II; see the module docs for the encoding and
/// the determinism/budget contract.
///
/// # Examples
///
/// ```
/// use rewire_arch::{presets, OpKind};
/// use rewire_dfg::Dfg;
/// use rewire_mappers::{ExactSatMapper, MapLimits, Mapper};
///
/// let cgra = presets::paper_4x4_r4();
/// let mut dfg = Dfg::new("pair");
/// let a = dfg.add_node("a", OpKind::Add);
/// let b = dfg.add_node("b", OpKind::Add);
/// dfg.add_edge(a, b, 0)?;
///
/// let out = ExactSatMapper::new().map(&dfg, &cgra, &MapLimits::fast());
/// assert_eq!(out.stats.achieved_ii, Some(1));
/// assert!(out.stats.proven_optimal(), "II 1 carries an optimality proof");
/// # Ok::<(), rewire_dfg::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ExactSatMapper {
    max_nodes: usize,
    max_pes: usize,
    conflict_budget: u64,
}

impl Default for ExactSatMapper {
    fn default() -> Self {
        Self {
            max_nodes: DEFAULT_MAX_NODES,
            max_pes: DEFAULT_MAX_PES,
            conflict_budget: DEFAULT_CONFLICT_BUDGET,
        }
    }
}

impl ExactSatMapper {
    /// Creates a mapper with the default size guards and conflict budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the node-count refusal guard.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Overrides the PE-count refusal guard.
    pub fn with_max_pes(mut self, max_pes: usize) -> Self {
        self.max_pes = max_pes;
        self
    }

    /// Overrides the deterministic per-II conflict budget.
    pub fn with_conflict_budget(mut self, conflicts: u64) -> Self {
        self.conflict_budget = conflicts;
        self
    }

    /// The schedule horizon the encoder proves within at `ii` — shared
    /// with the heuristic mappers, so an [`AttemptVerdict::InfeasibleAtII`]
    /// refutes any mapping whose latest operation fits under this bound.
    /// Oracles comparing a heuristic success against an exact UNSAT must
    /// check the heuristic schedule fits (see
    /// [`Mapping::schedule_length`]).
    pub fn proof_horizon(dfg: &Dfg, ii: u32) -> u32 {
        default_horizon(dfg, ii)
    }

    /// Solves one II to a verdict. The workhorse behind [`ExactAttempt`].
    fn solve_ii(&self, dfg: &Dfg, cgra: &Cgra, ii: u32, deadline: Instant) -> IiResolution {
        if Instant::now() >= deadline {
            obs::counter("exact.unknown").incr();
            return IiResolution::Unknown { conflicts: 0 };
        }
        let horizon = Self::proof_horizon(dfg, ii);
        let built = {
            let _span = obs::span("exact.encode");
            Encoder::build(dfg, cgra, ii, horizon)
        };
        let mut enc = match built {
            Ok(enc) => enc,
            Err(EncodeError::Infeasible) => {
                obs::counter("exact.unsat").incr();
                return IiResolution::Infeasible { conflicts: 0 };
            }
            Err(EncodeError::TooLarge) => {
                obs::counter("exact.too_large").incr();
                return IiResolution::Unknown { conflicts: 0 };
            }
        };
        obs::counter("exact.vars").add(enc.solver.num_vars() as u64);
        obs::counter("exact.clauses").add(enc.solver.num_clauses() as u64);
        let verdict = {
            let _span = obs::span("exact.solve");
            let mut stop = || Instant::now() >= deadline;
            enc.solver.solve_limited(self.conflict_budget, &mut stop)
        };
        let stats = enc.solver.stats();
        obs::counter("sat.decisions").add(stats.decisions);
        obs::counter("sat.conflicts").add(stats.conflicts);
        obs::counter("sat.propagations").add(stats.propagations);
        obs::counter("sat.restarts").add(stats.restarts);
        match verdict {
            SolveResult::Sat => match enc.decode() {
                Some(mapping) => {
                    obs::counter("exact.sat").incr();
                    IiResolution::Mapped {
                        mapping: Box::new(mapping),
                        conflicts: stats.conflicts,
                    }
                }
                None => {
                    // A decode failure means the model and the MRRG
                    // semantics disagree — an encoder bug. Soundness is
                    // preserved by never reporting the broken mapping.
                    obs::counter("exact.decode_invalid").incr();
                    IiResolution::Unknown {
                        conflicts: stats.conflicts,
                    }
                }
            },
            SolveResult::Unsat => {
                obs::counter("exact.unsat").incr();
                IiResolution::Infeasible {
                    conflicts: stats.conflicts,
                }
            }
            SolveResult::Unknown => {
                obs::counter("exact.unknown").incr();
                IiResolution::Unknown {
                    conflicts: stats.conflicts,
                }
            }
        }
    }
}

/// What one II resolved to, before verdict labelling.
enum IiResolution {
    Mapped {
        mapping: Box<Mapping>,
        conflicts: u64,
    },
    Infeasible {
        conflicts: u64,
    },
    Unknown {
        conflicts: u64,
    },
}

/// The exact backend driven by the shared engine. Stateful across the II
/// sweep: a SAT answer is labelled [`AttemptVerdict::Optimal`] only when
/// every lower II since MII was proven UNSAT (no budget truncation seen).
pub struct ExactAttempt<'m> {
    mapper: &'m ExactSatMapper,
    saw_unknown: bool,
}

impl<'m> ExactAttempt<'m> {
    /// Creates a fresh attempt for one engine-driven II sweep.
    pub fn new(mapper: &'m ExactSatMapper) -> Self {
        Self {
            mapper,
            saw_unknown: false,
        }
    }
}

impl IiAttempt for ExactAttempt<'_> {
    fn attempt(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        ctx: &AttemptCtx<'_>,
        _events: &mut Emitter<'_>,
    ) -> AttemptOutcome {
        // Solver conflicts stand in for the iteration counter: the unit of
        // search work an exact attempt performs per II.
        match self.mapper.solve_ii(dfg, cgra, ctx.ii, ctx.deadline) {
            IiResolution::Mapped { mapping, conflicts } => {
                let outcome = AttemptOutcome::mapped(*mapping, conflicts);
                if self.saw_unknown {
                    // Some lower II was truncated: the mapping stands but
                    // optimality is unproven, so no verdict is attached.
                    outcome
                } else {
                    outcome.with_verdict(AttemptVerdict::Optimal)
                }
            }
            IiResolution::Infeasible { conflicts } => {
                AttemptOutcome::failed(conflicts, 0).with_verdict(AttemptVerdict::InfeasibleAtII)
            }
            IiResolution::Unknown { conflicts } => {
                self.saw_unknown = true;
                AttemptOutcome::failed(conflicts, 0)
                    .with_verdict(AttemptVerdict::Unknown { conflicts })
            }
        }
    }
}

impl Mapper for ExactSatMapper {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn map_with_events(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
        events: &mut dyn EventSink,
    ) -> MapOutcome {
        // Size guard in front of the engine, mirroring the exhaustive
        // oracle: refuse instances whose CNF would dwarf the budget.
        if dfg.num_nodes() > self.max_nodes || cgra.num_pes() > self.max_pes {
            obs::counter("exact.refused").incr();
            let start = Instant::now();
            let stats = MapStats {
                mapper: self.name().to_string(),
                kernel: dfg.name().to_string(),
                elapsed: start.elapsed(),
                ..MapStats::default()
            };
            events.emit(
                &RunMeta {
                    mapper: self.name(),
                    kernel: dfg.name(),
                    seed: limits.seed,
                },
                &MapEvent::GaveUp {
                    reason: GiveUpReason::Refused,
                    iis_explored: 0,
                    elapsed_us: stats.elapsed.as_micros(),
                },
            );
            return MapOutcome {
                mapping: None,
                stats,
            };
        }
        IiSearch::new(self.name()).run(dfg, cgra, limits, &mut ExactAttempt::new(self), events)
    }
}

/// Why an encoding was not built.
enum EncodeError {
    /// Proven infeasible before any clause: no schedule at this II, an
    /// empty ASAP/ALAP window, or an op no PE supports.
    Infeasible,
    /// The size estimate blew past [`MAX_ENCODED_VARS`].
    TooLarge,
}

/// Static fabric tables the encoder indexes by dense position.
struct Fabric {
    num_pes: usize,
    regs: usize,
    /// Locations per PE: wire + one per register.
    stride: usize,
    num_locs: usize,
    /// `(id, src PE index, dst PE index)` in [`Cgra::links`] order.
    links: Vec<(LinkId, usize, usize)>,
    links_into: Vec<Vec<usize>>,
    /// All-pairs hop distance over the NoC (`u32::MAX` = unreachable).
    hops: Vec<Vec<u32>>,
}

impl Fabric {
    fn build(cgra: &Cgra) -> Self {
        let num_pes = cgra.num_pes();
        let regs = cgra.regs_per_pe() as usize;
        let mut links = Vec::new();
        let mut links_into = vec![Vec::new(); num_pes];
        for l in cgra.links() {
            let li = links.len();
            links.push((l.id(), l.src().index(), l.dst().index()));
            links_into[l.dst().index()].push(li);
        }
        let mut adj = vec![Vec::new(); num_pes];
        for &(_, s, d) in &links {
            adj[s].push(d);
        }
        let mut hops = vec![vec![u32::MAX; num_pes]; num_pes];
        for (s, row) in hops.iter_mut().enumerate() {
            row[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(p) = queue.pop_front() {
                for &q in &adj[p] {
                    if row[q] == u32::MAX {
                        row[q] = row[p] + 1;
                        queue.push_back(q);
                    }
                }
            }
        }
        Self {
            num_pes,
            regs,
            stride: 1 + regs,
            num_locs: num_pes * (1 + regs),
            links,
            links_into,
            hops,
        }
    }

    /// Dense location index: wire of `p`, or register `r` of `p`.
    fn wire(&self, p: usize) -> usize {
        p * self.stride
    }

    fn reg(&self, p: usize, r: usize) -> usize {
        p * self.stride + 1 + r
    }

    /// Global routing-entity index used for modulo-exclusivity buckets.
    fn link_entity(&self, li: usize) -> u32 {
        li as u32
    }

    fn reg_entity(&self, p: usize, r: usize) -> u32 {
        (self.links.len() + p * self.regs + r) as u32
    }
}

/// Per-edge variable tables over the edge's absolute-cycle range.
struct EdgeTables {
    /// Earliest cycle the value can exist: `asap(src) + 1`.
    lo: u32,
    /// `At[c,ℓ]`: value at location ℓ at cycle c (dense over the range).
    at: Vec<Option<Var>>,
    /// `LU[c,L]`: edge consumes link L during cycle c (step or delivery).
    lu: Vec<Option<Var>>,
    /// `RU[c,(p,r)]`: edge consumes register r of PE p during cycle c.
    ru: Vec<Option<Var>>,
}

impl EdgeTables {
    fn empty() -> Self {
        Self {
            lo: 1,
            at: Vec::new(),
            lu: Vec::new(),
            ru: Vec::new(),
        }
    }
}

/// The CNF builder + model decoder for one `(dfg, cgra, ii)` instance.
struct Encoder<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    fab: Fabric,
    ii: u32,
    asap: Vec<u32>,
    alap: Vec<u32>,
    /// Candidate PE indices per node, in PE-id order.
    cands: Vec<Vec<usize>>,
    solver: Solver,
    /// `false` once a root-level conflict is known; clause adds stop.
    consistent: bool,
    /// Per node: `(pe index, time, var)` in deterministic order.
    place: Vec<Vec<(usize, u32, Var)>>,
    /// Per node: time-indicator vars over the window (for timing clauses).
    time_ind: Vec<Vec<Var>>,
    edges: Vec<EdgeTables>,
    /// `(producer node, cycle, entity) ->` aggregated usage var.
    usage: BTreeMap<(u32, u32, u32), Var>,
    /// `(entity, slot) ->` usage lits for the modulo exclusivity ladder.
    route_buckets: BTreeMap<(u32, u32), Vec<Lit>>,
    /// `(pe, slot) ->` placement lits for FU exclusivity.
    fu_buckets: BTreeMap<(u32, u32), Vec<Lit>>,
    out_degree: Vec<usize>,
}

impl<'a> Encoder<'a> {
    fn build(dfg: &'a Dfg, cgra: &'a Cgra, ii: u32, horizon: u32) -> Result<Self, EncodeError> {
        let Some(asap) = schedule_asap(dfg, ii) else {
            // ii < RecMII: the dependence system has a positive cycle, so
            // no schedule exists at any horizon. A genuine proof.
            return Err(EncodeError::Infeasible);
        };
        let alap = schedule_alap(dfg, ii, horizon).ok_or(EncodeError::Infeasible)?;
        for v in dfg.node_ids() {
            if i64::from(asap[v.index()]) > alap[v.index()] {
                return Err(EncodeError::Infeasible);
            }
        }
        let alap: Vec<u32> = alap.into_iter().map(|t| t as u32).collect();
        let fab = Fabric::build(cgra);

        let mut cands = Vec::with_capacity(dfg.num_nodes());
        for v in dfg.nodes() {
            let pes: Vec<usize> = candidate_pes(cgra, v.op())
                .into_iter()
                .map(|p| p.index())
                .collect();
            if pes.is_empty() {
                return Err(EncodeError::Infeasible);
            }
            cands.push(pes);
        }

        // Size estimate before allocating anything var-shaped.
        let mut estimate: usize = 0;
        for e in dfg.edges() {
            let lo = asap[e.src().index()] + 1;
            let hi = alap[e.dst().index()] + e.distance() * ii;
            if hi < lo {
                continue;
            }
            let span = (hi - lo + 1) as usize;
            estimate = estimate
                .saturating_add(span * (fab.num_locs + fab.links.len() + fab.num_pes * fab.regs));
        }
        if estimate > MAX_ENCODED_VARS {
            return Err(EncodeError::TooLarge);
        }

        let mut out_degree = vec![0usize; dfg.num_nodes()];
        for e in dfg.edges() {
            out_degree[e.src().index()] += 1;
        }

        let mut enc = Self {
            dfg,
            cgra,
            fab,
            ii,
            asap,
            alap,
            cands,
            solver: Solver::new(),
            consistent: true,
            place: Vec::new(),
            time_ind: Vec::new(),
            edges: Vec::new(),
            usage: BTreeMap::new(),
            route_buckets: BTreeMap::new(),
            fu_buckets: BTreeMap::new(),
            out_degree,
        };
        enc.encode_placement();
        enc.encode_timing();
        for e in dfg.edges() {
            enc.encode_edge(e.id().index());
        }
        enc.encode_exclusivity();
        Ok(enc)
    }

    fn clause(&mut self, lits: &[Lit]) {
        if self.consistent {
            self.consistent = self.solver.add_clause(lits);
        }
    }

    /// At-most-one over `lits`: pairwise for short lists, a sequential
    /// (Sinz) ladder otherwise.
    fn at_most_one(&mut self, lits: &[Lit]) {
        if lits.len() <= 1 {
            return;
        }
        if lits.len() <= 5 {
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    self.clause(&[!lits[i], !lits[j]]);
                }
            }
            return;
        }
        let mut prev = self.solver.new_var();
        self.clause(&[!lits[0], Lit::positive(prev)]);
        for (i, &l) in lits.iter().enumerate().skip(1) {
            if i + 1 == lits.len() {
                self.clause(&[!Lit::positive(prev), !l]);
                break;
            }
            let s = self.solver.new_var();
            self.clause(&[!l, Lit::positive(s)]);
            self.clause(&[!Lit::positive(prev), Lit::positive(s)]);
            self.clause(&[!Lit::positive(prev), !l]);
            prev = s;
        }
    }

    /// Placement one-hots, FU exclusivity buckets, and time indicators.
    fn encode_placement(&mut self) {
        for v in self.dfg.node_ids() {
            let vi = v.index();
            let (lo, hi) = (self.asap[vi], self.alap[vi]);
            let mut xs = Vec::new();
            let mut tvars = Vec::new();
            for _ in lo..=hi {
                tvars.push(self.solver.new_var());
            }
            for &p in &self.cands[vi].clone() {
                for t in lo..=hi {
                    let x = self.solver.new_var();
                    xs.push((p, t, x));
                    // x → T: time indicators back the pairwise timing
                    // clauses without a quadratic blowup over PEs.
                    let t_ind = tvars[(t - lo) as usize];
                    self.clause(&[Lit::negative(x), Lit::positive(t_ind)]);
                    self.fu_buckets
                        .entry((p as u32, t % self.ii))
                        .or_default()
                        .push(Lit::positive(x));
                }
            }
            let alo: Vec<Lit> = xs.iter().map(|&(_, _, x)| Lit::positive(x)).collect();
            self.clause(&alo);
            self.at_most_one(&alo);
            self.place.push(xs);
            self.time_ind.push(tvars);
        }
    }

    /// Pairwise incompatibility for time pairs violating
    /// `t_dst + dist·II ≥ t_src + 1` — redundant with the support chain
    /// but a large propagation win for UNSAT proofs.
    fn encode_timing(&mut self) {
        for e in self.dfg.edges() {
            let (u, v, dist) = (e.src().index(), e.dst().index(), e.distance());
            if u == v {
                // A self-edge constrains only `dist·II ≥ 1`, which holds
                // whenever the ASAP schedule exists.
                continue;
            }
            let mut clauses = Vec::new();
            for tu in self.asap[u]..=self.alap[u] {
                for tv in self.asap[v]..=self.alap[v] {
                    if i64::from(tv) + i64::from(dist * self.ii) < i64::from(tu) + 1 {
                        let lu = self.time_ind[u][(tu - self.asap[u]) as usize];
                        let lv = self.time_ind[v][(tv - self.asap[v]) as usize];
                        clauses.push([Lit::negative(lu), Lit::negative(lv)]);
                    }
                }
            }
            for c in clauses {
                self.clause(&c);
            }
        }
    }

    /// The aggregated per-signal usage literal for `(producer, cycle,
    /// entity)`, creating the var (and registering it in the exclusivity
    /// bucket) on first use. Producers with a single out-edge use their
    /// edge-level var directly — the caller handles that fast path.
    fn usage_lit(&mut self, producer: u32, cycle: u32, entity: u32) -> Lit {
        if let Some(&u) = self.usage.get(&(producer, cycle, entity)) {
            return Lit::positive(u);
        }
        let u = self.solver.new_var();
        self.usage.insert((producer, cycle, entity), u);
        self.route_buckets
            .entry((entity, cycle % self.ii))
            .or_default()
            .push(Lit::positive(u));
        Lit::positive(u)
    }

    /// Registers one edge-level resource use in the exclusivity machinery.
    fn register_use(&mut self, producer: u32, cycle: u32, entity: u32, edge_var: Var) {
        if self.out_degree[producer as usize] == 1 {
            // Sole edge of this signal: the edge var *is* the usage var.
            self.route_buckets
                .entry((entity, cycle % self.ii))
                .or_default()
                .push(Lit::positive(edge_var));
        } else {
            let u = self.usage_lit(producer, cycle, entity);
            self.clause(&[Lit::negative(edge_var), u]);
        }
    }

    /// The ground literal for `At[e,c,Wire(p)]`: the producer departs from
    /// `p` at cycle `c` (i.e. is placed there at `c − 1`).
    fn ground_var(&self, u: usize, p: usize, c: u32) -> Option<Var> {
        if c == 0 {
            return None;
        }
        let t = c - 1;
        if t < self.asap[u] || t > self.alap[u] {
            return None;
        }
        self.place[u]
            .iter()
            .find(|&&(pp, tt, _)| pp == p && tt == t)
            .map(|&(_, _, x)| x)
    }

    /// Encodes one edge: location/use variables with reachability pruning,
    /// backward-chained support clauses, usage registration, and the
    /// arrival clause per consumer placement.
    fn encode_edge(&mut self, ei: usize) {
        let e = self.dfg.edge(rewire_dfg::EdgeId::new(ei as u32));
        let (u, v, dist) = (e.src().index(), e.dst().index(), e.distance());
        let lo = self.asap[u] + 1;
        let hi = self.alap[v] + dist * self.ii;
        if hi < lo {
            // Cannot happen while both windows are nonempty (the ASAP
            // schedule itself satisfies every edge), but keep it total.
            self.edges.push(EdgeTables::empty());
            return;
        }
        let span = (hi - lo + 1) as usize;
        let num_locs = self.fab.num_locs;
        let num_links = self.fab.links.len();
        let regslots = self.fab.num_pes * self.fab.regs;
        let mut tab = EdgeTables {
            lo,
            at: vec![None; span * num_locs],
            lu: vec![None; span * num_links],
            ru: vec![None; span * regslots],
        };

        // Admissible hop bounds, exactly the layered router's pruning
        // argument: a location is live at cycle `c` only if reachable from
        // some producer candidate within `c − lo` hops and within
        // `(hi − c) + 1` hops of some consumer candidate (the `+1` is the
        // delivery hop).
        let hops_from: Vec<u32> = (0..self.fab.num_pes)
            .map(|p| {
                self.cands[u]
                    .iter()
                    .map(|&s| self.fab.hops[s][p])
                    .min()
                    .unwrap_or(u32::MAX)
            })
            .collect();
        let hops_to: Vec<u32> = (0..self.fab.num_pes)
            .map(|p| {
                self.cands[v]
                    .iter()
                    .map(|&q| self.fab.hops[p][q])
                    .min()
                    .unwrap_or(u32::MAX)
            })
            .collect();
        let reach = |p: usize, c: u32| -> bool {
            c >= lo
                && c <= hi
                && hops_from[p] != u32::MAX
                && u64::from(hops_from[p]) <= u64::from(c - lo)
                && hops_to[p] != u32::MAX
                && u64::from(hops_to[p]) <= u64::from(hi - c) + 1
        };
        // Cycles at which this edge can arrive, for delivery-hop pruning.
        let mut arrival = vec![false; span];
        for t in self.asap[v]..=self.alap[v] {
            let a = t + dist * self.ii;
            if a >= lo && a <= hi {
                arrival[(a - lo) as usize] = true;
            }
        }
        let cand_v = {
            let mut set = vec![false; self.fab.num_pes];
            for &q in &self.cands[v] {
                set[q] = true;
            }
            set
        };

        let idx = |c: u32, unit: usize, width: usize| (c - lo) as usize * width + unit;
        for c in lo..=hi {
            // Location variables and their support clauses.
            for p in 0..self.fab.num_pes {
                if !reach(p, c) {
                    continue;
                }
                // Wire: grounded at departure or fed by a link hop.
                let ground = self.ground_var(u, p, c);
                let mut support: Vec<Lit> = Vec::new();
                if let Some(x) = ground {
                    support.push(Lit::positive(x));
                }
                if c > lo {
                    for &li in &self.fab.links_into[p] {
                        if let Some(lv) = tab.lu[idx(c - 1, li, num_links)] {
                            support.push(Lit::positive(lv));
                        }
                    }
                }
                if !support.is_empty() {
                    let at = self.solver.new_var();
                    tab.at[idx(c, self.fab.wire(p), num_locs)] = Some(at);
                    let mut cl = vec![Lit::negative(at)];
                    cl.extend(support);
                    self.clause(&cl);
                }
                // Registers: fed only by a register use one cycle earlier.
                for r in 0..self.fab.regs {
                    if c == lo {
                        continue;
                    }
                    if let Some(rv) = tab.ru[idx(c - 1, p * self.fab.regs + r, regslots)] {
                        let at = self.solver.new_var();
                        tab.at[idx(c, self.fab.reg(p, r), num_locs)] = Some(at);
                        self.clause(&[Lit::negative(at), Lit::positive(rv)]);
                    }
                }
            }
            // Link-use variables at cycle c: need a live carrier at the
            // source, and either a live step target next cycle or a
            // possible delivery into a consumer candidate this cycle.
            for li in 0..num_links {
                let (_, s, d) = self.fab.links[li];
                let carriers: Vec<Lit> = (0..self.fab.stride)
                    .filter_map(|off| tab.at[idx(c, s * self.fab.stride + off, num_locs)])
                    .map(Lit::positive)
                    .collect();
                if carriers.is_empty() {
                    continue;
                }
                let step_ok = c < hi && reach(d, c + 1);
                let deliv_ok = arrival[(c - lo) as usize] && cand_v[d];
                if !step_ok && !deliv_ok {
                    continue;
                }
                let lv = self.solver.new_var();
                tab.lu[idx(c, li, num_links)] = Some(lv);
                let mut cl = vec![Lit::negative(lv)];
                cl.extend(carriers);
                self.clause(&cl);
                self.register_use(u as u32, c, self.fab.link_entity(li), lv);
            }
            // Register-use variables at cycle c (entering, holding, or
            // transferring — all uniformly "some carrier on this PE").
            if c < hi {
                for p in 0..self.fab.num_pes {
                    if !reach(p, c + 1) {
                        continue;
                    }
                    let carriers: Vec<Lit> = (0..self.fab.stride)
                        .filter_map(|off| tab.at[idx(c, p * self.fab.stride + off, num_locs)])
                        .map(Lit::positive)
                        .collect();
                    if carriers.is_empty() {
                        continue;
                    }
                    for r in 0..self.fab.regs {
                        let rv = self.solver.new_var();
                        tab.ru[idx(c, p * self.fab.regs + r, regslots)] = Some(rv);
                        let mut cl = vec![Lit::negative(rv)];
                        cl.extend(carriers.iter().copied());
                        self.clause(&cl);
                        self.register_use(u as u32, c, self.fab.reg_entity(p, r), rv);
                    }
                }
            }
        }

        // Arrival clause per consumer placement var: the value must sit at
        // the consumer (any carrier) at the arrival cycle, or cross one
        // delivery link into it during that cycle.
        for &(q, t, x) in &self.place[v].clone() {
            let a = t + dist * self.ii;
            let mut cl = vec![Lit::negative(x)];
            if a >= lo && a <= hi {
                for off in 0..self.fab.stride {
                    if let Some(at) = tab.at[idx(a, q * self.fab.stride + off, num_locs)] {
                        cl.push(Lit::positive(at));
                    }
                }
                for &li in &self.fab.links_into[q] {
                    if let Some(lv) = tab.lu[idx(a, li, num_links)] {
                        cl.push(Lit::positive(lv));
                    }
                }
            }
            self.clause(&cl);
        }
        self.edges.push(tab);
    }

    /// Emits the modulo-exclusivity ladders: at most one `(signal, phase)`
    /// key per routing cell and per FU cell — [`Occupancy`]'s overuse rule.
    ///
    /// [`Occupancy`]: rewire_mrrg::Occupancy
    fn encode_exclusivity(&mut self) {
        let route_buckets: Vec<Vec<Lit>> = self.route_buckets.values().cloned().collect();
        for lits in route_buckets {
            self.at_most_one(&lits);
        }
        let fu_buckets: Vec<Vec<Lit>> = self.fu_buckets.values().cloned().collect();
        for lits in fu_buckets {
            self.at_most_one(&lits);
        }
    }

    fn lit_true(&self, var: Option<Var>) -> bool {
        var.is_some_and(|v| self.solver.value(v) == Some(true))
    }

    /// Decodes the satisfying assignment into a complete [`Mapping`],
    /// re-validating it against the real occupancy semantics. `None` means
    /// the model does not decode cleanly (an encoder bug, never silent).
    fn decode(&self) -> Option<Mapping> {
        let mrrg = Mrrg::new(self.cgra, self.ii);
        let mut mapping = Mapping::new(self.dfg, &mrrg);
        for v in self.dfg.node_ids() {
            let &(p, t, _) = self.place[v.index()]
                .iter()
                .find(|&&(_, _, x)| self.solver.value(x) == Some(true))?;
            mapping.place(v, PeId::new(p as u32), t);
        }
        for e in self.dfg.edges() {
            let req = mapping.request_for(self.dfg, e.id())?;
            let (d, a) = (req.depart_cycle, req.arrive_cycle);
            if a < d {
                return None;
            }
            let len = (a - d) as usize;
            if len == 0 && req.src_pe == req.dst_pe {
                mapping.set_route(e.id(), Route::from_parts(req, Vec::new(), 0.0));
                continue;
            }
            let resources = self.walk_route(e.id().index(), e.src().index(), d, a, req.dst_pe)?;
            if resources.len() != len && resources.len() != len + 1 {
                return None;
            }
            let cost = resources
                .iter()
                .map(|r| if r.is_reg() { 0.95 } else { 1.0 })
                .sum();
            mapping.set_route(e.id(), Route::from_parts(req, resources, cost));
        }
        if mapping.validate(self.dfg, self.cgra).is_err() {
            return None;
        }
        Some(mapping)
    }

    /// Backward walk from the arrival to the departure ground, collecting
    /// the consumed cells in forward order.
    fn walk_route(&self, ei: usize, u: usize, d: u32, a: u32, dst: PeId) -> Option<Vec<Resource>> {
        let tab = &self.edges[ei];
        let num_locs = self.fab.num_locs;
        let num_links = self.fab.links.len();
        let regslots = self.fab.num_pes * self.fab.regs;
        let idx = |c: u32, unit: usize, width: usize| (c - tab.lo) as usize * width + unit;
        let live_loc_at = |c: u32, p: usize| -> Option<usize> {
            (0..self.fab.stride)
                .map(|off| p * self.fab.stride + off)
                .find(|&loc| self.lit_true(tab.at[idx(c, loc, num_locs)]))
        };
        let slot = |c: u32| c % self.ii;

        let mut rev: Vec<Resource> = Vec::new();
        let q = dst.index();
        // Arrival: local carrier at the consumer, or one delivery hop.
        let mut loc = match live_loc_at(a, q) {
            Some(loc) => loc,
            None => {
                let &li = self.fab.links_into[q]
                    .iter()
                    .find(|&&li| self.lit_true(tab.lu[idx(a, li, num_links)]))?;
                let (id, s, _) = self.fab.links[li];
                rev.push(Resource::Link {
                    link: id,
                    slot: slot(a),
                });
                live_loc_at(a, s)?
            }
        };
        let mut c = a;
        loop {
            let p = loc / self.fab.stride;
            let off = loc % self.fab.stride;
            if off == 0 {
                // Wire: grounded at the departure placement?
                if self.lit_true(self.ground_var(u, p, c)) {
                    break;
                }
                if c <= tab.lo {
                    return None;
                }
                let &li = self.fab.links_into[p]
                    .iter()
                    .find(|&&li| self.lit_true(tab.lu[idx(c - 1, li, num_links)]))?;
                let (id, s, _) = self.fab.links[li];
                rev.push(Resource::Link {
                    link: id,
                    slot: slot(c - 1),
                });
                loc = live_loc_at(c - 1, s)?;
            } else {
                let r = off - 1;
                if c <= tab.lo
                    || !self.lit_true(tab.ru[idx(c - 1, p * self.fab.regs + r, regslots)])
                {
                    return None;
                }
                rev.push(Resource::Reg {
                    pe: PeId::new(p as u32),
                    reg: r as u8,
                    slot: slot(c - 1),
                });
                loc = live_loc_at(c - 1, p)?;
            }
            c -= 1;
        }
        if c != d {
            return None;
        }
        rev.reverse();
        Some(rev)
    }
}

/// Modulo-constrained ALAP: the latest time of every node such that all
/// dependence constraints hold with every node at or below `horizon`.
/// Entries may go negative when the horizon is too tight — the caller
/// compares against ASAP. `None` only on non-convergence (cannot happen
/// when the ASAP schedule exists).
fn schedule_alap(dfg: &Dfg, ii: u32, horizon: u32) -> Option<Vec<i64>> {
    let n = dfg.num_nodes();
    let mut t = vec![i64::from(horizon); n];
    for _ in 0..=n {
        let mut changed = false;
        for e in dfg.edges() {
            let bound = t[e.dst().index()] - 1 + i64::from(e.distance() * ii);
            if t[e.src().index()] > bound {
                t[e.src().index()] = bound;
                changed = true;
            }
        }
        if !changed {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Silent;
    use rewire_arch::{presets, CgraBuilder, OpKind};

    fn chain(n: usize) -> Dfg {
        let mut g = Dfg::new("chain");
        let mut prev = g.add_node("n0", OpKind::Add);
        for i in 1..n {
            let v = g.add_node(format!("n{i}"), OpKind::Add);
            g.add_edge(prev, v, 0).unwrap();
            prev = v;
        }
        g
    }

    /// A hub with two leaves: three connected nodes, so on a fabric whose
    /// islands hold only two PEs each the star cannot map at II 1 (three
    /// FU slots are needed inside one island), while II 2 offers four
    /// slots per island.
    fn star3() -> Dfg {
        let mut g = Dfg::new("star3");
        let hub = g.add_node("hub", OpKind::Add);
        for i in 0..2 {
            let leaf = g.add_node(format!("l{i}"), OpKind::Add);
            g.add_edge(hub, leaf, 0).unwrap();
        }
        g
    }

    fn island_fabric() -> Cgra {
        // Rows 0 and 1 form two disconnected two-PE islands.
        CgraBuilder::new(2, 2).cut_row(1).build().unwrap()
    }

    #[test]
    fn chain_is_proven_optimal_at_ii_1() {
        let cgra = presets::paper_4x4_r4();
        let dfg = chain(4);
        let out = ExactSatMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert_eq!(out.stats.achieved_ii, Some(1));
        assert!(out.stats.proven_optimal());
        assert_eq!(out.stats.verdict_at(1), Some(AttemptVerdict::Optimal));
        assert!(out.mapping.unwrap().is_valid(&dfg, &cgra));
    }

    #[test]
    fn island_star_proves_ii_1_infeasible() {
        let cgra = island_fabric();
        let dfg = star3();
        let out = ExactSatMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert_eq!(out.stats.achieved_ii, Some(2), "{}", out.stats);
        assert_eq!(out.stats.proven_infeasible_iis(), vec![1]);
        assert!(out.stats.proven_optimal());
        let mapping = out.mapping.unwrap();
        assert!(mapping.is_valid(&dfg, &cgra));
        // Verify the decoded schedule also replays through the simulator
        // contract: every route passed `Mapping::validate`, so occupancy,
        // timing and endpoints all line up.
        assert_eq!(mapping.ii(), 2);
    }

    #[test]
    fn accumulator_is_optimal_at_recmii() {
        let cgra = presets::paper_4x4_r4();
        let mut g = Dfg::new("acc");
        let phi = g.add_node("phi", OpKind::Phi);
        let c = g.add_node("c", OpKind::Const);
        let add = g.add_node("add", OpKind::Add);
        g.add_edge(phi, add, 0).unwrap();
        g.add_edge(c, add, 0).unwrap();
        g.add_edge(add, phi, 1).unwrap();
        let out = ExactSatMapper::new().map(&g, &cgra, &MapLimits::fast());
        assert_eq!(out.stats.achieved_ii, Some(2));
        assert!(out.stats.proven_optimal(), "MII itself is the proof floor");
    }

    #[test]
    fn self_edge_round_trip_decodes() {
        let cgra = presets::paper_4x4_r4();
        let mut g = Dfg::new("self");
        let a = g.add_node("a", OpKind::Add);
        g.add_edge(a, a, 1).unwrap();
        let out = ExactSatMapper::new().map(&g, &cgra, &MapLimits::fast());
        assert_eq!(out.stats.achieved_ii, Some(1));
        assert!(out.mapping.unwrap().is_valid(&g, &cgra));
    }

    #[test]
    fn refuses_oversized_instances() {
        let cgra = presets::paper_4x4_r4();
        let dfg = chain(64);
        let out = ExactSatMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert!(out.mapping.is_none());
        assert_eq!(out.stats.iis_explored, 0);
        assert!(out.stats.verdicts.is_empty());
    }

    #[test]
    fn tiny_budget_degrades_to_unknown_not_wrong() {
        let cgra = island_fabric();
        let dfg = star3();
        let out =
            ExactSatMapper::new()
                .with_conflict_budget(1)
                .map(&dfg, &cgra, &MapLimits::fast());
        // Whatever happened, no optimality claim may survive a truncated
        // sweep, and any infeasibility verdict must agree with the full
        // run (II 1 is genuinely infeasible).
        assert!(!out.stats.proven_optimal() || out.stats.verdict_at(1).is_some());
        for ii in out.stats.proven_infeasible_iis() {
            assert_eq!(ii, 1, "only II 1 is infeasible for this instance");
        }
    }

    #[test]
    fn verdicts_are_deterministic_across_runs() {
        let cgra = island_fabric();
        let dfg = star3();
        let run = || {
            let out =
                ExactSatMapper::new().map_with_events(&dfg, &cgra, &MapLimits::fast(), &mut Silent);
            let placements: Vec<_> = dfg
                .node_ids()
                .filter_map(|v| out.mapping.as_ref().unwrap().placement(v))
                .collect();
            (
                out.stats.achieved_ii,
                out.stats.verdicts.clone(),
                out.stats.remap_iterations,
                placements,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exact_matches_the_exhaustive_oracle_on_small_graphs() {
        let cgra = presets::paper_4x4_r1();
        for n in [2usize, 4, 6] {
            let dfg = chain(n);
            let oracle = crate::ExhaustiveMapper::new().map(&dfg, &cgra, &MapLimits::fast());
            let exact = ExactSatMapper::new().map(&dfg, &cgra, &MapLimits::fast());
            assert_eq!(
                exact.stats.achieved_ii, oracle.stats.achieved_ii,
                "{n}-node chain"
            );
        }
    }
}
