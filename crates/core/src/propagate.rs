//! Routing propagation (§IV-C of the paper).
//!
//! Values of the cluster's mapped parents are flooded forward through the
//! network; mapped children are flooded backward. Each wavefront visit
//! produces a *propagation tuple* — the paper's probe of network
//! utilisation: `(source node, direction, PE, cycle)`. Tuples are
//! deduplicated on exactly that key ("no existing tuple at that PE with the
//! identical combination of source node, routing cycle count, and
//! propagation direction"), and propagation continues through cells already
//! visited by *other* tuples, because the goal is exploring potential
//! routing paths, not final allocation. Cells used by the current (valid
//! part of the) mapping block propagation unless they already carry the
//! propagated signal (fan-out sharing).

use rewire_arch::{Cgra, PeId};
use rewire_dfg::NodeId;
use rewire_mrrg::{Occupancy, Resource};
use std::collections::VecDeque;

/// Propagation direction of a tuple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// From a mapped parent, following data flow.
    Forward,
    /// From a mapped child, against data flow.
    Backward,
}

impl Direction {
    /// Dense index (`Forward` = 0, `Backward` = 1) for flat side tables.
    const fn index(self) -> usize {
        match self {
            Direction::Forward => 0,
            Direction::Backward => 1,
        }
    }
}

/// One propagation source.
#[derive(Clone, Copy, Debug)]
pub struct PropagationSeed {
    /// The mapped DFG node the wave originates from.
    pub source: NodeId,
    /// Wave direction.
    pub direction: Direction,
    /// PE the wave starts from (the source's PE, or — for backward
    /// delivery seeds — an upstream neighbour of it).
    pub pe: PeId,
    /// Seed cycle: for forward waves, the cycle the source's value first
    /// appears on its output wire (`t + 1`); for backward waves, the cycle
    /// a value must *arrive* at the source to be consumed
    /// (`t + distance·II`).
    pub cycle: u32,
    /// Wave identity tag. Waves from the same source with different
    /// deadlines (e.g. two consuming edges with different iteration
    /// distances) must not share tuples, so the tag — by convention the
    /// principal seed cycle — separates them.
    pub wave: u32,
}

/// The tuple store: for every `(source, direction)` wave, the set of
/// `(PE, cycle)` positions reached.
///
/// A *position* `(pe, c)` means: forward — the source's value can be read
/// by an FU on `pe` during cycle `c`; backward — a value readable on `pe`
/// during cycle `c` can still reach the source in time.
#[derive(Clone, Debug, Default)]
pub struct TupleStore {
    /// Indexed by `node.index() * 2 + direction.index()` — NodeIds are
    /// contiguous, so the wave lookup in the propagation/intersection inner
    /// loops is two array indexings instead of a hash. Each entry is the
    /// small list of `(wave tag, per-PE sorted cycle lists)` for that
    /// `(node, direction)`; distinct tags per pair are the node's distinct
    /// edge deadlines, almost always one or two, so a linear scan wins.
    waves: Vec<Vec<(u32, Vec<Vec<u32>>)>>,
    num_tuples: u64,
}

impl TupleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn wave_slot(source: NodeId, direction: Direction) -> usize {
        source.index() * 2 + direction.index()
    }

    /// Sorted cycles at which the tagged wave reaches `pe`.
    pub fn cycles(&self, source: NodeId, direction: Direction, wave: u32, pe: PeId) -> &[u32] {
        self.waves
            .get(Self::wave_slot(source, direction))
            .and_then(|tags| tags.iter().find(|(tag, _)| *tag == wave))
            .map(|(_, per_pe)| per_pe[pe.index()].as_slice())
            .unwrap_or(&[])
    }

    /// Whether the wave reaches `pe` exactly at `cycle`.
    pub fn contains(
        &self,
        source: NodeId,
        direction: Direction,
        wave: u32,
        pe: PeId,
        cycle: u32,
    ) -> bool {
        self.cycles(source, direction, wave, pe)
            .binary_search(&cycle)
            .is_ok()
    }

    /// Whether the wave reaches `pe` at any cycle `≤ cycle` (forward
    /// transitive requirement).
    pub fn contains_at_or_before(
        &self,
        source: NodeId,
        direction: Direction,
        wave: u32,
        pe: PeId,
        cycle: u32,
    ) -> bool {
        self.cycles(source, direction, wave, pe)
            .first()
            .is_some_and(|&c| c <= cycle)
    }

    /// Whether the wave reaches `pe` at any cycle `≥ cycle` (backward
    /// transitive requirement).
    pub fn contains_at_or_after(
        &self,
        source: NodeId,
        direction: Direction,
        wave: u32,
        pe: PeId,
        cycle: u32,
    ) -> bool {
        self.cycles(source, direction, wave, pe)
            .last()
            .is_some_and(|&c| c >= cycle)
    }

    /// Total number of tuples generated.
    pub fn num_tuples(&self) -> u64 {
        self.num_tuples
    }

    fn insert(
        &mut self,
        num_pes: usize,
        source: NodeId,
        dir: Direction,
        wave: u32,
        pe: PeId,
        cycle: u32,
    ) -> bool {
        let slot = Self::wave_slot(source, dir);
        if self.waves.len() <= slot {
            self.waves.resize(slot + 1, Vec::new());
        }
        let tags = &mut self.waves[slot];
        let pos = match tags.iter().position(|(tag, _)| *tag == wave) {
            Some(pos) => pos,
            None => {
                tags.push((wave, vec![Vec::new(); num_pes]));
                tags.len() - 1
            }
        };
        let cycles = &mut tags[pos].1[pe.index()];
        match cycles.binary_search(&cycle) {
            Ok(_) => false,
            Err(pos) => {
                cycles.insert(pos, cycle);
                self.num_tuples += 1;
                true
            }
        }
    }
}

/// Runs all waves simultaneously for `rounds` wavefront steps over the
/// network, blocked only by cells the current mapping claims for *other*
/// signals, and returns the tuple store.
///
/// One round advances every wave by one cycle: a value either crosses a
/// link or waits in a register of its current PE. The consuming/producing
/// delivery hop (see the `rewire-mrrg` timing contract) is accounted for at
/// intersection time, not here.
pub fn propagate(
    cgra: &Cgra,
    occ: &Occupancy,
    seeds: &[PropagationSeed],
    rounds: u32,
) -> TupleStore {
    let mut store = TupleStore::new();
    let num_pes = cgra.num_pes();
    let mrrg = occ.mrrg();

    for seed in seeds {
        let mut frontier: VecDeque<(PeId, u32)> = VecDeque::new();
        if store.insert(
            num_pes,
            seed.source,
            seed.direction,
            seed.wave,
            seed.pe,
            seed.cycle,
        ) {
            frontier.push_back((seed.pe, seed.cycle));
        }
        // Each wave is an independent BFS over (pe, cycle) positions; the
        // per-(source, dir, pe, cycle) dedup in `insert` is the paper's
        // redundancy filter.
        while let Some((pe, cycle)) = frontier.pop_front() {
            let steps_taken = cycle.abs_diff(seed.wave);
            if steps_taken >= rounds {
                continue;
            }
            let (move_cycle, next_cycle) = match seed.direction {
                // Forward: a move during `cycle` makes the value readable
                // at `cycle + 1`.
                Direction::Forward => (cycle, cycle + 1),
                // Backward: a value readable at `cycle - 1` can move
                // during `cycle - 1` to be readable here at `cycle`.
                Direction::Backward => {
                    if cycle == 0 {
                        continue;
                    }
                    (cycle - 1, cycle - 1)
                }
            };
            let slot = mrrg.slot_of(move_cycle);

            // Register wait on the same PE: usable if any register cell is
            // free or already carries this signal (any phase — propagation
            // is an optimistic probe, verification is exact).
            let reg_ok = (0..cgra.regs_per_pe())
                .any(|r| occ.usable_by_any_phase(Resource::Reg { pe, reg: r, slot }, seed.source));
            if reg_ok
                && store.insert(
                    num_pes,
                    seed.source,
                    seed.direction,
                    seed.wave,
                    pe,
                    next_cycle,
                )
            {
                frontier.push_back((pe, next_cycle));
            }

            // Link hops.
            match seed.direction {
                Direction::Forward => {
                    for link in cgra.links_from(pe) {
                        let cell = Resource::Link {
                            link: link.id(),
                            slot,
                        };
                        if occ.usable_by_any_phase(cell, seed.source)
                            && store.insert(
                                num_pes,
                                seed.source,
                                seed.direction,
                                seed.wave,
                                link.dst(),
                                next_cycle,
                            )
                        {
                            frontier.push_back((link.dst(), next_cycle));
                        }
                    }
                }
                Direction::Backward => {
                    for link in cgra.links_to(pe) {
                        let cell = Resource::Link {
                            link: link.id(),
                            slot,
                        };
                        if occ.usable_by_any_phase(cell, seed.source)
                            && store.insert(
                                num_pes,
                                seed.source,
                                seed.direction,
                                seed.wave,
                                link.src(),
                                next_cycle,
                            )
                        {
                            frontier.push_back((link.src(), next_cycle));
                        }
                    }
                }
            }
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, Coord};
    use rewire_mrrg::Mrrg;

    fn setup(ii: u32) -> (rewire_arch::Cgra, Occupancy) {
        let cgra = presets::paper_4x4_r4();
        let occ = Occupancy::new(&Mrrg::new(&cgra, ii));
        (cgra, occ)
    }

    fn pe(cgra: &rewire_arch::Cgra, r: u16, c: u16) -> PeId {
        cgra.pe_at(Coord::new(r, c)).unwrap().id()
    }

    #[test]
    fn forward_wave_reaches_manhattan_ball() {
        let (cgra, occ) = setup(2);
        let src = pe(&cgra, 0, 0);
        let seeds = [PropagationSeed {
            source: NodeId::new(0),
            direction: Direction::Forward,
            pe: src,
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, &occ, &seeds, 3);
        // After up to 3 moves the value reaches every PE within distance 3.
        for p in cgra.pes() {
            let d = cgra.distance(src, p.id());
            let reached = !store
                .cycles(NodeId::new(0), Direction::Forward, 1, p.id())
                .is_empty();
            assert_eq!(reached, d <= 3, "{} at distance {d}", p.id());
            if d > 0 && reached {
                // Earliest arrival = seed cycle + Manhattan distance.
                let first = store.cycles(NodeId::new(0), Direction::Forward, 1, p.id())[0];
                assert_eq!(first, 1 + d);
            }
        }
    }

    #[test]
    fn backward_wave_runs_down_in_time() {
        let (cgra, occ) = setup(2);
        let dst = pe(&cgra, 1, 1);
        let seeds = [PropagationSeed {
            source: NodeId::new(7),
            direction: Direction::Backward,
            pe: dst,
            cycle: 6,
            wave: 6,
        }];
        let store = propagate(&cgra, &occ, &seeds, 2);
        // A PE at distance 2 can still make the 6-cycle deadline if the
        // value leaves by cycle 4.
        let far = pe(&cgra, 1, 3);
        assert!(store.contains(NodeId::new(7), Direction::Backward, 6, far, 4));
        // But not if it only becomes available at cycle 5.
        assert!(!store.contains(NodeId::new(7), Direction::Backward, 6, far, 5));
        // Waiting in registers is also possible: the destination itself at
        // earlier cycles.
        assert!(store.contains(NodeId::new(7), Direction::Backward, 6, dst, 4));
    }

    #[test]
    fn dedup_prevents_duplicate_tuples() {
        let (cgra, occ) = setup(2);
        let src = pe(&cgra, 0, 0);
        let seeds = [PropagationSeed {
            source: NodeId::new(0),
            direction: Direction::Forward,
            pe: src,
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, &occ, &seeds, 4);
        // Tuples are unique per (source, dir, pe, cycle); with 4 rounds on
        // a 4×4 mesh the count must stay well under pes × (rounds + 1).
        assert!(store.num_tuples() <= (cgra.num_pes() as u64) * 5);
    }

    #[test]
    fn occupied_cells_block_foreign_waves_but_not_own() {
        let (cgra, mut occ) = setup(1);
        let src = pe(&cgra, 0, 0);
        // Claim every outgoing link and register of the source PE for
        // signal 9 (II = 1: one slot).
        for l in cgra.links_from(src) {
            occ.claim(
                Resource::Link {
                    link: l.id(),
                    slot: 0,
                },
                NodeId::new(9),
                0,
            );
        }
        for r in 0..cgra.regs_per_pe() {
            occ.claim(
                Resource::Reg {
                    pe: src,
                    reg: r,
                    slot: 0,
                },
                NodeId::new(9),
                0,
            );
        }
        // A foreign wave is stuck at its seed.
        let foreign = [PropagationSeed {
            source: NodeId::new(1),
            direction: Direction::Forward,
            pe: src,
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, &occ, &foreign, 3);
        assert_eq!(store.num_tuples(), 1, "only the seed itself");

        // The owning signal shares its own cells and escapes.
        let own = [PropagationSeed {
            source: NodeId::new(9),
            direction: Direction::Forward,
            pe: src,
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, &occ, &own, 3);
        assert!(store.num_tuples() > 1);
    }

    #[test]
    fn rounds_bound_the_horizon() {
        let (cgra, occ) = setup(2);
        let seeds = [PropagationSeed {
            source: NodeId::new(0),
            direction: Direction::Forward,
            pe: pe(&cgra, 0, 0),
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, &occ, &seeds, 2);
        for p in cgra.pes() {
            for &c in store.cycles(NodeId::new(0), Direction::Forward, 1, p.id()) {
                assert!(c <= 3, "cycle {c} beyond 2 rounds from seed 1");
            }
        }
    }

    #[test]
    fn waves_with_different_tags_stay_isolated() {
        // Regression: one source consumed by two edges with different
        // deadlines must produce two separate waves — merging them once let
        // candidates satisfy one edge's timing with the other edge's
        // tuples, producing structurally-valid but impossible requests.
        let (cgra, occ) = setup(2);
        let src = pe(&cgra, 1, 1);
        let seeds = [
            PropagationSeed {
                source: NodeId::new(3),
                direction: Direction::Backward,
                pe: src,
                cycle: 5,
                wave: 5,
            },
            PropagationSeed {
                source: NodeId::new(3),
                direction: Direction::Backward,
                pe: src,
                cycle: 9,
                wave: 9,
            },
        ];
        let store = propagate(&cgra, &occ, &seeds, 3);
        // The wave-5 tag never contains cycles from the wave-9 seed.
        for p in cgra.pes() {
            for &c in store.cycles(NodeId::new(3), Direction::Backward, 5, p.id()) {
                assert!(c <= 5, "wave 5 leaked cycle {c}");
            }
            for &c in store.cycles(NodeId::new(3), Direction::Backward, 9, p.id()) {
                assert!((6..=9).contains(&c), "wave 9 has cycle {c}");
            }
        }
    }

    #[test]
    fn range_queries() {
        let (cgra, occ) = setup(2);
        let src = pe(&cgra, 0, 0);
        let seeds = [PropagationSeed {
            source: NodeId::new(0),
            direction: Direction::Forward,
            pe: src,
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, &occ, &seeds, 3);
        let nb = pe(&cgra, 0, 1);
        assert!(store.contains_at_or_before(NodeId::new(0), Direction::Forward, 1, nb, 5));
        assert!(!store.contains_at_or_before(NodeId::new(0), Direction::Forward, 1, nb, 1));
        assert!(store.contains_at_or_after(NodeId::new(0), Direction::Forward, 1, nb, 2));
        assert!(!store.contains_at_or_after(NodeId::new(0), Direction::Forward, 1, nb, 9));
    }
}
