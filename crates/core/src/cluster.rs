//! Cluster selection and growth (Algorithm 1, lines 6 and 13).

use rand::rngs::StdRng;
use rand::Rng;
use rewire_dfg::{Dfg, NodeId};
use std::collections::VecDeque;

/// The target cluster `U`: the unmapped, connected node set re-mapped in
/// one shot.
#[derive(Clone, Debug)]
pub struct Cluster {
    members: Vec<NodeId>,
}

impl Cluster {
    /// Selects an initial cluster: a random unmapped node plus unmapped
    /// neighbours up to `size` members ("Rewire randomly selects several
    /// unmapped connected nodes").
    ///
    /// # Panics
    ///
    /// Panics if `unmapped` is empty.
    pub fn select(dfg: &Dfg, unmapped: &[NodeId], size: usize, rng: &mut StdRng) -> Self {
        assert!(
            !unmapped.is_empty(),
            "cluster selection needs unmapped nodes"
        );
        let seed = unmapped[rng.random_range(0..unmapped.len())];
        let mut members = vec![seed];
        let mut queue = VecDeque::from([seed]);
        while members.len() < size {
            let Some(v) = queue.pop_front() else { break };
            for n in dfg.neighbors(v) {
                if members.len() >= size {
                    break;
                }
                if unmapped.contains(&n) && !members.contains(&n) {
                    members.push(n);
                    queue.push_back(n);
                }
            }
        }
        Self { members }
    }

    /// The member nodes, in selection order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Cluster size `|U|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty (never true for a selected cluster).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` belongs to the cluster.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Members sorted in DFG topological order (Alg. 2 line 1).
    pub fn topo_sorted(&self, dfg: &Dfg) -> Vec<NodeId> {
        dfg.topo_order()
            .into_iter()
            .filter(|v| self.contains(*v))
            .collect()
    }

    /// Grows the cluster by the candidate with the least hop distance to
    /// it ("we select the node that has the least DFS distance to the
    /// cluster U"). Candidates are taken from `pool` (typically the
    /// remaining unmapped nodes, falling back to mapped neighbours).
    /// Returns the appended node, or `None` if the pool is empty or
    /// unreachable.
    pub fn grow(&mut self, dfg: &Dfg, pool: &[NodeId]) -> Option<NodeId> {
        let best = pool
            .iter()
            .copied()
            .filter(|n| !self.contains(*n))
            .filter_map(|n| dfg.hop_distance_to_set(n, &self.members).map(|d| (d, n)))
            .min_by_key(|&(d, n)| (d, n))?;
        self.members.push(best.1);
        Some(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rewire_arch::OpKind;

    fn chain(n: usize) -> (Dfg, Vec<NodeId>) {
        let mut dfg = Dfg::new("chain");
        let ids: Vec<NodeId> = (0..n)
            .map(|i| dfg.add_node(format!("n{i}"), OpKind::Add))
            .collect();
        for w in ids.windows(2) {
            dfg.add_edge(w[0], w[1], 0).unwrap();
        }
        (dfg, ids)
    }

    #[test]
    fn selection_is_connected_and_bounded() {
        let (dfg, ids) = chain(10);
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = Cluster::select(&dfg, &ids, 4, &mut rng);
        assert_eq!(cluster.len(), 4);
        // Connected: every member (but the seed) has a neighbour inside.
        for &m in cluster.members() {
            let has_inside_neighbor = dfg.neighbors(m).iter().any(|n| cluster.contains(*n));
            assert!(has_inside_neighbor || cluster.len() == 1);
        }
    }

    #[test]
    fn selection_respects_unmapped_pool() {
        let (dfg, ids) = chain(6);
        let mut rng = StdRng::seed_from_u64(3);
        // Only odd nodes available: clusters can't include even ones.
        let pool: Vec<NodeId> = ids.iter().copied().skip(1).step_by(2).collect();
        let cluster = Cluster::select(&dfg, &pool, 4, &mut rng);
        for m in cluster.members() {
            assert!(pool.contains(m));
        }
    }

    #[test]
    fn grow_picks_nearest() {
        let (dfg, ids) = chain(6);
        let mut rng = StdRng::seed_from_u64(0);
        let mut cluster = Cluster::select(&dfg, &ids[0..1], 1, &mut rng);
        assert_eq!(cluster.members(), &[ids[0]]);
        let grown = cluster.grow(&dfg, &[ids[3], ids[1]]).unwrap();
        assert_eq!(grown, ids[1], "hop distance 1 beats 3");
        assert_eq!(cluster.len(), 2);
    }

    #[test]
    fn grow_returns_none_on_empty_pool() {
        let (dfg, ids) = chain(3);
        let mut rng = StdRng::seed_from_u64(0);
        let mut cluster = Cluster::select(&dfg, &ids, 3, &mut rng);
        assert!(cluster.grow(&dfg, &[]).is_none());
    }

    #[test]
    fn topo_sorted_respects_dependencies() {
        let (dfg, ids) = chain(5);
        let mut rng = StdRng::seed_from_u64(7);
        let cluster = Cluster::select(&dfg, &ids, 5, &mut rng);
        let sorted = cluster.topo_sorted(&dfg);
        assert_eq!(sorted, ids, "chain topological order is the chain itself");
    }
}
