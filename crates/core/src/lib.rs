//! **Rewire** — a consolidated routing paradigm for CGRA mapping
//! (Li et al., DAC 2025).
//!
//! Conventional mappers place and route one DFG node at a time and
//! backtrack when later nodes fail. Rewire instead *amends* an invalid
//! initial mapping by re-mapping a whole **cluster** of ill-mapped nodes in
//! one shot:
//!
//! 1. **Propagation** ([`propagate`]): the output values of the cluster's
//!    mapped parents are propagated forward through the network (and its
//!    mapped children backward), generating *propagation tuples*
//!    `(source, direction, PE, cycle)` — shareable routing knowledge.
//! 2. **Intersection** ([`PlacementCandidates`]): a PE is a placement
//!    candidate for a cluster node if it holds the required tuples from all
//!    relevant sources at a consistent cycle (Eq. 1 of the paper); direct
//!    neighbours require exact-cycle tuples, cluster-internal neighbours
//!    are represented by DFS-located transitive sources.
//! 3. **Multi-node placement** ([`ClusterPlacer`], Alg. 2): candidates are
//!    enumerated with execution-cycle dependency constraints pruning the
//!    combination space, and each surviving `Placement(U)` is verified by
//!    exclusive routing before being committed.
//!
//! The driver ([`RewireMapper`], Alg. 1) starts from PF*'s initial mapping,
//! grows the cluster up to α = 15 on failure, and raises II when a cluster
//! cannot be mapped.
//!
//! # Examples
//!
//! ```
//! use rewire_arch::presets;
//! use rewire_dfg::kernels;
//! use rewire_core::RewireMapper;
//! use rewire_mappers::{MapLimits, Mapper};
//!
//! let cgra = presets::paper_4x4_r4();
//! let dfg = kernels::fir();
//! let outcome = RewireMapper::new().map(&dfg, &cgra, &MapLimits::fast());
//! if let Some(mapping) = &outcome.mapping {
//!     assert!(mapping.is_valid(&dfg, &cgra));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod intersect;
#[cfg(test)]
mod lib_tests;
mod mapper;
mod placement;
mod propagate;
mod stats;

pub use cluster::Cluster;
pub use config::RewireConfig;
pub use intersect::{PlacementCandidates, Requirement};
pub use mapper::{RewireAttempt, RewireMapper};
pub use placement::ClusterPlacer;
pub use propagate::{propagate, Direction, PropagationSeed, TupleStore};
pub use stats::RewireStats;
