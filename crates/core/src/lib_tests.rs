//! Cross-module tests of the Rewire pipeline on controlled scenarios.

use crate::propagate::{propagate, Direction, PropagationSeed};
use crate::{Cluster, RewireConfig, RewireMapper, RewireStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rewire_arch::{presets, Coord, OpKind, PeId};
use rewire_dfg::{Dfg, NodeId};
use rewire_mappers::{MapLimits, Mapper, Mapping};
use rewire_mrrg::Mrrg;
use std::time::{Duration, Instant};

fn pe(cgra: &rewire_arch::Cgra, r: u16, c: u16) -> PeId {
    cgra.pe_at(Coord::new(r, c)).unwrap().id()
}

/// The paper's motivating example (Fig 2): A and B mapped, G mapped, and a
/// middle region C/D/E/F to re-map in one shot.
#[test]
fn motivating_example_maps_in_one_cluster() {
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("fig2");
    let a = dfg.add_node("A", OpKind::Load);
    let b = dfg.add_node("B", OpKind::Load);
    let c = dfg.add_node("C", OpKind::Add);
    let d = dfg.add_node("D", OpKind::Mul);
    let e = dfg.add_node("E", OpKind::Add);
    let f = dfg.add_node("F", OpKind::Sub);
    let g = dfg.add_node("G", OpKind::Store);
    dfg.add_edge(a, c, 0).unwrap();
    dfg.add_edge(b, c, 0).unwrap();
    dfg.add_edge(b, d, 0).unwrap();
    dfg.add_edge(c, e, 0).unwrap();
    dfg.add_edge(c, f, 0).unwrap();
    dfg.add_edge(d, e, 0).unwrap();
    dfg.add_edge(e, f, 0).unwrap();
    dfg.add_edge(f, g, 0).unwrap();

    let ii = 3;
    let mrrg = Mrrg::new(&cgra, ii);
    let mut mapping = Mapping::new(&dfg, &mrrg);
    mapping.place(a, pe(&cgra, 0, 0), 0);
    mapping.place(b, pe(&cgra, 1, 0), 0);
    mapping.place(g, pe(&cgra, 2, 0), 6);

    let mut rng = StdRng::seed_from_u64(1);
    let mut stats = RewireStats::default();
    let deadline = Instant::now() + Duration::from_secs(10);
    let amended = RewireMapper::new()
        .amend(&dfg, &cgra, mapping, deadline, &mut rng, &mut stats)
        .expect("the motivating example maps at II 3");
    assert!(amended.is_valid(&dfg, &cgra));
    // The anchors stayed put unless the amendment had to move them.
    assert!(stats.clusters_attempted >= 1);
    assert!(stats.verification_successes >= 1);
}

/// Propagation must honour the paper's dedup rule: tuple counts stay
/// bounded by PEs × (rounds + 1) per wave.
#[test]
fn propagation_tuple_count_is_bounded() {
    let cgra = presets::paper_8x8_r4();
    let mrrg = Mrrg::new(&cgra, 4);
    let occ = rewire_mrrg::Occupancy::new(&mrrg);
    let rounds = 12;
    let seeds: Vec<PropagationSeed> = (0..6)
        .map(|i| PropagationSeed {
            source: NodeId::new(i),
            direction: Direction::Forward,
            pe: PeId::new(i * 9),
            cycle: 1,
            wave: 1,
        })
        .collect();
    let store = propagate(&cgra, &occ, &seeds, rounds);
    let bound = seeds.len() as u64 * cgra.num_pes() as u64 * (rounds as u64 + 1);
    assert!(
        store.num_tuples() <= bound,
        "{} > {bound}",
        store.num_tuples()
    );
}

/// Cluster growth pulls in mapped anchors eventually (mapped nodes are
/// legal growth targets).
#[test]
fn cluster_growth_reaches_mapped_nodes() {
    let mut dfg = Dfg::new("line");
    let ids: Vec<NodeId> = (0..6)
        .map(|i| dfg.add_node(format!("n{i}"), OpKind::Add))
        .collect();
    for w in ids.windows(2) {
        dfg.add_edge(w[0], w[1], 0).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(2);
    let mut cluster = Cluster::select(&dfg, &ids[2..3], 1, &mut rng);
    // Pool = everything else; growth walks outwards by hop distance.
    for _ in 0..5 {
        let pool: Vec<NodeId> = ids
            .iter()
            .copied()
            .filter(|n| !cluster.contains(*n))
            .collect();
        if pool.is_empty() {
            break;
        }
        cluster.grow(&dfg, &pool).unwrap();
    }
    assert_eq!(cluster.len(), 6, "the whole line joins the cluster");
}

/// α = 1 (single-node amendment, the conventional paradigm) still maps
/// easy kernels, just less capably — the ablation's premise.
#[test]
fn alpha_one_still_maps_easy_kernels() {
    let cgra = presets::paper_4x4_r4();
    let dfg = rewire_dfg::kernels::fir();
    let config = RewireConfig {
        alpha: 1,
        initial_cluster_size: 1,
        ..Default::default()
    };
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let out = RewireMapper::with_config(config).map(&dfg, &cgra, &limits);
    if let Some(m) = out.mapping {
        assert!(m.is_valid(&dfg, &cgra));
    }
}

/// The verification-success statistic accumulates sensibly across a run
/// (the §IV-D "around 95 %" claim is measured by the repro binary).
#[test]
fn verification_stats_accumulate() {
    let cgra = presets::paper_4x4_r4();
    let dfg = rewire_dfg::kernels::atax();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let (_, rs) = RewireMapper::new().map_with_stats(&dfg, &cgra, &limits);
    assert!(rs.verifications >= rs.verification_successes);
    assert!(rs.clusters_attempted > 0);
    let rate = rs.verification_success_rate();
    assert!((0.0..=1.0).contains(&rate));
}
