//! Rewire-specific counters (beyond the generic
//! [`MapStats`](rewire_mappers::MapStats)).

/// Counters accumulated across one [`RewireMapper`](crate::RewireMapper)
/// run. The verification success rate substantiates the paper's "around
/// 95 %" claim for generated `Placement(U)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RewireStats {
    /// Clusters selected for amendment (including regrown ones).
    pub clusters_attempted: u64,
    /// Times a cluster was grown by one node after a failed attempt.
    pub cluster_growths: u64,
    /// Propagation tuples generated in total.
    pub tuples_generated: u64,
    /// `Placement(U)` combinations that reached routing verification.
    pub verifications: u64,
    /// Verifications that routed successfully.
    pub verification_successes: u64,
    /// Combinations pruned by the execution-cycle constraints before
    /// verification.
    pub combinations_pruned: u64,
}

impl RewireStats {
    /// Fraction of verified `Placement(U)` that routed successfully.
    pub fn verification_success_rate(&self) -> f64 {
        if self.verifications == 0 {
            0.0
        } else {
            self.verification_successes as f64 / self.verifications as f64
        }
    }

    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &RewireStats) {
        self.clusters_attempted += other.clusters_attempted;
        self.cluster_growths += other.cluster_growths;
        self.tuples_generated += other.tuples_generated;
        self.verifications += other.verifications;
        self.verification_successes += other.verification_successes;
        self.combinations_pruned += other.combinations_pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate() {
        let mut s = RewireStats::default();
        assert_eq!(s.verification_success_rate(), 0.0);
        s.verifications = 20;
        s.verification_successes = 19;
        assert!((s.verification_success_rate() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RewireStats {
            clusters_attempted: 1,
            verifications: 2,
            ..Default::default()
        };
        let b = RewireStats {
            clusters_attempted: 3,
            verifications: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.clusters_attempted, 4);
        assert_eq!(a.verifications, 7);
    }
}
