//! Propagation-tuple intersection (§IV-D, Eq. 1): turning shared routing
//! knowledge into per-node placement candidates.

use crate::propagate::{Direction, TupleStore};
use crate::RewireConfig;
use rewire_arch::{Cgra, PeId};
use rewire_dfg::{Dfg, NodeId};
use rewire_mappers::Mapping;
use rewire_mrrg::Resource;
use std::collections::VecDeque;

/// One constraint a placement candidate of a cluster node must satisfy.
///
/// Direct requirements come from mapped neighbours and are exact-cycle;
/// transitive requirements stand in for cluster-internal neighbours, whose
/// nearest mapped ancestor/descendant is located by DFS exactly as the
/// paper describes ("if a parent or child node of v in U is not the source
/// node of propagation, we use DFS to find a source node to represent
/// it").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Requirement {
    /// A mapped direct neighbour.
    Direct {
        /// The mapped neighbour (= propagation source).
        source: NodeId,
        /// Wave direction (Forward for parents, Backward for children).
        direction: Direction,
        /// Iteration distance of the connecting edge.
        distance: u32,
        /// Wave identity tag: `t_src + 1` for forward, the required
        /// arrival cycle for backward.
        wave: u32,
    },
    /// A mapped transitive neighbour reached through unmapped cluster
    /// nodes.
    Transitive {
        /// The mapped ancestor/descendant (= propagation source).
        source: NodeId,
        /// Wave direction.
        direction: Direction,
        /// Number of edges between the source and the node (≥ 2), i.e. the
        /// minimum cycles the intermediate operations consume.
        separation: u32,
        /// Sum of iteration distances along the path.
        distance_sum: u32,
        /// Wave identity tag (see [`Requirement::Direct::wave`]).
        wave: u32,
    },
}

/// Builds the requirement set of `v`: one per adjacent edge, following the
/// paper's rule that every edge of `v` needs a corresponding tuple.
/// Edges whose far side has no mapped (transitive) endpoint yield no
/// requirement (that side is constrained only through Algorithm 2's
/// execution-cycle checks).
pub fn requirements_for(dfg: &Dfg, mapping: &Mapping, v: NodeId) -> Vec<Requirement> {
    let ii = mapping.ii();
    let mut out = Vec::new();
    let push = |r: Requirement, out: &mut Vec<Requirement>| {
        if !out.contains(&r) {
            out.push(r);
        }
    };
    for e in dfg.in_edges(v) {
        if e.src() == v {
            continue; // self-loop: no external requirement
        }
        if mapping.is_placed(e.src()) {
            let (_, t) = mapping.placement(e.src()).expect("placed");
            push(
                Requirement::Direct {
                    source: e.src(),
                    direction: Direction::Forward,
                    distance: e.distance(),
                    wave: t + 1,
                },
                &mut out,
            );
        } else if let Some((s, sep, dsum)) =
            nearest_mapped(dfg, mapping, e.src(), Direction::Forward)
        {
            let (_, t) = mapping.placement(s).expect("mapped source");
            push(
                Requirement::Transitive {
                    source: s,
                    direction: Direction::Forward,
                    separation: sep + 1,
                    distance_sum: dsum + e.distance(),
                    wave: t + 1,
                },
                &mut out,
            );
        }
    }
    for e in dfg.out_edges(v) {
        if e.dst() == v {
            continue;
        }
        if mapping.is_placed(e.dst()) {
            let (_, t) = mapping.placement(e.dst()).expect("placed");
            push(
                Requirement::Direct {
                    source: e.dst(),
                    direction: Direction::Backward,
                    distance: e.distance(),
                    wave: t + e.distance() * ii,
                },
                &mut out,
            );
        } else if let Some((s, sep, dsum)) =
            nearest_mapped(dfg, mapping, e.dst(), Direction::Backward)
        {
            let (_, t) = mapping.placement(s).expect("mapped source");
            push(
                Requirement::Transitive {
                    source: s,
                    direction: Direction::Backward,
                    separation: sep + 1,
                    distance_sum: dsum + e.distance(),
                    wave: t + (dsum + e.distance()) * ii,
                },
                &mut out,
            );
        }
    }
    out
}

/// BFS from `from` through unmapped nodes (upstream for `Forward`,
/// downstream for `Backward`) to the nearest mapped node. Returns
/// `(source, edges_traversed, distance_sum)`.
fn nearest_mapped(
    dfg: &Dfg,
    mapping: &Mapping,
    from: NodeId,
    direction: Direction,
) -> Option<(NodeId, u32, u32)> {
    let mut queue = VecDeque::from([(from, 0u32, 0u32)]);
    let mut visited = vec![from];
    while let Some((n, sep, dsum)) = queue.pop_front() {
        if mapping.is_placed(n) {
            return Some((n, sep, dsum));
        }
        let edges: Vec<(NodeId, u32)> = match direction {
            Direction::Forward => dfg.in_edges(n).map(|e| (e.src(), e.distance())).collect(),
            Direction::Backward => dfg.out_edges(n).map(|e| (e.dst(), e.distance())).collect(),
        };
        for (next, d) in edges {
            if !visited.contains(&next) {
                visited.push(next);
                queue.push_back((next, sep + 1, dsum + d));
            }
        }
    }
    None
}

/// The placement candidates of one cluster node: `(PE, execution cycle)`
/// pairs, sorted by cycle (Alg. 2 line 3).
#[derive(Clone, Debug)]
pub struct PlacementCandidates {
    /// The cluster node.
    pub node: NodeId,
    /// Feasible `(PE, exec cycle)` pairs, earliest cycles first.
    pub options: Vec<(PeId, u32)>,
}

/// Intersects the propagation tuples (Eq. 1): a PE is a candidate for `v`
/// at execution cycle `c` iff every requirement has a matching tuple.
///
/// Matching rules (delivery-hop aware, see the `rewire-mrrg` timing
/// contract):
///
/// * direct parent `(p, d)` — `p`'s forward wave reaches this PE **or an
///   upstream neighbour** exactly at `c + d·II`,
/// * direct child `(ch, d)` — the backward wave from `ch` covers position
///   `(pe, c + 1)` (where `v`'s output appears),
/// * transitive parent — the forward wave reaches this PE at or before
///   `c + D·II` (loose: the intermediates run elsewhere),
/// * transitive child — the backward wave covers some cycle after `c`.
///
/// Candidates additionally need a free FU cell at `slot(c)` and an
/// operation-capable PE.
#[allow(clippy::too_many_arguments)]
pub fn pcandidates(
    dfg: &Dfg,
    cgra: &Cgra,
    mapping: &Mapping,
    store: &TupleStore,
    v: NodeId,
    reqs: &[Requirement],
    config: &RewireConfig,
    horizon: u32,
) -> PlacementCandidates {
    let ii = mapping.ii();
    let op = dfg.node(v).op();
    let mut options = Vec::new();

    for pe_ref in cgra.pes_supporting(op) {
        let pe = pe_ref.id();
        // Derive the candidate execution cycles from the most selective
        // requirement available; fall back to the full horizon window.
        let cycles: Vec<u32> = if let Some(Requirement::Direct {
            source,
            direction: Direction::Forward,
            distance,
            wave,
        }) = reqs.iter().find(|r| {
            matches!(
                r,
                Requirement::Direct {
                    direction: Direction::Forward,
                    ..
                }
            )
        }) {
            let mut cands: Vec<u32> = store
                .cycles(*source, Direction::Forward, *wave, pe)
                .iter()
                .filter_map(|&arr| arr.checked_sub(distance * ii))
                .collect();
            // Delivery hop: the wave may also arrive at an upstream
            // neighbour, provided the final link cell is actually usable.
            for link in cgra.links_to(pe) {
                for &arr in store.cycles(*source, Direction::Forward, *wave, link.src()) {
                    let cell = Resource::Link {
                        link: link.id(),
                        slot: mapping.mrrg().slot_of(arr),
                    };
                    if !mapping.occupancy().usable_by_any_phase(cell, *source) {
                        continue;
                    }
                    if let Some(c) = arr.checked_sub(distance * ii) {
                        if !cands.contains(&c) {
                            cands.push(c);
                        }
                    }
                }
            }
            cands.sort_unstable();
            cands.dedup();
            cands
        } else if let Some(Requirement::Direct {
            source,
            direction: Direction::Backward,
            wave,
            ..
        }) = reqs.iter().find(|r| {
            matches!(
                r,
                Requirement::Direct {
                    direction: Direction::Backward,
                    ..
                }
            )
        }) {
            store
                .cycles(*source, Direction::Backward, *wave, pe)
                .iter()
                .filter_map(|&c| c.checked_sub(1))
                .collect()
        } else if let Some(Requirement::Transitive {
            source,
            direction: Direction::Forward,
            separation,
            distance_sum,
            wave,
        }) = reqs.iter().find(|r| {
            matches!(
                r,
                Requirement::Transitive {
                    direction: Direction::Forward,
                    ..
                }
            )
        }) {
            // The node runs at least `separation` cycles after the wave
            // reaches its neighbourhood; bound the window rather than
            // scanning the whole horizon.
            match store.cycles(*source, Direction::Forward, *wave, pe).first() {
                Some(&first) => {
                    let lo = (first + separation).saturating_sub(distance_sum * ii);
                    (lo..=(lo + 2 * ii + 2).min(horizon)).collect()
                }
                None => Vec::new(),
            }
        } else {
            (0..=(3 * ii + 2).min(horizon)).collect()
        };

        for c in cycles {
            if c > horizon {
                continue;
            }
            let fu = Resource::Fu {
                pe,
                slot: mapping.mrrg().slot_of(c),
            };
            if !mapping.occupancy().usable_by(fu, v, 0) {
                continue;
            }
            if reqs
                .iter()
                .all(|r| satisfied(cgra, mapping, store, pe, c, ii, r))
            {
                options.push((pe, c));
            }
        }
    }

    if options.is_empty() && std::env::var_os("REWIRE_IDEBUG").is_some() {
        // Per-requirement diagnosis: how many (pe, cycle) pairs each
        // requirement admits on its own.
        for r in reqs {
            let mut admitted = 0;
            for pe_ref in cgra.pes_supporting(op) {
                for c in 0..=horizon {
                    if satisfied(cgra, mapping, store, pe_ref.id(), c, ii, r) {
                        admitted += 1;
                    }
                }
            }
            eprintln!("    req {r:?}: admits {admitted}");
        }
        // Joint admission ignoring the FU filter and the cycle-derivation
        // shortcut: how many (pe, c) satisfy ALL requirements?
        let mut joint = 0;
        let mut joint_fu = 0;
        for pe_ref in cgra.pes_supporting(op) {
            for c in 0..=horizon {
                if reqs
                    .iter()
                    .all(|r| satisfied(cgra, mapping, store, pe_ref.id(), c, ii, r))
                {
                    joint += 1;
                    let fu = Resource::Fu {
                        pe: pe_ref.id(),
                        slot: mapping.mrrg().slot_of(c),
                    };
                    if mapping.occupancy().usable_by(fu, v, 0) {
                        joint_fu += 1;
                    }
                }
            }
        }
        eprintln!("    joint={joint} joint+fu={joint_fu}");
    }
    options.sort_by_key(|&(pe, c)| (c, pe));
    options.truncate(config.max_candidates_per_node);
    PlacementCandidates { node: v, options }
}

fn satisfied(
    cgra: &Cgra,
    mapping: &Mapping,
    store: &TupleStore,
    pe: PeId,
    c: u32,
    ii: u32,
    req: &Requirement,
) -> bool {
    match *req {
        Requirement::Direct {
            source,
            direction: Direction::Forward,
            distance,
            wave,
        } => {
            let arr = c + distance * ii;
            store.contains(source, Direction::Forward, wave, pe, arr)
                || cgra.links_to(pe).any(|l| {
                    let cell = Resource::Link {
                        link: l.id(),
                        slot: mapping.mrrg().slot_of(arr),
                    };
                    mapping.occupancy().usable_by_any_phase(cell, source)
                        && store.contains(source, Direction::Forward, wave, l.src(), arr)
                })
        }
        Requirement::Direct {
            source,
            direction: Direction::Backward,
            wave,
            ..
        } => store.contains(source, Direction::Backward, wave, pe, c + 1),
        // Transitive requirements are deliberately loose: the intermediate
        // cluster nodes will execute on *other* PEs, so demanding the exact
        // cycle here (the paper's idealised formula) empties the candidate
        // set on small fabrics. Spatial reachability with a one-sided cycle
        // bound keeps the pruning value; Algorithm 2's pairwise constraints
        // and the routing verification enforce exactness.
        Requirement::Transitive {
            source,
            direction: Direction::Forward,
            distance_sum,
            wave,
            ..
        } => {
            store.contains_at_or_before(source, Direction::Forward, wave, pe, c + distance_sum * ii)
        }
        Requirement::Transitive {
            source,
            direction: Direction::Backward,
            wave,
            ..
        } => store.contains_at_or_after(source, Direction::Backward, wave, pe, c + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{propagate, PropagationSeed};
    use rewire_arch::{presets, Coord, OpKind};
    use rewire_mrrg::Mrrg;

    fn pe(cgra: &Cgra, r: u16, c: u16) -> PeId {
        cgra.pe_at(Coord::new(r, c)).unwrap().id()
    }

    /// a -> b -> c with a and c mapped, b unmapped.
    fn chain_setup() -> (Cgra, Dfg, Mapping, NodeId, NodeId, NodeId) {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("chain");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        let c = dfg.add_node("c", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        dfg.add_edge(b, c, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, pe(&cgra, 0, 0), 0);
        m.place(c, pe(&cgra, 0, 2), 4);
        (cgra, dfg, m, a, b, c)
    }

    #[test]
    fn requirements_of_sandwiched_node_are_direct() {
        let (_cgra, dfg, m, a, b, c) = chain_setup();
        let reqs = requirements_for(&dfg, &m, b);
        assert_eq!(reqs.len(), 2);
        assert!(reqs.contains(&Requirement::Direct {
            source: a,
            direction: Direction::Forward,
            distance: 0,
            wave: 1
        }));
        assert!(reqs.contains(&Requirement::Direct {
            source: c,
            direction: Direction::Backward,
            distance: 0,
            wave: 4
        }));
    }

    #[test]
    fn transitive_requirement_found_by_dfs() {
        // a -> b -> c -> d, only a and d mapped; c's parent b is unmapped,
        // so c's forward requirement is the transitive source a.
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("chain4");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        let c = dfg.add_node("c", OpKind::Add);
        let d = dfg.add_node("d", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        dfg.add_edge(b, c, 0).unwrap();
        dfg.add_edge(c, d, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, pe(&cgra, 0, 0), 0);
        m.place(d, pe(&cgra, 0, 3), 5);
        let reqs = requirements_for(&dfg, &m, c);
        assert!(reqs.contains(&Requirement::Transitive {
            source: a,
            direction: Direction::Forward,
            separation: 2,
            distance_sum: 0,
            wave: 1
        }));
        assert!(reqs.contains(&Requirement::Direct {
            source: d,
            direction: Direction::Backward,
            distance: 0,
            wave: 5
        }));
    }

    #[test]
    fn unreachable_side_yields_no_requirement() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let m = Mapping::new(&dfg, &mrrg); // nothing mapped
        assert!(requirements_for(&dfg, &m, b).is_empty());
    }

    #[test]
    fn intersection_finds_the_sandwich_candidates() {
        let (cgra, dfg, m, a, b, c) = chain_setup();
        // Propagate forward from a (value on wire at cycle 1) and backward
        // from c (arrival needed at cycle 4).
        let seeds = [
            PropagationSeed {
                source: a,
                direction: Direction::Forward,
                pe: pe(&cgra, 0, 0),
                cycle: 1,
                wave: 1,
            },
            PropagationSeed {
                source: c,
                direction: Direction::Backward,
                pe: pe(&cgra, 0, 2),
                cycle: 4,
                wave: 4,
            },
        ];
        let store = propagate(&cgra, m.occupancy(), &seeds, 8);
        let reqs = requirements_for(&dfg, &m, b);
        let cands = pcandidates(
            &dfg,
            &cgra,
            &m,
            &store,
            b,
            &reqs,
            &RewireConfig::default(),
            12,
        );
        assert!(!cands.options.is_empty());
        // Every candidate satisfies timing: exec after a (t=0), output
        // reaches c by cycle 4.
        for &(p, cyc) in &cands.options {
            assert!(cyc >= 1, "must run after a: {cyc}");
            assert!(cyc <= 3, "output must reach c by 4: {cyc}");
            // And the geometry must be coverable.
            assert!(cgra.distance(pe(&cgra, 0, 0), p) <= cyc + 1);
            assert!(cgra.distance(p, pe(&cgra, 0, 2)) <= 4 - cyc);
        }
        // The direct midpoint (0,1) at cycle 2 must be among them.
        assert!(cands.options.contains(&(pe(&cgra, 0, 1), 2)));
    }

    #[test]
    fn occupied_fu_cells_are_excluded() {
        let (cgra, dfg, mut m, a, b, c) = chain_setup();
        // Occupy (0,1) at slot 0 (cycle 2 % 2 == 0) with another node.
        let blocker = pe(&cgra, 0, 1);
        m.place(b, blocker, 2);
        let occupied = m.clone();
        m.unplace(&dfg, b);
        let seeds = [
            PropagationSeed {
                source: a,
                direction: Direction::Forward,
                pe: pe(&cgra, 0, 0),
                cycle: 1,
                wave: 1,
            },
            PropagationSeed {
                source: c,
                direction: Direction::Backward,
                pe: pe(&cgra, 0, 2),
                cycle: 4,
                wave: 4,
            },
        ];
        let store = propagate(&cgra, occupied.occupancy(), &seeds, 8);
        let reqs = requirements_for(&dfg, &occupied, b);
        let _ = reqs;
        // With b itself occupying the FU the candidate is still usable by
        // b (sharing key is the node) — instead occupy with a *different*
        // node to verify exclusion.
        let mut dfg2 = Dfg::new("x");
        let squatter = dfg2.add_node("sq", OpKind::Add);
        let _ = squatter;
        // Re-do with a foreign claim directly on the occupancy.
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m2 = Mapping::new(&dfg, &mrrg);
        m2.place(a, pe(&cgra, 0, 0), 0);
        m2.place(c, blocker, 2); // c sits exactly on the midpoint slot
        let reqs2 = requirements_for(&dfg, &m2, b);
        let seeds2 = [
            PropagationSeed {
                source: a,
                direction: Direction::Forward,
                pe: pe(&cgra, 0, 0),
                cycle: 1,
                wave: 1,
            },
            PropagationSeed {
                source: c,
                direction: Direction::Backward,
                pe: blocker,
                cycle: 2,
                wave: 2,
            },
        ];
        let store2 = propagate(&cgra, m2.occupancy(), &seeds2, 8);
        let cands = pcandidates(
            &dfg,
            &cgra,
            &m2,
            &store2,
            b,
            &reqs2,
            &RewireConfig::default(),
            12,
        );
        assert!(
            !cands.options.contains(&(blocker, 0)),
            "FU cell held by c must be excluded"
        );
        let _ = store;
    }

    #[test]
    fn candidates_are_sorted_by_cycle_and_capped() {
        let (cgra, dfg, m, a, b, c) = chain_setup();
        let seeds = [
            PropagationSeed {
                source: a,
                direction: Direction::Forward,
                pe: pe(&cgra, 0, 0),
                cycle: 1,
                wave: 1,
            },
            PropagationSeed {
                source: c,
                direction: Direction::Backward,
                pe: pe(&cgra, 0, 2),
                cycle: 4,
                wave: 4,
            },
        ];
        let store = propagate(&cgra, m.occupancy(), &seeds, 8);
        let reqs = requirements_for(&dfg, &m, b);
        let config = RewireConfig {
            max_candidates_per_node: 3,
            ..Default::default()
        };
        let cands = pcandidates(&dfg, &cgra, &m, &store, b, &reqs, &config, 12);
        assert!(cands.options.len() <= 3);
        assert!(cands.options.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn delivery_hop_extends_candidate_reach() {
        // a at (0,0) t=0; consumer candidate cycle 1 means zero routing
        // steps: without the delivery hop only (0,0) itself qualifies;
        // with it, the direct neighbours do too.
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, pe(&cgra, 0, 0), 0);
        let seeds = [PropagationSeed {
            source: a,
            direction: Direction::Forward,
            pe: pe(&cgra, 0, 0),
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, m.occupancy(), &seeds, 6);
        let reqs = requirements_for(&dfg, &m, b);
        let cands = pcandidates(
            &dfg,
            &cgra,
            &m,
            &store,
            b,
            &reqs,
            &RewireConfig::default(),
            10,
        );
        // Cycle-1 candidates: the producer's own PE plus its two mesh
        // neighbours (via the combinational delivery hop).
        let at_cycle_1: Vec<_> = cands
            .options
            .iter()
            .filter(|&&(_, c)| c == 1)
            .map(|&(p, _)| p)
            .collect();
        assert!(at_cycle_1.contains(&pe(&cgra, 0, 0)));
        assert!(at_cycle_1.contains(&pe(&cgra, 0, 1)));
        assert!(at_cycle_1.contains(&pe(&cgra, 1, 0)));
        assert!(
            !at_cycle_1.contains(&pe(&cgra, 1, 1)),
            "distance 2 needs a cycle"
        );
    }

    #[test]
    fn memory_ops_only_get_memory_pes() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("mem");
        let a = dfg.add_node("a", OpKind::Add);
        let ld = dfg.add_node("ld", OpKind::Load);
        dfg.add_edge(a, ld, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, pe(&cgra, 0, 1), 0);
        let seeds = [PropagationSeed {
            source: a,
            direction: Direction::Forward,
            pe: pe(&cgra, 0, 1),
            cycle: 1,
            wave: 1,
        }];
        let store = propagate(&cgra, m.occupancy(), &seeds, 10);
        let reqs = requirements_for(&dfg, &m, ld);
        let cands = pcandidates(
            &dfg,
            &cgra,
            &m,
            &store,
            ld,
            &reqs,
            &RewireConfig::default(),
            12,
        );
        assert!(!cands.options.is_empty());
        for &(p, _) in &cands.options {
            assert!(cgra.pe(p).memory_capable(), "{p} is not a memory PE");
        }
    }
}
