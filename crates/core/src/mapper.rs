//! The Rewire driver (Algorithm 1): amend PF*'s initial mapping by
//! re-mapping clusters of ill-mapped nodes in one shot, raising II when a
//! cluster cannot be mapped within the size limit α.

use crate::cluster::Cluster;
use crate::intersect::{pcandidates, requirements_for, Requirement};
use crate::placement::ClusterPlacer;
use crate::propagate::{propagate, Direction, PropagationSeed};
use crate::{RewireConfig, RewireStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rewire_arch::Cgra;
use rewire_dfg::{Dfg, NodeId};
use rewire_mappers::engine::{
    worker_seed, AttemptCtx, AttemptOutcome, Emitter, EventSink, IiAttempt, IiSearch, MapEvent,
    Silent,
};
use rewire_mappers::{MapLimits, MapOutcome, Mapper, Mapping, PathFinderMapper};
use rewire_obs::{self as obs, FlightEvent};
use std::time::Instant;

/// Mirrors the growth of [`RewireStats`] between two snapshots into the
/// `rewire.*` metric counters of the current scope. Called once per II
/// attempt so the cluster-amendment hot loops never touch an atomic.
fn mirror_rstats_delta(before: &RewireStats, after: &RewireStats) {
    let add = |name: &str, b: u64, a: u64| {
        if a > b {
            obs::counter(name).add(a - b);
        }
    };
    add(
        "rewire.clusters_attempted",
        before.clusters_attempted,
        after.clusters_attempted,
    );
    add(
        "rewire.cluster_growths",
        before.cluster_growths,
        after.cluster_growths,
    );
    add(
        "rewire.tuples_generated",
        before.tuples_generated,
        after.tuples_generated,
    );
    add(
        "rewire.verifications",
        before.verifications,
        after.verifications,
    );
    add(
        "rewire.verification_successes",
        before.verification_successes,
        after.verification_successes,
    );
    add(
        "rewire.combinations_pruned",
        before.combinations_pruned,
        after.combinations_pruned,
    );
}

/// The Rewire mapper.
///
/// Orthogonal to the initial-mapping producer by design ("Rewire ... can
/// take any initial mapping from other mappers"); this implementation uses
/// PF*'s initial pass, exactly as the paper's evaluation does.
#[derive(Clone, Debug, Default)]
pub struct RewireMapper {
    config: RewireConfig,
}

impl RewireMapper {
    /// Creates a Rewire mapper with the paper's default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a Rewire mapper with an explicit configuration.
    pub fn with_config(config: RewireConfig) -> Self {
        Self { config }
    }

    /// Like [`Mapper::map`] but also returns the Rewire-specific counters
    /// (propagation tuples, verification success rate, cluster growth).
    pub fn map_with_stats(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
    ) -> (MapOutcome, RewireStats) {
        self.map_with_stats_and_events(dfg, cgra, limits, &mut Silent)
    }

    /// [`map_with_stats`](RewireMapper::map_with_stats) with an event sink.
    pub fn map_with_stats_and_events(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
        events: &mut dyn EventSink,
    ) -> (MapOutcome, RewireStats) {
        let mut attempt = self.ii_attempt(limits);
        let outcome = IiSearch::new(self.name()).run(dfg, cgra, limits, &mut attempt, events);
        (outcome, attempt.rstats)
    }

    /// Builds the [`IiAttempt`] adapter driving this mapper through the
    /// shared [`IiSearch`] engine. The restart RNG stream
    /// (`seed ^ 0x5E11`) is created once and carried across IIs exactly as
    /// the pre-engine loop did; the Rewire-specific counters accumulate in
    /// [`RewireAttempt::rstats`].
    pub fn ii_attempt(&self, limits: &MapLimits) -> RewireAttempt<'_> {
        RewireAttempt {
            mapper: self,
            // The initial mapping only needs to be cheap and roughly
            // sensible — Rewire amends it — so cap PF*'s per-placement
            // evaluations instead of using its exhaustive evaluation mode.
            pf: PathFinderMapper::with_config(rewire_mappers::PathFinderConfig {
                max_full_evals: 12,
                ..Default::default()
            }),
            rng: StdRng::seed_from_u64(limits.seed ^ 0x5E11),
            rstats: RewireStats::default(),
        }
    }

    /// Races `portfolio_width` independently seeded restart workers over
    /// one II's budget and reduces their results deterministically.
    ///
    /// Each worker owns a seed derived only from `(limits.seed, ii, rank)`
    /// — never from thread identity or timing — so every worker's search
    /// trajectory is reproducible in isolation. All workers are joined in
    /// rank order and the winner among same-II successes is the mapping
    /// with the fewest occupied MRRG cells, ties broken by lowest worker
    /// rank. Thread scheduling can therefore change *how fast* an answer
    /// arrives, but (whenever the attempt caps rather than the wall-clock
    /// deadline bind) not *which* answer is returned.
    #[allow(clippy::too_many_arguments)]
    fn portfolio_amend(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        initial: &Mapping,
        deadline: Instant,
        ii: u32,
        limits: &MapLimits,
        rstats: &mut RewireStats,
    ) -> Option<Mapping> {
        let width = self.config.portfolio_width;
        // Workers are fresh threads with no metric scope of their own:
        // carry the run's scope and span path across the spawn so their
        // counters and timers land under the same `mapper/kernel` scope as
        // the serial path.
        let metric_scope = obs::current_scope();
        let parent_span = obs::current_span_path();
        // Resolve (or build) this thread's hop-distance oracle once and
        // hand the Arc to every worker: the workers' routers then prune
        // from the shared table instead of re-running the all-pairs BFS
        // on each fresh thread.
        let distances = rewire_mrrg::thread_distance_table(cgra);
        let results: Vec<(Option<Mapping>, RewireStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..width)
                .map(|rank| {
                    let metric_scope = metric_scope.clone();
                    let parent_span = parent_span.clone();
                    let distances = std::sync::Arc::clone(&distances);
                    scope.spawn(move || {
                        let _scope = obs::scope(metric_scope);
                        let _span = obs::span_under(&parent_span, "worker");
                        rewire_mrrg::install_thread_distance_table(distances);
                        let mut rng =
                            StdRng::seed_from_u64(worker_seed(limits.seed, ii, rank as u64));
                        let mut stats = RewireStats::default();
                        let mut amended = None;
                        let mut restarts = 0;
                        while amended.is_none()
                            && restarts < self.config.max_restarts_per_ii
                            && Instant::now() < deadline
                        {
                            restarts += 1;
                            if restarts > 1 {
                                obs::counter("rewire.restarts").incr();
                            }
                            // Rank 0's first restart mirrors the serial
                            // path (no diversification); every other
                            // worker diversifies from its first attempt so
                            // the portfolio actually spreads the search.
                            amended = self.amend_with(
                                dfg,
                                cgra,
                                initial.clone(),
                                deadline,
                                &mut rng,
                                &mut stats,
                                rank > 0 || restarts > 1,
                            );
                        }
                        (amended, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("portfolio worker panicked"))
                .collect()
        });
        let mut best: Option<(usize, usize, Mapping)> = None;
        for (rank, (mapping, stats)) in results.into_iter().enumerate() {
            rstats.merge(&stats);
            if let Some(m) = mapping {
                let cost = m.occupancy().used_cells();
                if best
                    .as_ref()
                    .is_none_or(|(bc, br, _)| (cost, rank) < (*bc, *br))
                {
                    best = Some((cost, rank, m));
                }
            }
        }
        best.map(|(_, _, m)| m)
    }

    /// Amends an initial (possibly invalid) mapping at its II. This is the
    /// heart of Rewire (Alg. 1 lines 5–15) and is public so that users can
    /// pair Rewire with their own initial-mapping producer.
    pub fn amend(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        mapping: Mapping,
        deadline: Instant,
        rng: &mut StdRng,
        stats: &mut RewireStats,
    ) -> Option<Mapping> {
        self.amend_with(dfg, cgra, mapping, deadline, rng, stats, false)
    }

    /// [`amend`](RewireMapper::amend) with optional search diversification
    /// (randomised cluster sizes and candidate ordering), used by the
    /// driver's randomised restarts.
    #[allow(clippy::too_many_arguments)]
    fn amend_with(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        mut mapping: Mapping,
        deadline: Instant,
        rng: &mut StdRng,
        stats: &mut RewireStats,
        diversify: bool,
    ) -> Option<Mapping> {
        // Unmap every ill node: unplaced stays unplaced, congested/unrouted
        // placements are released together with their routes.
        loop {
            let ill = mapping.ill_mapped_nodes(dfg);
            let placed_ill: Vec<NodeId> =
                ill.into_iter().filter(|&n| mapping.is_placed(n)).collect();
            if placed_ill.is_empty() {
                break;
            }
            for n in placed_ill {
                mapping.unplace(dfg, n);
            }
        }

        let mut attempts_this_ii = 0u64;
        loop {
            let unmapped = mapping.unplaced_nodes(dfg);
            if unmapped.is_empty() {
                return mapping.is_complete(dfg).then_some(mapping);
            }
            if Instant::now() >= deadline {
                return None;
            }

            let size = if diversify {
                use rand::Rng as _;
                rng.random_range(1..=self.config.initial_cluster_size + 2)
            } else {
                self.config.initial_cluster_size
            }
            .min(unmapped.len())
            .max(1);
            let mut cluster = Cluster::select(dfg, &unmapped, size, rng);
            loop {
                if Instant::now() >= deadline
                    || attempts_this_ii >= self.config.max_cluster_attempts
                {
                    return None;
                }
                attempts_this_ii += 1;
                stats.clusters_attempted += 1;
                let binding = match self.try_cluster(
                    dfg,
                    cgra,
                    &mut mapping,
                    &cluster,
                    deadline,
                    stats,
                    diversify,
                    rng,
                ) {
                    Ok(()) => break, // back to the outer loop
                    Err(binding) => binding,
                };
                if cluster.len() >= self.config.alpha {
                    return None; // Alg. 1 line 7/15: II must increase
                }
                // Grow the cluster (Alg. 1 line 13). When the intersection
                // was empty, the failing node's requirement *sources* are
                // the binding mapped anchors — mutually inconsistent
                // placements that must be re-placed jointly with the
                // cluster, so they are preferred. Otherwise grow by the
                // nearest connected node; mapped nodes are eligible too and
                // get unmapped on selection.
                let pool: Vec<NodeId> = if binding.is_empty() {
                    dfg.node_ids().filter(|n| !cluster.contains(*n)).collect()
                } else {
                    binding
                };
                match cluster.grow(dfg, &pool) {
                    Some(n) => {
                        if mapping.is_placed(n) {
                            mapping.unplace(dfg, n);
                        }
                        stats.cluster_growths += 1;
                    }
                    None => return None,
                }
            }
        }
    }

    /// One cluster attempt: propagation → intersection → Algorithm 2.
    #[allow(clippy::too_many_arguments)]
    fn try_cluster(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        mapping: &mut Mapping,
        cluster: &Cluster,
        deadline: Instant,
        stats: &mut RewireStats,
        diversify: bool,
        rng: &mut StdRng,
    ) -> Result<(), Vec<NodeId>> {
        let ii = mapping.ii();
        let members = cluster.topo_sorted(dfg);
        let reqs: Vec<Vec<Requirement>> = members
            .iter()
            .map(|&v| requirements_for(dfg, mapping, v))
            .collect();

        // Seeds: one wave per distinct requirement source/direction, plus
        // delivery-neighbour seeds on the backward side.
        let mut seeds: Vec<PropagationSeed> = Vec::new();
        let push_seed = |s: PropagationSeed, seeds: &mut Vec<PropagationSeed>| {
            if !seeds.iter().any(|x| {
                x.source == s.source
                    && x.direction == s.direction
                    && x.pe == s.pe
                    && x.cycle == s.cycle
            }) {
                seeds.push(s);
            }
        };
        for rs in &reqs {
            for r in rs {
                match *r {
                    Requirement::Direct {
                        source,
                        direction: Direction::Forward,
                        wave,
                        ..
                    }
                    | Requirement::Transitive {
                        source,
                        direction: Direction::Forward,
                        wave,
                        ..
                    } => {
                        let (pe, _) = mapping.placement(source).expect("source is mapped");
                        push_seed(
                            PropagationSeed {
                                source,
                                direction: Direction::Forward,
                                pe,
                                cycle: wave,
                                wave,
                            },
                            &mut seeds,
                        );
                    }
                    Requirement::Direct {
                        source,
                        direction: Direction::Backward,
                        wave,
                        ..
                    }
                    | Requirement::Transitive {
                        source,
                        direction: Direction::Backward,
                        wave,
                        ..
                    } => {
                        let (pe, _) = mapping.placement(source).expect("source is mapped");
                        push_seed(
                            PropagationSeed {
                                source,
                                direction: Direction::Backward,
                                pe,
                                cycle: wave,
                                wave,
                            },
                            &mut seeds,
                        );
                        // A value may also be *delivered* into the consumer
                        // from an upstream neighbour during the arrival
                        // cycle, if that link cell is free.
                        let slot = mapping.mrrg().slot_of(wave);
                        for link in cgra.links_to(pe) {
                            let cell = rewire_mrrg::Resource::Link {
                                link: link.id(),
                                slot,
                            };
                            if mapping.occupancy().is_free(cell) {
                                push_seed(
                                    PropagationSeed {
                                        source,
                                        direction: Direction::Backward,
                                        pe: link.src(),
                                        cycle: wave,
                                        wave,
                                    },
                                    &mut seeds,
                                );
                            }
                        }
                    }
                }
            }
        }

        let rounds = self.propagation_rounds(dfg, mapping, &members, &seeds, ii);
        let store = propagate(cgra, mapping.occupancy(), &seeds, rounds);
        stats.tuples_generated += store.num_tuples();

        let horizon = self.exec_horizon(dfg, mapping, ii);
        let debug = std::env::var_os("REWIRE_DEBUG").is_some();
        let mut candidates = Vec::with_capacity(members.len());
        for (v, rs) in members.iter().zip(&reqs) {
            let c = pcandidates(dfg, cgra, mapping, &store, *v, rs, &self.config, horizon);
            if debug {
                eprintln!(
                    "  member {} reqs={} cands={}",
                    dfg.node(*v).name(),
                    rs.len(),
                    c.options.len()
                );
            }
            if c.options.is_empty() {
                if debug {
                    eprintln!(
                        "  -> empty candidates for {}; reqs: {rs:?}",
                        dfg.node(*v).name()
                    );
                }
                // The requirement sources are the binding anchors.
                let sources: Vec<NodeId> = rs
                    .iter()
                    .map(|r| match *r {
                        Requirement::Direct { source, .. }
                        | Requirement::Transitive { source, .. } => source,
                    })
                    .filter(|s| !cluster.contains(*s))
                    .collect();
                return Err(sources);
            }
            candidates.push(c);
        }
        if diversify {
            use rand::seq::SliceRandom as _;
            for c in &mut candidates {
                c.options.shuffle(rng);
            }
        }
        // Most-constrained-first ordering (stable w.r.t. the topological
        // order on ties): enumerating scarce-candidate members near the
        // root lets the execution-cycle constraints prune exponentially
        // earlier on large clusters. Algorithm 2's pairwise checks are
        // order-independent.
        candidates.sort_by_key(|c| c.options.len());

        let before = (stats.verifications, stats.verification_successes);
        let mut emptied = None;
        let ok = ClusterPlacer::new(dfg, cgra, &self.config).place_with_diagnosis(
            mapping,
            &candidates,
            deadline,
            stats,
            &mut emptied,
        );
        if debug {
            eprintln!(
                "  cluster |U|={} -> {} (verif {}/{})",
                members.len(),
                ok,
                stats.verification_successes - before.1,
                stats.verifications - before.0
            );
        }
        // Note: when the arc pass empties a member (`emptied`), growing by
        // that member's anchors turned out to over-rip on large fabrics;
        // nearest-node growth recovers better, so the diagnosis is only
        // used for debugging.
        let _ = emptied;
        if ok {
            Ok(())
        } else {
            Err(Vec::new())
        }
    }

    /// The paper's round heuristic: 3× the maximum cycle difference between
    /// Parents(U) and Children(U); 5× the cluster's longest path when one
    /// side is empty; clamped for sanity.
    fn propagation_rounds(
        &self,
        dfg: &Dfg,
        mapping: &Mapping,
        members: &[NodeId],
        seeds: &[PropagationSeed],
        ii: u32,
    ) -> u32 {
        let fwd: Vec<u32> = seeds
            .iter()
            .filter(|s| s.direction == Direction::Forward)
            .map(|s| s.cycle)
            .collect();
        let bwd: Vec<u32> = seeds
            .iter()
            .filter(|s| s.direction == Direction::Backward)
            .map(|s| s.cycle)
            .collect();
        let _ = mapping;
        let rounds = if !fwd.is_empty() && !bwd.is_empty() {
            let spread = bwd
                .iter()
                .flat_map(|&b| fwd.iter().map(move |&f| b.abs_diff(f)))
                .max()
                .unwrap_or(1)
                .max(1);
            self.config.round_spread_factor * spread
        } else {
            let path = dfg.longest_path_within(members).max(1);
            self.config.round_path_factor * path
        };
        rounds.clamp(ii.max(4), self.config.max_rounds)
    }

    /// Upper bound on cluster execution cycles: past the latest mapped
    /// operation plus slack for routing detours.
    fn exec_horizon(&self, dfg: &Dfg, mapping: &Mapping, ii: u32) -> u32 {
        let latest = dfg
            .node_ids()
            .filter_map(|n| mapping.placement(n).map(|(_, t)| t))
            .max()
            .unwrap_or(0);
        latest + 2 * ii + 4
    }
}

/// Rewire driven by the shared engine: per II, PF*'s initial mapping is
/// amended by randomised restarts (serial or portfolio-parallel) within the
/// engine's deadline. Accumulates the Rewire-specific counters in
/// [`rstats`](RewireAttempt::rstats) across the whole II sweep.
pub struct RewireAttempt<'m> {
    mapper: &'m RewireMapper,
    pf: PathFinderMapper,
    rng: StdRng,
    /// Rewire-specific counters accumulated over every attempted II.
    pub rstats: RewireStats,
}

impl IiAttempt for RewireAttempt<'_> {
    fn attempt(
        &mut self,
        dfg: &Dfg,
        cgra: &Cgra,
        ctx: &AttemptCtx<'_>,
        events: &mut Emitter<'_>,
    ) -> AttemptOutcome {
        let ii = ctx.ii;
        obs::flight_event(FlightEvent::AttemptPhase {
            phase: "initial",
            ii,
        });
        let initial = {
            let _initial_span = obs::span("initial");
            self.pf.initial_mapping(dfg, cgra, ii, ctx.limits.seed)
        };
        let Some(initial) = initial else {
            return AttemptOutcome::failed(0, 0); // no modulo schedule at this II
        };
        let initial_overuse = initial.total_overuse() as u64;
        events.emit(MapEvent::NegotiationRound {
            ii,
            iteration: 0,
            ill_nodes: initial.ill_mapped_nodes(dfg).len(),
            overuse: initial_overuse,
        });
        // Randomised restarts within the per-II budget: a cluster
        // amendment that dead-ends (greedy commits can paint into corners)
        // is retried from the initial mapping with fresh random cluster
        // selections — the paper's counterpart is its one-hour-per-II
        // exploration budget.
        let before = self.rstats.clusters_attempted;
        let stats_before = self.rstats;
        obs::flight_event(FlightEvent::AttemptPhase { phase: "amend", ii });
        let amended = {
            let _amend_span = obs::span("amend");
            if self.mapper.config.portfolio_width > 1 {
                self.mapper.portfolio_amend(
                    dfg,
                    cgra,
                    &initial,
                    ctx.deadline,
                    ii,
                    ctx.limits,
                    &mut self.rstats,
                )
            } else {
                let mut amended = None;
                let mut restarts = 0;
                while amended.is_none()
                    && restarts < self.mapper.config.max_restarts_per_ii
                    && Instant::now() < ctx.deadline
                {
                    restarts += 1;
                    if restarts > 1 {
                        obs::counter("rewire.restarts").incr();
                    }
                    // Later restarts diversify cluster sizes and candidate
                    // order to escape greedy dead-ends.
                    amended = self.mapper.amend_with(
                        dfg,
                        cgra,
                        initial.clone(),
                        ctx.deadline,
                        &mut self.rng,
                        &mut self.rstats,
                        restarts > 1,
                    );
                }
                amended
            }
        };
        mirror_rstats_delta(&stats_before, &self.rstats);
        let iterations = self.rstats.clusters_attempted - before;
        AttemptOutcome {
            overuse: if amended.is_some() {
                0
            } else {
                initial_overuse
            },
            mapping: amended,
            iterations,
            verdict: None,
        }
    }
}

impl Mapper for RewireMapper {
    fn name(&self) -> &'static str {
        "Rewire"
    }

    fn map_with_events(
        &self,
        dfg: &Dfg,
        cgra: &Cgra,
        limits: &MapLimits,
        events: &mut dyn EventSink,
    ) -> MapOutcome {
        self.map_with_stats_and_events(dfg, cgra, limits, events).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;
    use rewire_dfg::kernels;

    #[test]
    fn maps_a_small_chain_at_mii() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("chain");
        let mut prev = dfg.add_node("ld", rewire_arch::OpKind::Load);
        for i in 0..4 {
            let n = dfg.add_node(format!("a{i}"), rewire_arch::OpKind::Add);
            dfg.add_edge(prev, n, 0).unwrap();
            prev = n;
        }
        let out = RewireMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        let m = out.mapping.expect("trivial chain maps");
        assert_eq!(out.stats.achieved_ii, Some(1));
        assert!(m.is_valid(&dfg, &cgra));
    }

    #[test]
    fn maps_gesummv_and_validates() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::gesummv();
        let (out, rstats) = RewireMapper::new().map_with_stats(
            &dfg,
            &cgra,
            &MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(3)),
        );
        let m = out.mapping.expect("gesummv maps on 4x4/r4");
        assert!(m.is_valid(&dfg, &cgra));
        assert!(rstats.clusters_attempted >= 1);
        assert!(rstats.tuples_generated > 0);
    }

    #[test]
    fn unmappable_dfg_fails_cleanly() {
        let cgra = rewire_arch::CgraBuilder::new(2, 2).build().unwrap();
        let mut dfg = Dfg::new("needs-mem");
        dfg.add_node("ld", rewire_arch::OpKind::Load);
        let out = RewireMapper::new().map(&dfg, &cgra, &MapLimits::fast());
        assert!(out.mapping.is_none());
        assert_eq!(out.stats.iis_explored, 0);
    }

    #[test]
    fn portfolio_maps_and_is_deterministic() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        // Portfolio determinism is only guaranteed when deterministic caps
        // bind instead of the wall-clock deadline (DESIGN.md §6b), so cap
        // the restarts explicitly — the default (unbounded restarts) leaves
        // the deadline binding, which flakes on slow or loaded machines.
        let limits = MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(30));
        let config = RewireConfig {
            portfolio_width: 3,
            max_restarts_per_ii: 3,
            ..Default::default()
        };
        let a = RewireMapper::with_config(config.clone()).map(&dfg, &cgra, &limits);
        let b = RewireMapper::with_config(config).map(&dfg, &cgra, &limits);
        assert!(a.mapping.is_some(), "fir maps on 4x4/r4 under a portfolio");
        assert_eq!(a.stats.achieved_ii, b.stats.achieved_ii);
    }

    #[test]
    fn metrics_cover_the_portfolio_workers() {
        let cgra = presets::paper_4x4_r4();
        // A uniquely named kernel gives this test its own metric scope, so
        // parallel tests mapping the stock kernels cannot interfere.
        let mut dfg = Dfg::new("rewire-obs-probe");
        let mut prev = dfg.add_node("ld", rewire_arch::OpKind::Load);
        for i in 0..4 {
            let n = dfg.add_node(format!("a{i}"), rewire_arch::OpKind::Add);
            dfg.add_edge(prev, n, 0).unwrap();
            prev = n;
        }
        let config = RewireConfig {
            portfolio_width: 2,
            ..Default::default()
        };
        let out = RewireMapper::with_config(config).map(&dfg, &cgra, &MapLimits::fast());
        assert!(out.mapping.is_some());

        let snap = obs::metrics().snapshot();
        let scope = snap
            .scopes
            .get("Rewire/rewire-obs-probe")
            .expect("engine scoped the run as mapper/kernel");
        assert_eq!(scope.counters.get("engine.mapped"), Some(&1));
        for path in [
            "run",
            "run/attempt",
            "run/attempt/initial",
            "run/attempt/amend",
        ] {
            assert!(
                scope.spans.contains_key(path),
                "missing span {path:?}; have {:?}",
                scope.spans.keys().collect::<Vec<_>>()
            );
        }
        // The portfolio workers run on fresh threads; their timers must
        // still land under the run's scope and span path.
        let worker = scope
            .spans
            .get("run/attempt/amend/worker")
            .expect("worker spans carried across the spawn");
        assert_eq!(worker.count, 2, "one span per portfolio worker");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cgra = presets::paper_4x4_r4();
        let dfg = kernels::fir();
        let limits = MapLimits::fast().with_ii_time_budget(std::time::Duration::from_secs(30));
        let a = RewireMapper::new().map(&dfg, &cgra, &limits);
        let b = RewireMapper::new().map(&dfg, &cgra, &limits);
        assert_eq!(a.stats.achieved_ii, b.stats.achieved_ii);
    }
}
