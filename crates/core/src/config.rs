//! Rewire tuning knobs.

/// Configuration of the Rewire mapper.
///
/// Defaults follow the paper: cluster size capped at α = 15, propagation
/// rounds = 3× the parent/child cycle spread (5× the cluster's longest path
/// when one side is empty).
#[derive(Clone, Debug)]
pub struct RewireConfig {
    /// Maximum cluster size α (the paper limits |U| to 15).
    pub alpha: usize,
    /// Size of the initially selected connected cluster.
    pub initial_cluster_size: usize,
    /// Propagation-round multiplier on the parent/child cycle spread.
    pub round_spread_factor: u32,
    /// Propagation-round multiplier on the cluster's longest path, used
    /// when the cluster has no mapped parents or no mapped children.
    pub round_path_factor: u32,
    /// Hard cap on propagation rounds (keeps the tuple store bounded).
    pub max_rounds: u32,
    /// Hard cap on `Placement(U)` combinations verified per cluster
    /// attempt (the paper relies on its per-II time limit; this keeps unit
    /// tests bounded too).
    pub max_verifications: u64,
    /// Keep at most this many `(PE, cycle)` candidates per cluster node,
    /// earliest execution cycles first.
    pub max_candidates_per_node: usize,
    /// Hard cap on cluster-amendment attempts per II.
    pub max_cluster_attempts: u64,
    /// Hard cap on Algorithm 2 enumeration steps per cluster attempt —
    /// combinatorial blow-ups fail fast and grow the cluster instead.
    pub max_search_steps: u64,
    /// Randomised amendment restarts per II (within the time budget).
    /// In portfolio mode this cap applies to **each** worker.
    pub max_restarts_per_ii: u32,
    /// Number of independently seeded restart workers racing each II
    /// budget on separate OS threads. 1 (the default) keeps the original
    /// single-threaded restart loop; K > 1 runs K deterministic seed
    /// streams and reduces their successes by `(cost, worker rank)`, so
    /// the chosen mapping does not depend on thread scheduling.
    pub portfolio_width: usize,
}

impl Default for RewireConfig {
    fn default() -> Self {
        Self {
            alpha: 15,
            initial_cluster_size: 3,
            round_spread_factor: 3,
            round_path_factor: 5,
            max_rounds: 48,
            max_verifications: 400,
            max_candidates_per_node: 256,
            max_cluster_attempts: 200,
            max_search_steps: 150_000,
            max_restarts_per_ii: u32::MAX,
            portfolio_width: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = RewireConfig::default();
        assert_eq!(c.alpha, 15);
        assert_eq!(c.round_spread_factor, 3);
        assert_eq!(c.round_path_factor, 5);
    }
}
