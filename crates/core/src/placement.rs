//! Multi-node mapping generation (Algorithm 2 of the paper).
//!
//! Candidates per node are sorted by execution cycle; combinations are
//! enumerated with an index vector whose partial assignments are pruned by
//! the execution-cycle constraints among cluster members ("we check the
//! cycle execution constraints from v₀ to v_{i−1} if it has any data
//! dependency with v_i"), plus FU-cell disjointness and a geometric reach
//! check. Surviving `Placement(U)` combinations are verified by exclusive
//! routing of every incident edge; the first verified placement is
//! committed.

use crate::intersect::PlacementCandidates;
use crate::{RewireConfig, RewireStats};
use rewire_arch::Cgra;
use rewire_dfg::{Dfg, EdgeId, NodeId};
use rewire_mappers::Mapping;
use rewire_mrrg::{Router, UnitCost};
use rewire_obs::{self as obs, FlightEvent};
use std::time::Instant;

/// Algorithm 2: searches for a routable placement of a whole cluster.
#[derive(Debug)]
pub struct ClusterPlacer<'a> {
    dfg: &'a Dfg,
    cgra: &'a Cgra,
    config: &'a RewireConfig,
}

impl<'a> ClusterPlacer<'a> {
    /// Creates a placer for one cluster attempt.
    pub fn new(dfg: &'a Dfg, cgra: &'a Cgra, config: &'a RewireConfig) -> Self {
        Self { dfg, cgra, config }
    }

    /// Enumerates `Placement(U)` combinations and commits the first one
    /// that verifies. `candidates` must be in cluster topological order.
    /// Returns `true` on success (the mapping now contains the cluster's
    /// placements and routes).
    pub fn place(
        &self,
        mapping: &mut Mapping,
        candidates: &[PlacementCandidates],
        deadline: Instant,
        stats: &mut RewireStats,
    ) -> bool {
        self.place_with_diagnosis(mapping, candidates, deadline, stats, &mut None)
    }

    /// [`place`](ClusterPlacer::place), additionally reporting through
    /// `emptied` which member's candidate list the arc-consistency pass
    /// proved unsupportable (its anchors are the nodes to rip next).
    pub fn place_with_diagnosis(
        &self,
        mapping: &mut Mapping,
        candidates: &[PlacementCandidates],
        deadline: Instant,
        stats: &mut RewireStats,
        emptied: &mut Option<rewire_dfg::NodeId>,
    ) -> bool {
        if candidates.iter().any(|c| c.options.is_empty()) {
            return false;
        }
        // Arc-consistency pre-pass: drop candidates without pairwise
        // support along cluster-internal edges. This both detects
        // unsatisfiable member pairs immediately (instead of burning the
        // search budget) and shrinks the enumeration space.
        let mut candidates = candidates.to_vec();
        if let Err(victim) = self.arc_reduce(mapping, &mut candidates) {
            *emptied = Some(victim);
            return false;
        }
        let candidates = &candidates[..];
        let budget = stats.verifications + self.config.max_verifications;
        let mut chosen: Vec<usize> = Vec::with_capacity(candidates.len());
        self.search(
            mapping,
            candidates,
            &mut chosen,
            deadline,
            stats,
            &mut 0,
            budget,
        )
    }

    #[allow(clippy::too_many_arguments)]
    /// AC-3-style reduction over cluster-internal dependency edges: a
    /// candidate of one member survives only if some candidate of each
    /// connected member is timing- and reach-compatible with it. Returns
    /// the emptied member when a candidate list runs dry (no joint
    /// placement exists at all).
    fn arc_reduce(
        &self,
        mapping: &Mapping,
        candidates: &mut [crate::intersect::PlacementCandidates],
    ) -> Result<(), rewire_dfg::NodeId> {
        let ii = mapping.ii();
        loop {
            let mut changed = false;
            for i in 0..candidates.len() {
                for j in 0..candidates.len() {
                    if i == j {
                        continue;
                    }
                    let (vi, vj) = (candidates[i].node, candidates[j].node);
                    // Directed edges between the two members, as
                    // (i_is_source, distance).
                    let pair_edges: Vec<(bool, u32)> = self
                        .dfg
                        .out_edges(vi)
                        .filter(|e| e.dst() == vj)
                        .map(|e| (true, e.distance()))
                        .chain(
                            self.dfg
                                .out_edges(vj)
                                .filter(|e| e.dst() == vi)
                                .map(|e| (false, e.distance())),
                        )
                        .collect();
                    if pair_edges.is_empty() {
                        continue;
                    }
                    let support = candidates[j].options.clone();
                    let before = candidates[i].options.len();
                    let cgra = self.cgra;
                    candidates[i].options.retain(|&(pe_i, c_i)| {
                        support.iter().any(|&(pe_j, c_j)| {
                            pair_edges.iter().all(|&(i_is_src, dist)| {
                                let (pe_s, c_s, pe_d, c_d) = if i_is_src {
                                    (pe_i, c_i, pe_j, c_j)
                                } else {
                                    (pe_j, c_j, pe_i, c_i)
                                };
                                let arrive = c_d as i64 + (dist * ii) as i64;
                                let steps = arrive - (c_s as i64 + 1);
                                steps >= 0 && (steps + 1) >= cgra.distance(pe_s, pe_d) as i64
                            })
                        })
                    });
                    if candidates[i].options.is_empty() {
                        return Err(candidates[i].node);
                    }
                    changed |= candidates[i].options.len() != before;
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    /// Depth-first enumeration with constraint pruning. `chosen[i]` is the
    /// option index of `candidates[i]`.
    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        mapping: &mut Mapping,
        candidates: &[PlacementCandidates],
        chosen: &mut Vec<usize>,
        deadline: Instant,
        stats: &mut RewireStats,
        steps: &mut u64,
        verification_budget: u64,
    ) -> bool {
        let depth = chosen.len();
        if depth == candidates.len() {
            return self.verify_and_commit(mapping, candidates, chosen, stats);
        }
        for idx in 0..candidates[depth].options.len() {
            *steps += 1;
            if stats.verifications >= verification_budget
                || *steps >= self.config.max_search_steps
                || (steps.is_multiple_of(64) && Instant::now() >= deadline)
            {
                return false;
            }
            if !self.consistent(mapping, candidates, chosen, depth, idx) {
                stats.combinations_pruned += 1;
                continue;
            }
            chosen.push(idx);
            if self.search(
                mapping,
                candidates,
                chosen,
                deadline,
                stats,
                steps,
                verification_budget,
            ) {
                return true;
            }
            chosen.pop();
        }
        false
    }

    /// Checks candidate `idx` of node `depth` against all previously
    /// chosen members: execution-order constraints on connecting edges, FU
    /// cell disjointness, and reachability of the fixed-length routes.
    fn consistent(
        &self,
        mapping: &Mapping,
        candidates: &[PlacementCandidates],
        chosen: &[usize],
        depth: usize,
        idx: usize,
    ) -> bool {
        let ii = mapping.ii();
        let v = candidates[depth].node;
        let (pe_v, c_v) = candidates[depth].options[idx];
        let slot_v = mapping.mrrg().slot_of(c_v);

        for (j, &cj) in chosen.iter().enumerate() {
            let u = candidates[j].node;
            let (pe_u, c_u) = candidates[j].options[cj];
            // One operation per FU cell.
            if pe_u == pe_v && mapping.mrrg().slot_of(c_u) == slot_v {
                return false;
            }
            // Edges between u and v: timing and geometric reach (steps + 1
            // accounts for the delivery hop).
            for e in self.dfg.out_edges(u).filter(|e| e.dst() == v) {
                let arrive = c_v as i64 + (e.distance() * ii) as i64;
                let steps = arrive - (c_u as i64 + 1);
                if steps < 0 || (steps + 1) < self.cgra.distance(pe_u, pe_v) as i64 {
                    return false;
                }
            }
            for e in self.dfg.out_edges(v).filter(|e| e.dst() == u) {
                let arrive = c_u as i64 + (e.distance() * ii) as i64;
                let steps = arrive - (c_v as i64 + 1);
                if steps < 0 || (steps + 1) < self.cgra.distance(pe_v, pe_u) as i64 {
                    return false;
                }
            }
        }
        true
    }

    /// Places the full combination and routes every incident edge with the
    /// exclusive cost model. On any routing failure everything is rolled
    /// back.
    fn verify_and_commit(
        &self,
        mapping: &mut Mapping,
        candidates: &[PlacementCandidates],
        chosen: &[usize],
        stats: &mut RewireStats,
    ) -> bool {
        stats.verifications += 1;
        let members: Vec<NodeId> = candidates.iter().map(|c| c.node).collect();
        for (cand, &idx) in candidates.iter().zip(chosen) {
            let (pe, c) = cand.options[idx];
            mapping.place(cand.node, pe, c);
        }

        // Route every edge with at least one endpoint in the cluster whose
        // endpoints are both placed, deterministically ordered.
        let mut edges: Vec<EdgeId> = Vec::new();
        for &v in &members {
            for e in self.dfg.in_edges(v).chain(self.dfg.out_edges(v)) {
                if !edges.contains(&e.id())
                    && mapping.is_placed(e.src())
                    && mapping.is_placed(e.dst())
                    && mapping.route(e.id()).is_none()
                {
                    edges.push(e.id());
                }
            }
        }
        edges.sort_unstable();

        let mrrg = mapping.mrrg().clone();
        let router = Router::new(self.cgra, &mrrg);
        let mut routed: Vec<EdgeId> = Vec::new();
        for e in &edges {
            let Some(req) = mapping.request_for(self.dfg, *e) else {
                continue;
            };
            match router.route(mapping.occupancy(), &req, &UnitCost) {
                Ok(route) => {
                    mapping.set_route(*e, route);
                    routed.push(*e);
                }
                Err(err) => {
                    let ed = self.dfg.edge(*e);
                    obs::flight_event(FlightEvent::RouteFailed {
                        edge: (ed.src().index() as u32, ed.dst().index() as u32),
                        ii: mapping.ii(),
                        reason: err.label(),
                    });
                    if std::env::var_os("REWIRE_VDEBUG").is_some() && stats.verifications <= 40 {
                        eprintln!("    verify fail: {err}");
                    }
                    // Rollback.
                    for r in routed {
                        mapping.clear_route(r);
                    }
                    for &v in &members {
                        mapping.unplace(self.dfg, v);
                    }
                    return false;
                }
            }
        }
        stats.verification_successes += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, Coord, OpKind, PeId};
    use rewire_mrrg::Mrrg;
    use std::time::Duration;

    fn pe(cgra: &Cgra, r: u16, c: u16) -> PeId {
        cgra.pe_at(Coord::new(r, c)).unwrap().id()
    }

    fn deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn places_a_two_node_cluster() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        let c = dfg.add_node("c", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        dfg.add_edge(b, c, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, pe(&cgra, 0, 0), 0);

        let config = RewireConfig::default();
        let placer = ClusterPlacer::new(&dfg, &cgra, &config);
        let cands = vec![
            PlacementCandidates {
                node: b,
                options: vec![(pe(&cgra, 0, 1), 1)],
            },
            PlacementCandidates {
                node: c,
                options: vec![(pe(&cgra, 0, 2), 2), (pe(&cgra, 0, 2), 3)],
            },
        ];
        let mut stats = RewireStats::default();
        assert!(placer.place(&mut m, &cands, deadline(), &mut stats));
        assert!(m.is_complete(&dfg));
        assert!(m.is_valid(&dfg, &cgra));
        assert_eq!(stats.verification_successes, 1);
    }

    #[test]
    fn execution_cycle_constraints_prune() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);

        let config = RewireConfig::default();
        let placer = ClusterPlacer::new(&dfg, &cgra, &config);
        // b's only option executes BEFORE a's: must be pruned, no
        // verification should even run.
        let cands = vec![
            PlacementCandidates {
                node: a,
                options: vec![(pe(&cgra, 0, 0), 5)],
            },
            PlacementCandidates {
                node: b,
                options: vec![(pe(&cgra, 0, 1), 2)],
            },
        ];
        let mut stats = RewireStats::default();
        let mut emptied = None;
        assert!(!placer.place_with_diagnosis(&mut m, &cands, deadline(), &mut stats, &mut emptied));
        assert_eq!(stats.verifications, 0, "never reaches routing");
        // The arc-consistency pre-pass proves the pair unsatisfiable and
        // names the unsupportable member.
        assert_eq!(emptied, Some(a));
        assert!(!m.is_placed(a), "rollback leaves nothing placed");
    }

    #[test]
    fn fu_conflicts_prune() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        // No edge between them: only the FU constraint applies.
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);
        let config = RewireConfig::default();
        let placer = ClusterPlacer::new(&dfg, &cgra, &config);
        let spot = pe(&cgra, 1, 1);
        let cands = vec![
            PlacementCandidates {
                node: a,
                options: vec![(spot, 0)],
            },
            PlacementCandidates {
                node: b,
                // Cycle 2 has the same slot (2 % 2 == 0): conflict; cycle 1
                // is fine.
                options: vec![(spot, 2), (spot, 1)],
            },
        ];
        let mut stats = RewireStats::default();
        assert!(placer.place(&mut m, &cands, deadline(), &mut stats));
        assert_eq!(m.placement(b).unwrap().1, 1);
    }

    #[test]
    fn geometric_reach_prunes_before_verification() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 4);
        let mut m = Mapping::new(&dfg, &mrrg);
        let config = RewireConfig::default();
        let placer = ClusterPlacer::new(&dfg, &cgra, &config);
        // b one cycle after a but on the far corner: unreachable even with
        // the delivery hop.
        let cands = vec![
            PlacementCandidates {
                node: a,
                options: vec![(pe(&cgra, 0, 0), 0)],
            },
            PlacementCandidates {
                node: b,
                options: vec![(pe(&cgra, 3, 3), 1)],
            },
        ];
        let mut stats = RewireStats::default();
        assert!(!placer.place(&mut m, &cands, deadline(), &mut stats));
        assert_eq!(stats.verifications, 0);
    }

    #[test]
    fn failed_verification_rolls_back_and_continues() {
        let cgra = presets::paper_4x4_r1(); // single register: easy to block
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node("a", OpKind::Add);
        let b = dfg.add_node("b", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 1);
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, pe(&cgra, 0, 0), 0);
        // Block the single register and one link out of a's PE so some
        // combination fails while another succeeds.
        let config = RewireConfig::default();
        let placer = ClusterPlacer::new(&dfg, &cgra, &config);
        let cands = vec![PlacementCandidates {
            node: b,
            // Too far first (verification fails), then adjacent.
            options: vec![(pe(&cgra, 3, 3), 1), (pe(&cgra, 0, 1), 1)],
        }];
        let mut stats = RewireStats::default();
        assert!(placer.place(&mut m, &cands, deadline(), &mut stats));
        assert_eq!(m.placement(b).unwrap().0, pe(&cgra, 0, 1));
        assert!(stats.verifications >= 1);
        assert!(m.is_valid(&dfg, &cgra));
    }

    #[test]
    fn respects_verification_cap() {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("t");
        let a = dfg.add_node("a", OpKind::Add);
        let mrrg = Mrrg::new(&cgra, 2);
        let mut m = Mapping::new(&dfg, &mrrg);
        let config = RewireConfig {
            max_verifications: 0,
            ..Default::default()
        };
        let placer = ClusterPlacer::new(&dfg, &cgra, &config);
        let cands = vec![PlacementCandidates {
            node: a,
            options: vec![(pe(&cgra, 0, 0), 0)],
        }];
        let mut stats = RewireStats::default();
        assert!(!placer.place(&mut m, &cands, deadline(), &mut stats));
    }
}
