//! Extra integration cases for the Rewire pipeline: memory-constrained
//! clusters, carried-edge clusters, and propagation around congestion.

use rand::SeedableRng;
use rewire_arch::{presets, Coord, OpKind};
use rewire_core::{propagate, Direction, PropagationSeed, RewireMapper, RewireStats};
use rewire_dfg::{Dfg, NodeId};
use rewire_mappers::Mapping;
use rewire_mrrg::{Mrrg, Occupancy, Resource};
use std::time::{Duration, Instant};

fn pe(cgra: &rewire_arch::Cgra, r: u16, c: u16) -> rewire_arch::PeId {
    cgra.pe_at(Coord::new(r, c)).unwrap().id()
}

/// Amending a cluster containing a memory op places it on a memory column.
#[test]
fn memory_cluster_lands_on_memory_column() {
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("m");
    let addr = dfg.add_node("addr", OpKind::Addr);
    let ld = dfg.add_node("ld", OpKind::Load);
    let use1 = dfg.add_node("use", OpKind::Add);
    dfg.add_edge(addr, ld, 0).unwrap();
    dfg.add_edge(ld, use1, 0).unwrap();

    let mrrg = Mrrg::new(&cgra, 2);
    let mut mapping = Mapping::new(&dfg, &mrrg);
    mapping.place(addr, pe(&cgra, 0, 1), 0);
    mapping.place(use1, pe(&cgra, 1, 1), 6);

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut stats = RewireStats::default();
    let deadline = Instant::now() + Duration::from_secs(5);
    let amended = RewireMapper::new()
        .amend(&dfg, &cgra, mapping, deadline, &mut rng, &mut stats)
        .expect("three nodes amend easily");
    let (ld_pe, _) = amended.placement(ld).unwrap();
    assert!(cgra.pe(ld_pe).memory_capable());
    assert!(amended.is_valid(&dfg, &cgra));
}

/// A cluster whose members are linked by a loop-carried edge keeps the
/// modulo timing legal.
#[test]
fn carried_edge_cluster_respects_modulo_timing() {
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("c");
    let a = dfg.add_node("a", OpKind::Add);
    let b = dfg.add_node("b", OpKind::Add);
    let e_fwd = dfg.add_edge(a, b, 0).unwrap();
    let e_back = dfg.add_edge(b, a, 1).unwrap();

    let ii = 3;
    let mrrg = Mrrg::new(&cgra, ii);
    let mapping = Mapping::new(&dfg, &mrrg); // everything unmapped
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut stats = RewireStats::default();
    let deadline = Instant::now() + Duration::from_secs(5);
    let amended = RewireMapper::new()
        .amend(&dfg, &cgra, mapping, deadline, &mut rng, &mut stats)
        .expect("2-node recurrence maps at II 3");
    let (_, ta) = amended.placement(a).unwrap();
    let (_, tb) = amended.placement(b).unwrap();
    assert!(tb > ta);
    assert!(ta + ii > tb, "back edge must close within one II");
    assert!(amended.route(e_fwd).is_some());
    assert!(amended.route(e_back).is_some());
}

/// Propagation navigates around a congested wall: with the central columns
/// blocked for a foreign signal, the wave still reaches the far side via
/// free rows, later than the Manhattan optimum.
#[test]
fn propagation_routes_around_congestion() {
    let cgra = presets::paper_4x4_r4();
    let mrrg = Mrrg::new(&cgra, 1);
    let mut occ = Occupancy::new(&mrrg);
    // Wall: block every link into column 1 except on row 3.
    for link in cgra.links() {
        let dst = cgra.pe(link.dst()).coord();
        if dst.col == 1 && dst.row != 3 {
            occ.claim(
                Resource::Link {
                    link: link.id(),
                    slot: 0,
                },
                NodeId::new(99),
                0,
            );
        }
    }
    let seeds = [PropagationSeed {
        source: NodeId::new(0),
        direction: Direction::Forward,
        pe: pe(&cgra, 0, 0),
        cycle: 1,
        wave: 1,
    }];
    let store = propagate(&cgra, &occ, &seeds, 10);
    let target = pe(&cgra, 0, 2);
    let cycles = store.cycles(NodeId::new(0), Direction::Forward, 1, target);
    assert!(!cycles.is_empty(), "the wave must get around the wall");
    assert!(
        cycles[0] > 1 + cgra.distance(pe(&cgra, 0, 0), target),
        "the detour costs extra cycles: {:?}",
        cycles
    );
}
