//! Optimality cross-checks: on tiny DFGs where the exhaustive oracle can
//! determine the true minimum II, Rewire must reach it too.

use rewire_arch::{presets, OpKind};
use rewire_core::RewireMapper;
use rewire_dfg::Dfg;
use rewire_mappers::{ExhaustiveMapper, MapLimits, Mapper};
use std::time::Duration;

fn limits() -> MapLimits {
    MapLimits::fast().with_ii_time_budget(Duration::from_secs(3))
}

#[test]
fn rewire_matches_the_oracle_on_chains() {
    let cgra = presets::paper_4x4_r4();
    for n in [3usize, 5, 8] {
        let mut dfg = Dfg::new(format!("chain{n}"));
        let mut prev = dfg.add_node("ld", OpKind::Load);
        for i in 1..n {
            let v = dfg.add_node(format!("a{i}"), OpKind::Add);
            dfg.add_edge(prev, v, 0).unwrap();
            prev = v;
        }
        let oracle = ExhaustiveMapper::new().map(&dfg, &cgra, &limits());
        let rewire = RewireMapper::new().map(&dfg, &cgra, &limits());
        assert_eq!(
            rewire.stats.achieved_ii, oracle.stats.achieved_ii,
            "chain of {n}"
        );
    }
}

#[test]
fn rewire_matches_the_oracle_on_a_recurrence() {
    let cgra = presets::paper_4x4_r4();
    let mut dfg = Dfg::new("acc");
    let phi = dfg.add_node("phi", OpKind::Phi);
    let c = dfg.add_node("c", OpKind::Const);
    let add = dfg.add_node("add", OpKind::Add);
    let st = dfg.add_node("st", OpKind::Store);
    dfg.add_edge(phi, add, 0).unwrap();
    dfg.add_edge(c, add, 0).unwrap();
    dfg.add_edge(add, phi, 1).unwrap();
    dfg.add_edge(add, st, 0).unwrap();
    let oracle = ExhaustiveMapper::new().map(&dfg, &cgra, &limits());
    let rewire = RewireMapper::new().map(&dfg, &cgra, &limits());
    assert_eq!(oracle.stats.achieved_ii, Some(2));
    assert_eq!(rewire.stats.achieved_ii, Some(2));
}

#[test]
fn rewire_matches_the_oracle_on_a_diamond_with_memory() {
    let cgra = presets::paper_4x4_r2();
    let mut dfg = Dfg::new("d");
    let ld = dfg.add_node("ld", OpKind::Load);
    let a = dfg.add_node("a", OpKind::Add);
    let b = dfg.add_node("b", OpKind::Mul);
    let st = dfg.add_node("st", OpKind::Store);
    dfg.add_edge(ld, a, 0).unwrap();
    dfg.add_edge(ld, b, 0).unwrap();
    dfg.add_edge(a, st, 0).unwrap();
    dfg.add_edge(b, st, 0).unwrap();
    let oracle = ExhaustiveMapper::new().map(&dfg, &cgra, &limits());
    let rewire = RewireMapper::new().map(&dfg, &cgra, &limits());
    assert_eq!(rewire.stats.achieved_ii, oracle.stats.achieved_ii);
}
