//! Property-based tests of the flat resource arena: the dense cell index
//! ([`Mrrg::index_of`]) and its inverse ([`Mrrg::resource_of`]) must be a
//! bijection on every preset fabric, because the router's cost overlay and
//! the occupancy table both trust the index as an array subscript.

use proptest::prelude::*;
use rewire_arch::presets;
use rewire_dfg::NodeId;
use rewire_mrrg::{Mrrg, Occupancy, Resource, RouteRequest, Router, UnitCost};

fn preset(arch: usize) -> rewire_arch::Cgra {
    match arch % 4 {
        0 => presets::paper_4x4_r4(),
        1 => presets::paper_4x4_r2(),
        2 => presets::paper_4x4_r1(),
        _ => presets::paper_8x8_r4(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// `resource_of` inverts `index_of` at every dense index, on all four
    /// paper fabrics and a spread of IIs.
    #[test]
    fn arena_index_round_trips_from_index(
        arch in 0usize..4,
        ii in 1u32..7,
        probe in 0usize..1_000_000,
    ) {
        let mrrg = Mrrg::new(&preset(arch), ii);
        let idx = probe % mrrg.num_cells();
        let res = mrrg.resource_of(idx);
        prop_assert_eq!(mrrg.index_of(res), idx);
    }

    /// `index_of` inverts `resource_of` starting from an arbitrary valid
    /// `Resource`, covering all three cell classes explicitly.
    #[test]
    fn arena_index_round_trips_from_resource(
        arch in 0usize..4,
        ii in 1u32..7,
        entity in 0usize..1_000_000,
        slot_pick in 0u32..64,
        class in 0usize..3,
    ) {
        let cgra = preset(arch);
        let mrrg = Mrrg::new(&cgra, ii);
        let slot = slot_pick % ii;
        let num_pes = cgra.pes().count();
        let res = match class {
            0 => Resource::Fu {
                pe: rewire_arch::PeId::new((entity % num_pes) as u32),
                slot,
            },
            1 => {
                let num_links = cgra.links().count();
                Resource::Link {
                    link: rewire_arch::LinkId::new((entity % num_links) as u32),
                    slot,
                }
            }
            _ => {
                let regs = cgra.regs_per_pe() as usize;
                if regs == 0 {
                    return Ok(());
                }
                Resource::Reg {
                    pe: rewire_arch::PeId::new(((entity / regs) % num_pes) as u32),
                    reg: (entity % regs) as u8,
                    slot,
                }
            }
        };
        prop_assert_eq!(mrrg.resource_of(mrrg.index_of(res)), res);
    }

    /// The arena-backed occupancy gives the same answers through the
    /// `Resource`-keyed public API as through dense iteration: claims made
    /// by resource are observable at the matching dense index and vice
    /// versa (i.e. no two resources alias one slot).
    #[test]
    fn occupancy_by_resource_matches_dense_iteration(
        arch in 0usize..4,
        ii in 1u32..5,
        picks in proptest::collection::vec(0usize..1_000_000, 1..12),
    ) {
        let cgra = preset(arch);
        let mrrg = Mrrg::new(&cgra, ii);
        let mut occ = Occupancy::new(&mrrg);
        let mut claimed: Vec<usize> = Vec::new();
        for (k, &p) in picks.iter().enumerate() {
            let idx = p % mrrg.num_cells();
            occ.claim(mrrg.resource_of(idx), NodeId::new(k as u32), 0);
            claimed.push(idx);
        }
        // Every claimed index is visible by Resource lookup, every
        // unclaimed one is free, and used_cells agrees with the set size.
        let mut unique = claimed.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(occ.used_cells(), unique.len());
        for idx in 0..mrrg.num_cells() {
            let res = mrrg.resource_of(idx);
            prop_assert_eq!(occ.is_free(res), !unique.contains(&idx));
        }
        // Distinct signals stacked on one cell are overuse.
        let expected_overuse: usize = unique
            .iter()
            .map(|i| claimed.iter().filter(|c| *c == i).count() - 1)
            .sum();
        prop_assert_eq!(occ.total_overuse(), expected_overuse);
    }
}

/// Routes a recorded set of requests, claims every route, and checks the
/// arena-backed occupancy agrees cell-for-cell with an independent
/// `Resource`-keyed shadow table — i.e. the dense index introduces no
/// aliasing anywhere a real router walk actually goes.
#[test]
fn occupancy_agrees_with_shadow_table_on_routed_set() {
    use std::collections::HashMap;

    let cgra = presets::paper_4x4_r4();
    let mrrg = Mrrg::new(&cgra, 3);
    let router = Router::new(&cgra, &mrrg);
    let mut occ = Occupancy::new(&mrrg);
    let mut shadow: HashMap<Resource, Vec<(NodeId, u32)>> = HashMap::new();

    let pes: Vec<_> = cgra.pes().map(|p| p.id()).collect();
    let requests: Vec<RouteRequest> = (0..12u32)
        .map(|k| RouteRequest {
            signal: NodeId::new(k / 3),
            src_pe: pes[(k as usize * 5) % pes.len()],
            depart_cycle: 1 + (k % 3),
            dst_pe: pes[(k as usize * 7 + 3) % pes.len()],
            arrive_cycle: 1 + (k % 3) + 2 + (k % 4),
        })
        .collect();

    let mut routed = 0;
    for req in &requests {
        let Ok(route) = router.route(&occ, req, &UnitCost) else {
            continue;
        };
        routed += 1;
        occ.claim_route(&route);
        for (phase, &res) in route.resources().iter().enumerate() {
            shadow
                .entry(res)
                .or_default()
                .push((route.signal(), phase as u32));
        }
    }
    assert!(
        routed >= 6,
        "recorded set should mostly route ({routed}/12)"
    );

    for idx in 0..mrrg.num_cells() {
        let res = mrrg.resource_of(idx);
        let mut expected: Vec<((NodeId, u32), u32)> = Vec::new();
        for &key in shadow.get(&res).into_iter().flatten() {
            match expected.iter_mut().find(|(k, _)| *k == key) {
                Some(entry) => entry.1 += 1,
                None => expected.push((key, 1)),
            }
        }
        let mut actual: Vec<((NodeId, u32), u32)> = occ.owners(res).to_vec();
        actual.sort_unstable();
        expected.sort_unstable();
        assert_eq!(actual, expected, "cell {res} (index {idx})");
    }
}
