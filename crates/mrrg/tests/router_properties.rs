//! Property-based tests of the layered router: for arbitrary endpoints and
//! timings, any returned route obeys the timing contract exactly.

use proptest::prelude::*;
use rewire_arch::{presets, PeId};
use rewire_dfg::NodeId;
use rewire_mrrg::{Mrrg, Occupancy, Resource, RouteRequest, Router, UnitCost};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// A returned route has exactly `steps` or `steps + 1` cells, each
    /// cell's slot matches its cycle, and geometry is respected.
    #[test]
    fn routes_obey_the_timing_contract(
        src in 0u32..16,
        dst in 0u32..16,
        depart in 1u32..8,
        extra in 0u32..8,
        ii in 1u32..5,
    ) {
        let cgra = presets::paper_4x4_r4();
        let mrrg = Mrrg::new(&cgra, ii);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let req = RouteRequest {
            signal: NodeId::new(0),
            src_pe: PeId::new(src),
            depart_cycle: depart,
            dst_pe: PeId::new(dst),
            arrive_cycle: depart + extra,
        };
        let Ok(route) = router.route(&occ, &req, &UnitCost) else {
            // NoPath may be legitimate even within geometric reach: slack
            // must be absorbable (registers are unusable at II = 1, and
            // closed walks on the bipartite mesh have even length), so
            // completeness is only asserted in the exact-distance regime
            // below.
            let d = cgra.distance(PeId::new(src), PeId::new(dst));
            prop_assert!(
                extra != d || d == 0,
                "router refused an exact-distance link path"
            );
            return Ok(());
        };
        let steps = extra as usize;
        prop_assert!(route.resources().len() == steps || route.resources().len() == steps + 1);
        // Slots follow consecutive cycles from the departure.
        for (k, cell) in route.resources().iter().enumerate() {
            prop_assert_eq!(cell.slot(), (depart + k as u32) % ii);
        }
        // No FU cells are ever claimed by routing.
        prop_assert!(route.resources().iter().all(|c| !c.is_fu()));
    }

    /// Claim/release of any found route is balanced and leaves the table
    /// clean.
    #[test]
    fn claim_release_round_trip(
        src in 0u32..16,
        dst in 0u32..16,
        extra in 0u32..6,
    ) {
        let cgra = presets::paper_4x4_r4();
        let mrrg = Mrrg::new(&cgra, 3);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let req = RouteRequest {
            signal: NodeId::new(1),
            src_pe: PeId::new(src),
            depart_cycle: 2,
            dst_pe: PeId::new(dst),
            arrive_cycle: 2 + extra,
        };
        if let Ok(route) = router.route(&occ, &req, &UnitCost) {
            occ.claim_route(&route);
            for (k, cell) in route.resources().iter().enumerate() {
                prop_assert!(!occ.is_free(*cell));
                prop_assert!(occ.usable_by(*cell, NodeId::new(1), k as u32));
                prop_assert!(!occ.usable_by(*cell, NodeId::new(2), k as u32));
            }
            occ.release_route(&route);
            prop_assert_eq!(occ.used_cells(), 0);
        }
    }

    /// Fan-out sharing: two routes of the same signal never conflict, and
    /// claiming both keeps the table overuse-free.
    #[test]
    fn fanout_routes_share_without_overuse(
        dst1 in 0u32..16,
        dst2 in 0u32..16,
        extra in 4u32..8,
    ) {
        let cgra = presets::paper_4x4_r4();
        let mrrg = Mrrg::new(&cgra, 4);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let mk = |dst: u32| RouteRequest {
            signal: NodeId::new(3),
            src_pe: PeId::new(0),
            depart_cycle: 1,
            dst_pe: PeId::new(dst),
            arrive_cycle: 1 + extra,
        };
        if let Ok(r1) = router.route(&occ, &mk(dst1), &UnitCost) {
            occ.claim_route(&r1);
            if let Ok(r2) = router.route(&occ, &mk(dst2), &UnitCost) {
                occ.claim_route(&r2);
                prop_assert_eq!(occ.total_overuse(), 0);
            }
        }
    }

    /// Dense cell indexing is a bijection onto `0..num_cells`.
    #[test]
    fn cell_indexing_is_dense(ii in 1u32..7) {
        let cgra = presets::paper_4x4_r2();
        let mrrg = Mrrg::new(&cgra, ii);
        let mut seen = vec![false; mrrg.num_cells()];
        for pe in cgra.pes() {
            for slot in 0..ii {
                seen[mrrg.index_of(Resource::Fu { pe: pe.id(), slot })] = true;
                for reg in 0..cgra.regs_per_pe() {
                    seen[mrrg.index_of(Resource::Reg { pe: pe.id(), reg, slot })] = true;
                }
            }
        }
        for link in cgra.links() {
            for slot in 0..ii {
                seen[mrrg.index_of(Resource::Link { link: link.id(), slot })] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }
}
