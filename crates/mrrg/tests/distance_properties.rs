//! Property tests for the hop-distance oracle backing router pruning.
//!
//! The pruning proof in `router.rs` leans on three facts about
//! [`DistanceTable`]: distances are exact metric values on the link graph
//! (symmetry on bidirectional fabrics, triangle inequality everywhere) and
//! they never over-estimate the link hops of any route the router actually
//! returns (admissibility). Disconnected fabrics must report
//! [`DistanceTable::UNREACHABLE`] and route to a clean `NoPath`, never a
//! panic.

use proptest::prelude::*;
use rewire_arch::random::{random_cgra_spec, CgraSpec, RandomCgraParams};
use rewire_arch::PeId;
use rewire_dfg::NodeId;
use rewire_mrrg::{
    DistanceTable, Mrrg, Occupancy, RouteError, RouteRequest, Router, TieredDistance, UnitCost,
};

fn params(cut_prob: f64) -> RandomCgraParams {
    RandomCgraParams {
        cut_prob,
        torus_prob: 0.3,
        diagonal_prob: 0.3,
        ..RandomCgraParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every builder fabric is bidirectional (links come in opposing
    /// pairs, and a row cut severs both directions at once), so the
    /// distance table must be symmetric — including on cut fabrics, where
    /// unreachability itself is symmetric.
    #[test]
    fn distances_are_symmetric_on_bidirectional_fabrics(arch_seed in 0u64..192) {
        let cgra = random_cgra_spec(&params(0.25), arch_seed).build().unwrap();
        let t = DistanceTable::build(&cgra);
        for a in cgra.pes() {
            for b in cgra.pes() {
                prop_assert_eq!(
                    t.hops(a.id(), b.id()),
                    t.hops(b.id(), a.id()),
                    "{} vs {}", a.id(), b.id()
                );
            }
        }
    }

    /// Shortest-path distances obey the triangle inequality; unreachable
    /// legs saturate instead of wrapping.
    #[test]
    fn distances_obey_the_triangle_inequality(arch_seed in 0u64..192) {
        let cgra = random_cgra_spec(&params(0.25), arch_seed).build().unwrap();
        let t = DistanceTable::build(&cgra);
        let n = cgra.num_pes();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let (a, b, c) = (PeId::new(a as u32), PeId::new(b as u32), PeId::new(c as u32));
                    let via = t.hops(a, b).saturating_add(t.hops(b, c));
                    prop_assert!(
                        t.hops(a, c) <= via,
                        "d({a},{c}) = {} > {} = d({a},{b}) + d({b},{c})",
                        t.hops(a, c), via
                    );
                }
            }
        }
    }

    /// Admissibility: the table never over-estimates — any route the
    /// router returns crosses at least `hops(src, dst)` links.
    #[test]
    fn table_lower_bounds_every_returned_route(
        arch_seed in 0u64..64,
        src in 0u32..64,
        dst in 0u32..64,
        extra in 0u32..10,
        ii in 1u32..5,
    ) {
        let cgra = random_cgra_spec(&params(0.0), arch_seed).build().unwrap();
        let t = DistanceTable::build(&cgra);
        let mrrg = Mrrg::new(&cgra, ii);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let n = cgra.num_pes() as u32;
        let (src_pe, dst_pe) = (PeId::new(src % n), PeId::new(dst % n));
        let req = RouteRequest {
            signal: NodeId::new(0),
            src_pe,
            depart_cycle: 1,
            dst_pe,
            arrive_cycle: 1 + extra,
        };
        if let Ok(route) = router.route(&occ, &req, &UnitCost) {
            let d = t.hops(src_pe, dst_pe);
            prop_assert_ne!(d, DistanceTable::UNREACHABLE, "routed the unreachable");
            prop_assert!(
                d as usize <= route.hops(),
                "d({src_pe},{dst_pe}) = {} exceeds the {}-hop route",
                d, route.hops()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Tiered admissibility on large random fabrics — the sizes the
    /// landmark oracle actually serves, past the dense tier's 256-PE
    /// limit, with torus/diagonal wraps and a fifth of fabrics cut into
    /// islands. The bound must never exceed the exact BFS distance; since
    /// `UNREACHABLE` is `u32::MAX`, the same inequality pins the
    /// unreachability rules (a spurious `UNREACHABLE` verdict against a
    /// finite true distance would violate it).
    #[test]
    fn tiered_bound_never_exceeds_the_true_distance(arch_seed in 0u64..64) {
        let p = RandomCgraParams { cut_prob: 0.2, ..RandomCgraParams::large_fabric() };
        let cgra = random_cgra_spec(&p, arch_seed).build().unwrap();
        let exact = DistanceTable::build(&cgra);
        let tiered = TieredDistance::build(&cgra);
        let n = cgra.num_pes();
        // All-pairs on 1000+ PEs is too slow unoptimised; stride the
        // sources, keep full destination coverage.
        let stride = (n / 48).max(1);
        for a in (0..n).step_by(stride) {
            let a = PeId::new(a as u32);
            for b in 0..n {
                let b = PeId::new(b as u32);
                let d = exact.hops(a, b);
                let lb = tiered.lower_bound(a, b);
                prop_assert!(
                    lb <= d,
                    "lower_bound({a}, {b}) = {lb} exceeds the true distance {d} \
                     on a {}x{} fabric", cgra.rows(), cgra.cols()
                );
            }
        }
    }
}

/// A deliberately disconnected fabric built from a [`CgraSpec`] display
/// string: cross-island distances are `UNREACHABLE` and cross-island
/// routes fail with `NoPath` — no panic, no infinite search.
#[test]
fn disconnected_spec_routes_to_no_path() {
    let spec: CgraSpec = "4x4 regs=2 banks=1 memcols=0 cut=2".parse().unwrap();
    assert_eq!(spec.cut_row, Some(2));
    let cgra = spec.build().unwrap();
    let t = DistanceTable::build(&cgra);
    let top = PeId::new(0); // row 0
    let bottom = PeId::new(15); // row 3
    assert_eq!(t.hops(top, bottom), DistanceTable::UNREACHABLE);

    let mrrg = Mrrg::new(&cgra, 2);
    let occ = Occupancy::new(&mrrg);
    let router = Router::new(&cgra, &mrrg);
    let req = RouteRequest {
        signal: NodeId::new(0),
        src_pe: top,
        depart_cycle: 1,
        dst_pe: bottom,
        arrive_cycle: 12,
    };
    let err = router.route(&occ, &req, &UnitCost).unwrap_err();
    assert!(matches!(err, RouteError::NoPath { .. }));
    // Within-island routing still works on the same fabric.
    let ok = router
        .route(
            &occ,
            &RouteRequest {
                signal: NodeId::new(0),
                src_pe: top,
                depart_cycle: 1,
                dst_pe: PeId::new(5), // row 1, same island
                arrive_cycle: 3,
            },
            &UnitCost,
        )
        .unwrap();
    assert_eq!(ok.hops(), 2);
}
