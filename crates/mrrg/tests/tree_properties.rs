//! Property tests of route trees and subtree-delta re-routing over random
//! (occasionally cut) fabrics.
//!
//! Pinned invariants:
//!
//! * every tree [`Router::route_fanout`] returns validates under
//!   [`RouteTree::from_branches`] — acyclic branches, one common root,
//!   resources shared only at equal phase — and claims without overuse,
//! * every branch reaches its sink at the scheduled cycle (step count and
//!   per-cell slots follow the timing contract),
//! * subtree-delta re-routing is equivalent to a full re-route: ripping
//!   *every* branch and delta-routing reproduces the from-scratch tree
//!   exactly, and ripping any proper subset reaches a fixpoint in one
//!   pass (re-ripping the same branches re-derives byte-identical
//!   routes), so PF*'s delta repair explores the same space as whole-tree
//!   re-routing.

use proptest::prelude::*;
use rewire_arch::random::{random_cgra_spec, RandomCgraParams};
use rewire_arch::{Cgra, PeId};
use rewire_dfg::NodeId;
use rewire_mrrg::{Mrrg, Occupancy, Route, RouteRequest, RouteTree, Router, UnitCost};

/// A random fabric; `with_cut` forces the row-cut topology class that
/// detours routes around the severed links.
fn fabric(seed: u64, with_cut: bool) -> Cgra {
    let params = RandomCgraParams {
        rows: (2, 5),
        cols: (2, 5),
        regs_per_pe: (1, 4),
        memory_prob: 0.5,
        memory_banks: (1, 2),
        max_memory_columns: 2,
        torus_prob: 0.2,
        diagonal_prob: 0.2,
        cut_prob: if with_cut { 1.0 } else { 0.0 },
    };
    random_cgra_spec(&params, seed)
        .build()
        .expect("random specs always build")
}

/// Builds the fan-out request list: every sink `dsts[i]` (taken modulo the
/// PE count) departs one producer; per-sink slack of 2–7 extra cycles is
/// carved out of `extra_bits` (3 bits each).
fn requests(
    cgra: &Cgra,
    src: u64,
    depart: u32,
    dsts: &[u64],
    extra_bits: u64,
) -> Vec<RouteRequest> {
    let n = cgra.num_pes() as u64;
    dsts.iter()
        .enumerate()
        .map(|(i, &dst)| RouteRequest {
            signal: NodeId::new(7),
            src_pe: PeId::new((src % n) as u32),
            depart_cycle: depart,
            dst_pe: PeId::new((dst % n) as u32),
            arrive_cycle: depart + 2 + (extra_bits >> (3 * i) & 0b111) as u32 % 6,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every decoded route tree is acyclic, shares only at equal phase,
    /// departs one root, arrives on schedule, and claims overuse-free.
    #[test]
    fn trees_are_valid_and_arrive_on_schedule(
        arch_seed in 0u64..512,
        with_cut in 0u32..2,
        src in 0u64..64,
        dsts in proptest::collection::vec(0u64..64, 2..5),
        extra_bits in 0u64..4096,
        depart in 1u32..5,
        ii in 2u32..5,
    ) {
        let cgra = fabric(arch_seed, with_cut == 1);
        let mrrg = Mrrg::new(&cgra, ii);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let reqs = requests(&cgra, src, depart, &dsts, extra_bits);
        let Ok(routes) = router.route_fanout(&mut occ, &reqs, &UnitCost) else {
            return Ok(()); // geometrically unroutable draws are legitimate
        };
        prop_assert_eq!(occ.used_cells(), 0, "route_fanout must leave occ untouched");

        // from_branches enforces acyclicity, the common root, and
        // equal-phase-only sharing; a decode failure is a router bug.
        let tree = RouteTree::from_branches(routes.clone())
            .expect("fan-out routes must form a valid tree");
        prop_assert_eq!(tree.num_branches(), reqs.len());
        prop_assert!(tree.footprint() <= tree.total_cells());

        // Branches come back in request order and arrive on schedule.
        for (route, req) in routes.iter().zip(&reqs) {
            prop_assert_eq!(route.request(), req);
            let steps = (req.arrive_cycle - req.depart_cycle) as usize;
            let len = route.resources().len();
            prop_assert!(len == steps || len == steps + 1, "len {} vs steps {}", len, steps);
            for (k, cell) in route.resources().iter().enumerate() {
                prop_assert_eq!(cell.slot(), (req.depart_cycle + k as u32) % ii);
                prop_assert!(!cell.is_fu());
            }
        }

        // Equal-phase sharing is exactly what Occupancy admits: claiming
        // the whole tree must stay overuse-free.
        for route in &routes {
            occ.claim_route(route);
        }
        prop_assert_eq!(occ.total_overuse(), 0);
    }

    /// Delta re-routing with *every* branch ripped degenerates to the
    /// from-scratch tree route, byte for byte.
    #[test]
    fn full_rip_delta_equals_from_scratch(
        arch_seed in 0u64..512,
        src in 0u64..64,
        dsts in proptest::collection::vec(0u64..64, 2..5),
        extra_bits in 0u64..4096,
        ii in 2u32..5,
    ) {
        let cgra = fabric(arch_seed, false);
        let mrrg = Mrrg::new(&cgra, ii);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let reqs = requests(&cgra, src, 1, &dsts, extra_bits);
        let Ok(from_scratch) = router.route_fanout(&mut occ, &reqs, &UnitCost) else {
            return Ok(());
        };
        // Commit the tree, then rip every branch — the occupancy is back
        // to its base state, so the delta call *is* a full re-route.
        for route in &from_scratch {
            occ.claim_route(route);
        }
        for route in &from_scratch {
            occ.release_route(route);
        }
        let delta = router
            .route_fanout(&mut occ, &reqs, &UnitCost)
            .expect("a tree that routed once routes again");
        prop_assert_eq!(&delta, &from_scratch);
        let a = RouteTree::from_branches(delta).unwrap().fingerprint(&mrrg);
        let b = RouteTree::from_branches(from_scratch).unwrap().fingerprint(&mrrg);
        prop_assert_eq!(a, b);
    }

    /// Ripping a proper subset of branches and delta re-routing them
    /// against the surviving trunk (a) yields a combined set that is
    /// still a valid overuse-free tree, and (b) is a fixpoint: ripping
    /// the same branches again re-derives byte-identical routes.
    #[test]
    fn partial_rip_delta_is_a_fixpoint(
        arch_seed in 0u64..512,
        with_cut in 0u32..2,
        src in 0u64..64,
        dsts in proptest::collection::vec(0u64..64, 3..6),
        extra_bits in 0u64..32768,
        rip_mask in 1u32..31,
        ii in 2u32..5,
    ) {
        let cgra = fabric(arch_seed, with_cut == 1);
        let mrrg = Mrrg::new(&cgra, ii);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let reqs = requests(&cgra, src, 1, &dsts, extra_bits);
        let Ok(original) = router.route_fanout(&mut occ, &reqs, &UnitCost) else {
            return Ok(());
        };
        let ripped: Vec<usize> = (0..reqs.len()).filter(|i| rip_mask >> i & 1 == 1).collect();
        if ripped.is_empty() || ripped.len() == reqs.len() {
            return Ok(()); // the mask must rip a proper, non-empty subset
        }

        // Commit the whole tree, then rip only the selected branches; the
        // per-cell refcounts keep the shared trunk alive for survivors.
        for route in &original {
            occ.claim_route(route);
        }
        for &i in &ripped {
            occ.release_route(&original[i]);
        }
        let rip_reqs: Vec<RouteRequest> = ripped.iter().map(|&i| reqs[i]).collect();
        let delta1 = router
            .route_fanout(&mut occ, &rip_reqs, &UnitCost)
            .expect("ripped branches re-route: their old paths are still legal");

        // (a) The combined survivors + re-routed branches form a valid
        // tree and claim without overuse.
        let mut combined: Vec<Route> = (0..reqs.len())
            .filter(|i| !ripped.contains(i))
            .map(|i| original[i].clone())
            .collect();
        combined.extend(delta1.iter().cloned());
        let tree = RouteTree::from_branches(combined)
            .expect("delta re-route must preserve the tree invariants");
        prop_assert_eq!(tree.num_branches(), reqs.len());
        for route in &delta1 {
            occ.claim_route(route);
        }
        prop_assert_eq!(occ.total_overuse(), 0);

        // (b) Fixpoint: rip the same branches again — the environment is
        // identical (survivors only), so the delta must reproduce itself.
        for route in &delta1 {
            occ.release_route(route);
        }
        let delta2 = router
            .route_fanout(&mut occ, &rip_reqs, &UnitCost)
            .expect("fixpoint re-route");
        prop_assert_eq!(&delta2, &delta1);
    }
}
