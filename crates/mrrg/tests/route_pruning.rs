//! Differential route-equivalence: the pruned sparse-frontier router must
//! be byte-identical to the dense DP it replaced.
//!
//! Pruning uses the hop-distance oracle as an admissible lower bound, so
//! it may only skip states that can never contribute to an arrival
//! candidate — costs, parents and every strict-`<` tie-break must come out
//! exactly the same. These tests drive both [`RouterMode`]s over random
//! fabrics (including torus, diagonal and deliberately disconnected
//! ones), random occupancies and both cost models, and assert the full
//! `Result<Route, RouteError>` is equal. The mapper-level counterpart
//! (all four mappers over the kernel suite) lives in
//! `tests/route_pruning_mappers.rs` at the workspace root.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rewire_arch::random::{random_cgra_spec, RandomCgraParams};
use rewire_arch::{presets, PeId};
use rewire_dfg::NodeId;
use rewire_mrrg::{
    DistanceOracle, Mrrg, NegotiatedCost, Occupancy, RouteRequest, Router, RouterMode,
    RouterScratch, TieredDistance, UnitCost,
};
use std::sync::Arc;

fn fuzz_params() -> RandomCgraParams {
    RandomCgraParams {
        // A quarter of the fabrics are split into two islands so the
        // equivalence also covers genuinely unreachable destinations.
        cut_prob: 0.25,
        torus_prob: 0.3,
        diagonal_prob: 0.3,
        ..RandomCgraParams::default()
    }
}

/// Routes `req` under both modes with fresh scratches and asserts the
/// results (success or failure) are identical.
fn assert_modes_agree(
    cgra: &rewire_arch::Cgra,
    mrrg: &Mrrg,
    occ: &Occupancy,
    req: &RouteRequest,
    cost: &impl rewire_mrrg::CostModel,
) -> Result<(), TestCaseError> {
    let dense = Router::with_mode(cgra, mrrg, RouterMode::Dense);
    let pruned = Router::with_mode(cgra, mrrg, RouterMode::Pruned);
    let a = dense.route_with(occ, req, cost, &mut RouterScratch::new());
    let b = pruned.route_with(occ, req, cost, &mut RouterScratch::new());
    prop_assert_eq!(a, b, "modes diverged on {:?}", req);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 160, ..ProptestConfig::default() })]

    /// Random fabric, random occupancy, random request: byte-identical
    /// outcomes under the exclusive `UnitCost` model.
    #[test]
    fn unit_cost_routes_are_byte_identical(
        arch_seed in 0u64..96,
        occ_seed in 0u64..1024,
        src in 0u32..64,
        dst in 0u32..64,
        depart in 1u32..8,
        extra in 0u32..10,
        ii in 1u32..5,
        claims in 0usize..48,
    ) {
        let spec = random_cgra_spec(&fuzz_params(), arch_seed);
        let cgra = spec.build().expect("random specs build");
        let mrrg = Mrrg::new(&cgra, ii);
        let mut occ = Occupancy::new(&mrrg);
        let mut rng = StdRng::seed_from_u64(occ_seed);
        for _ in 0..claims {
            let cell = mrrg.resource_of(rng.random_range(0..mrrg.num_cells()));
            occ.claim(
                cell,
                NodeId::new(rng.random_range(0..6)),
                rng.random_range(0..4),
            );
        }
        let n = cgra.num_pes() as u32;
        let req = RouteRequest {
            signal: NodeId::new(0),
            src_pe: PeId::new(src % n),
            depart_cycle: depart,
            dst_pe: PeId::new(dst % n),
            arrive_cycle: depart + extra,
        };
        assert_modes_agree(&cgra, &mrrg, &occ, &req, &UnitCost)?;
    }

    /// Same property under negotiated congestion costs (overused cells
    /// allowed at a price), where the DP explores far more live states.
    #[test]
    fn negotiated_cost_routes_are_byte_identical(
        arch_seed in 0u64..96,
        occ_seed in 0u64..1024,
        src in 0u32..64,
        dst in 0u32..64,
        extra in 0u32..8,
        ii in 1u32..4,
        claims in 0usize..64,
    ) {
        let spec = random_cgra_spec(&fuzz_params(), arch_seed);
        let cgra = spec.build().expect("random specs build");
        let mrrg = Mrrg::new(&cgra, ii);
        let mut occ = Occupancy::new(&mrrg);
        let mut rng = StdRng::seed_from_u64(occ_seed);
        for _ in 0..claims {
            let cell = mrrg.resource_of(rng.random_range(0..mrrg.num_cells()));
            occ.claim(
                cell,
                NodeId::new(rng.random_range(0..4)),
                rng.random_range(0..3),
            );
        }
        let mut nc = NegotiatedCost::new(&mrrg, 7.5, 1.25);
        // Random claims above produce genuine overuse; accumulate twice so
        // history costs participate in tie-breaks as well.
        nc.accumulate_history_everywhere(&occ);
        nc.accumulate_history_everywhere(&occ);
        let n = cgra.num_pes() as u32;
        let req = RouteRequest {
            signal: NodeId::new(1),
            src_pe: PeId::new(src % n),
            depart_cycle: 2,
            dst_pe: PeId::new(dst % n),
            arrive_cycle: 2 + extra,
        };
        assert_modes_agree(&cgra, &mrrg, &occ, &req, &nc)?;
    }

    /// The byte-identical guarantee holds across oracle *tiers* too:
    /// forcing the landmark oracle (what every past-the-limit fabric gets)
    /// onto small fabrics, where the dense DP is still tractable to
    /// compare against, must change nothing — the weaker-but-admissible
    /// bound prunes fewer states, never different ones.
    #[test]
    fn tiered_oracle_routes_match_the_dense_dp(
        arch_seed in 0u64..96,
        occ_seed in 0u64..1024,
        src in 0u32..64,
        dst in 0u32..64,
        extra in 0u32..10,
        ii in 1u32..5,
        claims in 0usize..48,
    ) {
        let spec = random_cgra_spec(&fuzz_params(), arch_seed);
        let cgra = spec.build().expect("random specs build");
        let mrrg = Mrrg::new(&cgra, ii);
        let mut occ = Occupancy::new(&mrrg);
        let mut rng = StdRng::seed_from_u64(occ_seed);
        for _ in 0..claims {
            let cell = mrrg.resource_of(rng.random_range(0..mrrg.num_cells()));
            occ.claim(
                cell,
                NodeId::new(rng.random_range(0..6)),
                rng.random_range(0..4),
            );
        }
        let n = cgra.num_pes() as u32;
        let req = RouteRequest {
            signal: NodeId::new(0),
            src_pe: PeId::new(src % n),
            depart_cycle: 1,
            dst_pe: PeId::new(dst % n),
            arrive_cycle: 1 + extra,
        };
        let dense = Router::with_mode(&cgra, &mrrg, RouterMode::Dense);
        let pruned = Router::with_mode(&cgra, &mrrg, RouterMode::Pruned);
        let mut ps = RouterScratch::new();
        ps.install_distances(Arc::new(DistanceOracle::Tiered(TieredDistance::build(&cgra))));
        let a = dense.route_with(&occ, &req, &UnitCost, &mut RouterScratch::new());
        let b = pruned.route_with(&occ, &req, &UnitCost, &mut ps);
        prop_assert_eq!(a, b, "tiered-oracle pruning diverged on {:?}", req);
    }
}

/// Exhaustive deterministic sweep on the paper's baseline fabric: every
/// endpoint pair at several IIs and slacks, on an empty table. Catches any
/// tie-break drift that randomized cases might sample around.
#[test]
fn all_pairs_sweep_on_the_paper_fabric() {
    let cgra = presets::paper_4x4_r4();
    for ii in [1u32, 2, 4] {
        let mrrg = Mrrg::new(&cgra, ii);
        let occ = Occupancy::new(&mrrg);
        let dense = Router::with_mode(&cgra, &mrrg, RouterMode::Dense);
        let pruned = Router::with_mode(&cgra, &mrrg, RouterMode::Pruned);
        let mut ds = RouterScratch::new();
        let mut ps = RouterScratch::new();
        // A third router on the landmark tier, exercising the big-fabric
        // configuration over the same exhaustive sweep.
        let mut ts = RouterScratch::new();
        ts.install_distances(Arc::new(DistanceOracle::Tiered(TieredDistance::build(
            &cgra,
        ))));
        for src in 0..cgra.num_pes() as u32 {
            for dst in 0..cgra.num_pes() as u32 {
                for extra in [0u32, 1, 3, 6] {
                    let req = RouteRequest {
                        signal: NodeId::new(0),
                        src_pe: PeId::new(src),
                        depart_cycle: 1,
                        dst_pe: PeId::new(dst),
                        arrive_cycle: 1 + extra,
                    };
                    let a = dense.route_with(&occ, &req, &UnitCost, &mut ds);
                    let b = pruned.route_with(&occ, &req, &UnitCost, &mut ps);
                    let c = pruned.route_with(&occ, &req, &UnitCost, &mut ts);
                    assert_eq!(a, b, "ii {ii}, {req:?}");
                    assert_eq!(a, c, "tiered tier, ii {ii}, {req:?}");
                }
            }
        }
    }
}
