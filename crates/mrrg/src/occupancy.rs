//! Per-cell occupancy with signal sharing, reference counts, and overuse
//! tracking.

use crate::{Mrrg, Resource, Route};
use rewire_dfg::NodeId;
use std::sync::Arc;

/// Cells per lazily allocated occupancy chunk.
///
/// A 64×64 fabric time-extended at II 20 has on the order of a million
/// MRRG cells; a mapper that only ever touches a corner of it should not
/// pay a million-entry allocation per restart (multiplied by the parallel
/// portfolio's clones). Chunks of 256 cells keep the directory small while
/// untouched regions stay as `None`.
const CHUNK: usize = 256;

/// One chunk's cell lists, boxed so an unallocated chunk costs one `None`.
type Chunk = Box<[Vec<((NodeId, u32), u32)>]>;

/// Occupancy state of every MRRG cell.
///
/// Each cell holds a small list of `((signal, phase), refcount)` pairs,
/// where *phase* is the step's age — the number of cycles since the
/// signal's value left its producer. Routes of the same signal share cells
/// (fan-out) **only at equal phase**: two uses with the same modulo slot
/// but different ages would put two different iterations' values on one
/// physical resource in the same cycle. Any two distinct `(signal, phase)`
/// keys on one cell are *overuse* — permitted so PathFinder-style
/// negotiation can explore, but a valid final mapping must be overuse-free
/// ([`Occupancy::total_overuse`]).
///
/// # Examples
///
/// ```
/// use rewire_arch::presets;
/// use rewire_dfg::NodeId;
/// use rewire_mrrg::{Mrrg, Occupancy, Resource};
///
/// let cgra = presets::paper_4x4_r4();
/// let mrrg = Mrrg::new(&cgra, 2);
/// let mut occ = Occupancy::new(&mrrg);
/// let cell = Resource::Fu { pe: cgra.pes().next().unwrap().id(), slot: 0 };
///
/// occ.claim(cell, NodeId::new(0), 0);
/// occ.claim(cell, NodeId::new(0), 0); // same signal and phase: shared
/// assert!(!occ.is_overused(cell));
/// occ.claim(cell, NodeId::new(1), 0); // different signal: overuse
/// assert!(occ.is_overused(cell));
/// occ.release(cell, NodeId::new(1), 0);
/// assert!(!occ.is_overused(cell));
/// ```
#[derive(Clone, Debug)]
pub struct Occupancy {
    // Shared, not owned: cloning an occupancy (once per mapper restart,
    // multiplied by the parallel portfolio) must not duplicate the shape.
    mrrg: Arc<Mrrg>,
    /// Chunked cell directory: `cells[idx / CHUNK]` is `None` until a
    /// claim first touches that chunk, so untouched rows of a big fabric
    /// never allocate. Reads treat a missing chunk as all-free.
    cells: Vec<Option<Chunk>>,
}

/// The all-free owner list reads of unallocated chunks borrow.
const NO_OWNERS: &[((NodeId, u32), u32)] = &[];

impl Occupancy {
    /// Creates an all-free occupancy table for `mrrg`.
    pub fn new(mrrg: &Mrrg) -> Self {
        Self::new_shared(Arc::new(mrrg.clone()))
    }

    /// Creates an all-free occupancy table sharing an existing MRRG handle
    /// (avoids a per-table copy when the caller already holds one).
    pub fn new_shared(mrrg: Arc<Mrrg>) -> Self {
        let num_chunks = mrrg.num_cells().div_ceil(CHUNK);
        Self {
            mrrg,
            cells: vec![None; num_chunks],
        }
    }

    /// The MRRG shape this table belongs to.
    pub fn mrrg(&self) -> &Mrrg {
        &self.mrrg
    }

    /// Number of chunks that have been materialised by claims so far —
    /// the footprint knob the lazy layout exists for.
    pub fn allocated_chunks(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// The owner list at a dense cell index, materialising its chunk.
    fn owners_mut(&mut self, idx: usize) -> &mut Vec<((NodeId, u32), u32)> {
        let chunk = self.cells[idx / CHUNK]
            .get_or_insert_with(|| vec![Vec::new(); CHUNK].into_boxed_slice());
        &mut chunk[idx % CHUNK]
    }

    /// Claims one reference of `cell` for `signal` at the given `phase`
    /// (cycles since the signal left its producer; use 0 for FU cells).
    pub fn claim(&mut self, cell: Resource, signal: NodeId, phase: u32) {
        let idx = self.mrrg.index_of(cell);
        let owners = self.owners_mut(idx);
        if let Some(entry) = owners.iter_mut().find(|(k, _)| *k == (signal, phase)) {
            entry.1 += 1;
        } else {
            owners.push(((signal, phase), 1));
        }
    }

    /// Releases one reference of `cell` held by `(signal, phase)`.
    ///
    /// # Panics
    ///
    /// Panics if the key does not hold the cell — claims and releases must
    /// be balanced.
    pub fn release(&mut self, cell: Resource, signal: NodeId, phase: u32) {
        let idx = self.mrrg.index_of(cell);
        let owners = match &mut self.cells[idx / CHUNK] {
            Some(chunk) => &mut chunk[idx % CHUNK],
            None => panic!("release of unclaimed {cell} by {signal}@{phase}"),
        };
        let pos = owners
            .iter()
            .position(|(k, _)| *k == (signal, phase))
            .unwrap_or_else(|| panic!("release of unclaimed {cell} by {signal}@{phase}"));
        owners[pos].1 -= 1;
        if owners[pos].1 == 0 {
            owners.swap_remove(pos);
        }
    }

    /// Claims every resource of a committed route (signal and per-step
    /// phases taken from the route).
    pub fn claim_route(&mut self, route: &Route) {
        for (k, &res) in route.resources().iter().enumerate() {
            self.claim(res, route.signal(), k as u32);
        }
    }

    /// Releases every resource of a previously claimed route.
    pub fn release_route(&mut self, route: &Route) {
        for (k, &res) in route.resources().iter().enumerate() {
            self.release(res, route.signal(), k as u32);
        }
    }

    /// The distinct `(signal, phase)` keys currently on `cell` (with
    /// reference counts).
    pub fn owners(&self, cell: Resource) -> &[((NodeId, u32), u32)] {
        self.owners_at_index(self.mrrg.index_of(cell))
    }

    /// Owners at a dense cell index. Reads of unallocated chunks borrow
    /// the shared empty list.
    fn owners_at_index(&self, idx: usize) -> &[((NodeId, u32), u32)] {
        match &self.cells[idx / CHUNK] {
            Some(chunk) => &chunk[idx % CHUNK],
            None => NO_OWNERS,
        }
    }

    /// Number of distinct signals on `cell`.
    pub fn num_signals(&self, cell: Resource) -> usize {
        self.owners(cell).len()
    }

    /// Whether `cell` is entirely free.
    pub fn is_free(&self, cell: Resource) -> bool {
        self.owners(cell).is_empty()
    }

    /// Whether `(signal, phase)` may use `cell` without creating overuse
    /// (the cell is free or already carries exactly this signal at this
    /// phase).
    pub fn usable_by(&self, cell: Resource, signal: NodeId, phase: u32) -> bool {
        let owners = self.owners(cell);
        owners.is_empty() || (owners.len() == 1 && owners[0].0 == (signal, phase))
    }

    /// Whether `signal` (at any phase) is the only occupant, or the cell is
    /// free — the optimistic test Rewire's propagation uses ("the objective
    /// of propagation is to explore potential routing paths rather than
    /// perform final resource allocation").
    pub fn usable_by_any_phase(&self, cell: Resource, signal: NodeId) -> bool {
        let owners = self.owners(cell);
        owners.is_empty() || owners.iter().all(|((s, _), _)| *s == signal)
    }

    /// Whether more than one distinct signal sits on `cell`.
    pub fn is_overused(&self, cell: Resource) -> bool {
        self.num_signals(cell) > 1
    }

    /// Sum over all cells of `(distinct signals − 1)` — zero iff the
    /// current state is physically realisable. Walks allocated chunks
    /// only.
    pub fn total_overuse(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .flat_map(|chunk| chunk.iter())
            .map(|owners| owners.len().saturating_sub(1))
            .sum()
    }

    /// The signals involved in overused cells, deduplicated.
    pub fn overused_signals(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for chunk in self.cells.iter().flatten() {
            for owners in chunk.iter() {
                if owners.len() > 1 {
                    for ((s, _), _) in owners {
                        if !out.contains(s) {
                            out.push(*s);
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of cells carrying at least one signal.
    pub fn used_cells(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .flat_map(|chunk| chunk.iter())
            .filter(|o| !o.is_empty())
            .count()
    }

    /// Calls `f` with every overused cell and its excess signal count
    /// (`distinct signals − 1`). Walks allocated chunks only, like
    /// [`Occupancy::total_overuse`]. This is the congestion-heatmap feed:
    /// forensic sampling needs the `Resource` identity of each hot cell,
    /// not just the total.
    pub fn for_each_overused(&self, mut f: impl FnMut(Resource, u64)) {
        for (c, chunk) in self.cells.iter().enumerate() {
            let Some(chunk) = chunk else { continue };
            for (i, owners) in chunk.iter().enumerate() {
                if owners.len() > 1 {
                    let idx = c * CHUNK + i;
                    f(self.mrrg.resource_of(idx), (owners.len() - 1) as u64);
                }
            }
        }
    }

    /// Calls `f` with the dense index of every overused cell. Skips
    /// unallocated chunks entirely, so congestion bookkeeping (PathFinder
    /// history accumulation) costs O(touched fabric), not O(fabric).
    pub(crate) fn for_each_overused_index(&self, mut f: impl FnMut(usize)) {
        for (c, chunk) in self.cells.iter().enumerate() {
            let Some(chunk) = chunk else { continue };
            for (i, owners) in chunk.iter().enumerate() {
                if owners.len() > 1 {
                    f(c * CHUNK + i);
                }
            }
        }
    }

    /// Clears every claim (used when a mapper restarts an II attempt).
    /// Allocated chunks are kept (emptied, not dropped): a restart reuses
    /// the same fabric region, so re-materialising them would thrash.
    pub fn clear(&mut self) {
        for chunk in self.cells.iter_mut().flatten() {
            for owners in chunk.iter_mut() {
                owners.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, PeId};

    fn occ() -> Occupancy {
        Occupancy::new(&Mrrg::new(&presets::paper_4x4_r4(), 2))
    }

    fn fu(pe: u32, slot: u32) -> Resource {
        Resource::Fu {
            pe: PeId::new(pe),
            slot,
        }
    }

    #[test]
    fn claim_release_round_trip() {
        let mut o = occ();
        let c = fu(0, 0);
        assert!(o.is_free(c));
        o.claim(c, NodeId::new(5), 0);
        assert!(!o.is_free(c));
        assert!(o.usable_by(c, NodeId::new(5), 0));
        assert!(!o.usable_by(c, NodeId::new(6), 0));
        o.release(c, NodeId::new(5), 0);
        assert!(o.is_free(c));
    }

    #[test]
    fn refcounted_sharing() {
        let mut o = occ();
        let c = fu(1, 1);
        o.claim(c, NodeId::new(2), 3);
        o.claim(c, NodeId::new(2), 3);
        o.release(c, NodeId::new(2), 3);
        assert!(!o.is_free(c), "one reference remains");
        o.release(c, NodeId::new(2), 3);
        assert!(o.is_free(c));
    }

    #[test]
    fn same_signal_different_phase_is_overuse() {
        // Two uses of one cell by the same signal at different ages carry
        // different iterations' values at the same cycle: physically
        // impossible, so it must count as overuse.
        let mut o = occ();
        let c = fu(1, 0);
        o.claim(c, NodeId::new(4), 1);
        assert!(!o.usable_by(c, NodeId::new(4), 3));
        assert!(o.usable_by_any_phase(c, NodeId::new(4)));
        o.claim(c, NodeId::new(4), 3);
        assert!(o.is_overused(c));
    }

    #[test]
    fn overuse_accounting() {
        let mut o = occ();
        let c = fu(2, 0);
        o.claim(c, NodeId::new(0), 0);
        o.claim(c, NodeId::new(1), 0);
        o.claim(c, NodeId::new(2), 0);
        assert_eq!(o.total_overuse(), 2);
        let signals = o.overused_signals();
        assert_eq!(signals.len(), 3);
        o.release(c, NodeId::new(1), 0);
        o.release(c, NodeId::new(2), 0);
        assert_eq!(o.total_overuse(), 0);
    }

    #[test]
    #[should_panic(expected = "release of unclaimed")]
    fn unbalanced_release_panics() {
        let mut o = occ();
        o.release(fu(0, 0), NodeId::new(9), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut o = occ();
        o.claim(fu(0, 0), NodeId::new(1), 0);
        o.claim(fu(3, 1), NodeId::new(2), 0);
        assert_eq!(o.used_cells(), 2);
        o.clear();
        assert_eq!(o.used_cells(), 0);
    }

    #[test]
    fn chunks_materialise_only_on_claim() {
        // A big-fabric occupancy allocates nothing up front; reads of the
        // untouched fabric stay allocation-free, and one claim allocates
        // exactly one chunk.
        let cgra = rewire_arch::CgraBuilder::new(64, 64).build().unwrap();
        let mrrg = Mrrg::new(&cgra, 4);
        let mut o = Occupancy::new(&mrrg);
        assert_eq!(o.allocated_chunks(), 0);
        assert_eq!(o.total_overuse(), 0);
        assert_eq!(o.used_cells(), 0);
        let far = Resource::Fu {
            pe: cgra.pes().last().unwrap().id(),
            slot: 3,
        };
        assert!(o.is_free(far), "reads never allocate");
        assert!(o.usable_by(far, NodeId::new(0), 0));
        assert_eq!(o.allocated_chunks(), 0);
        o.claim(far, NodeId::new(0), 0);
        assert_eq!(o.allocated_chunks(), 1);
        assert_eq!(o.used_cells(), 1);
        o.release(far, NodeId::new(0), 0);
        assert!(o.is_free(far));
    }

    #[test]
    fn clear_keeps_materialised_chunks() {
        let mut o = occ();
        o.claim(fu(0, 0), NodeId::new(1), 0);
        let chunks = o.allocated_chunks();
        assert!(chunks > 0);
        o.clear();
        assert_eq!(o.used_cells(), 0);
        assert_eq!(o.allocated_chunks(), chunks, "restart reuses chunks");
    }

    #[test]
    #[should_panic(expected = "release of unclaimed")]
    fn release_into_unallocated_chunk_panics() {
        let cgra = rewire_arch::CgraBuilder::new(16, 16).build().unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let mut o = Occupancy::new(&mrrg);
        o.release(
            Resource::Fu {
                pe: cgra.pes().last().unwrap().id(),
                slot: 1,
            },
            NodeId::new(3),
            0,
        );
    }

    #[test]
    fn overused_walk_matches_dense_semantics() {
        let mut o = occ();
        let hot = fu(2, 0);
        o.claim(hot, NodeId::new(0), 0);
        o.claim(hot, NodeId::new(1), 0);
        o.claim(fu(0, 1), NodeId::new(2), 0);
        let mut seen = Vec::new();
        o.for_each_overused_index(|idx| seen.push(idx));
        assert_eq!(seen, vec![o.mrrg().index_of(hot)]);
    }

    #[test]
    fn public_overused_walk_yields_resources_and_excess() {
        let mut o = occ();
        let hot = fu(2, 0);
        o.claim(hot, NodeId::new(0), 0);
        o.claim(hot, NodeId::new(1), 0);
        o.claim(hot, NodeId::new(2), 0);
        o.claim(fu(0, 1), NodeId::new(3), 0);
        let mut seen = Vec::new();
        o.for_each_overused(|res, excess| seen.push((res, excess)));
        assert_eq!(seen, vec![(hot, 2)]);
    }
}
