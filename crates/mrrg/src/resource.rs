//! MRRG resource cells.

use rewire_arch::{LinkId, PeId};
use std::fmt;

/// One time-extended resource cell of the MRRG.
///
/// `slot` is always a *modulo* cycle in `0..II`; absolute schedule times are
/// reduced by the owning [`Mrrg`](crate::Mrrg) before cells are touched.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Resource {
    /// The ALU of `pe` in modulo slot `slot` (exclusive to one DFG node).
    Fu {
        /// Owning PE.
        pe: PeId,
        /// Modulo cycle slot.
        slot: u32,
    },
    /// The directed NoC link `link` in modulo slot `slot`.
    Link {
        /// The traversed link.
        link: LinkId,
        /// Modulo slot of the departure cycle.
        slot: u32,
    },
    /// Register `reg` of `pe` during modulo slot `slot`.
    Reg {
        /// Owning PE.
        pe: PeId,
        /// Register index within the PE's register file.
        reg: u8,
        /// Modulo slot during which the value resides in the register.
        slot: u32,
    },
}

impl Resource {
    /// The modulo slot of this cell.
    pub fn slot(&self) -> u32 {
        match *self {
            Resource::Fu { slot, .. }
            | Resource::Link { slot, .. }
            | Resource::Reg { slot, .. } => slot,
        }
    }

    /// `true` for register cells — the scarce commodity the paper's
    /// 1-register configuration stresses.
    pub fn is_reg(&self) -> bool {
        matches!(self, Resource::Reg { .. })
    }

    /// `true` for link cells.
    pub fn is_link(&self) -> bool {
        matches!(self, Resource::Link { .. })
    }

    /// `true` for FU cells.
    pub fn is_fu(&self) -> bool {
        matches!(self, Resource::Fu { .. })
    }

    /// Resource class label for forensics: `"fu"`, `"link"`, or `"reg"`.
    pub fn class(&self) -> &'static str {
        match self {
            Resource::Fu { .. } => "fu",
            Resource::Link { .. } => "link",
            Resource::Reg { .. } => "reg",
        }
    }

    /// The `(pe, class, cycle)` key the flight recorder's congestion
    /// heatmap uses. Links are attributed to their *source* PE (the PE
    /// whose output port contends), which needs the owning fabric.
    pub fn forensics_key(&self, cgra: &rewire_arch::Cgra) -> (u32, &'static str, u32) {
        let pe = match *self {
            Resource::Fu { pe, .. } | Resource::Reg { pe, .. } => pe,
            Resource::Link { link, .. } => cgra.link(link).src(),
        };
        (pe.index() as u32, self.class(), self.slot())
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Resource::Fu { pe, slot } => write!(f, "FU({pe}@{slot})"),
            Resource::Link { link, slot } => write!(f, "LINK({link}@{slot})"),
            Resource::Reg { pe, reg, slot } => write!(f, "REG({pe}.r{reg}@{slot})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let fu = Resource::Fu {
            pe: PeId::new(0),
            slot: 1,
        };
        let link = Resource::Link {
            link: LinkId::new(2),
            slot: 0,
        };
        let reg = Resource::Reg {
            pe: PeId::new(3),
            reg: 1,
            slot: 2,
        };
        assert!(fu.is_fu() && !fu.is_link() && !fu.is_reg());
        assert!(link.is_link());
        assert!(reg.is_reg());
        assert_eq!(fu.slot(), 1);
        assert_eq!(link.slot(), 0);
        assert_eq!(reg.slot(), 2);
    }

    #[test]
    fn forensics_keys_attribute_links_to_their_source_pe() {
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let fu = Resource::Fu {
            pe: PeId::new(5),
            slot: 2,
        };
        assert_eq!(fu.forensics_key(&cgra), (5, "fu", 2));
        let reg = Resource::Reg {
            pe: PeId::new(3),
            reg: 0,
            slot: 1,
        };
        assert_eq!(reg.forensics_key(&cgra), (3, "reg", 1));
        let link = cgra.links().next().unwrap();
        let cell = Resource::Link {
            link: link.id(),
            slot: 0,
        };
        assert_eq!(
            cell.forensics_key(&cgra),
            (link.src().index() as u32, "link", 0)
        );
        assert_eq!(cell.class(), "link");
    }

    #[test]
    fn display_forms() {
        let reg = Resource::Reg {
            pe: PeId::new(3),
            reg: 1,
            slot: 2,
        };
        assert_eq!(format!("{reg}"), "REG(PE3.r1@2)");
    }
}
