//! Route trees: the consolidated fan-out view of one signal's routes.
//!
//! A producer with fan-out `k` drives `k` [`Route`]s that all leave the
//! same PE at the same cycle. [`Occupancy`](crate::Occupancy) already lets
//! those routes share cells — same signal at equal phase is fan-out, not
//! overuse — so a set of per-edge routes implicitly forms a *route tree*:
//! a shared trunk leaving the producer plus per-sink branches that peel
//! off where the destinations diverge. This module makes that tree
//! explicit: [`RouteTree::from_branches`] validates the sharing
//! invariants and the accessors expose the structural quantities
//! (footprint, shared cells, per-sink arrivals) the differential suite
//! and the property tests pin.
//!
//! # Invariants
//!
//! A valid tree satisfies, and `from_branches` enforces:
//!
//! 1. **Common root** — every branch departs the same `(signal, src_pe,
//!    depart_cycle)`.
//! 2. **Phase-consistent sharing** — a cell used by two branches is used
//!    at the *same* phase (age since departure) by both. Equal-phase
//!    sharing is exactly what `Occupancy` admits without overuse;
//!    unequal phases would put two different iterations' values on one
//!    physical resource in the same cycle.
//! 3. **Acyclicity** — no branch visits a cell twice. Together with (2)
//!    this makes the union of branches a DAG: the phase function is
//!    well-defined on cells and strictly increases along every edge of
//!    the union, so no cycle can close.

use crate::{Mrrg, Resource, Route};
use rewire_arch::PeId;
use rewire_dfg::NodeId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One signal's routes, validated as a shared route tree.
///
/// Branches keep the order they were supplied in (one per sink), so a
/// caller can zip them back to its edge list.
#[derive(Clone, PartialEq, Debug)]
pub struct RouteTree {
    branches: Vec<Route>,
}

/// Why a set of routes is not a valid route tree.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum RouteTreeError {
    /// No branches were supplied.
    Empty,
    /// A branch carries a different signal than the first.
    MixedSignals {
        /// The tree's signal (from the first branch).
        expected: NodeId,
        /// The offending branch's signal.
        found: NodeId,
    },
    /// A branch departs from a different PE or cycle than the first.
    MixedRoots {
        /// Index of the offending branch.
        branch: usize,
    },
    /// Two branches use one cell at different phases (value ages), which
    /// `Occupancy` counts as overuse even within one signal.
    PhaseConflict {
        /// The doubly-aged cell.
        cell: Resource,
        /// The two conflicting phases.
        phases: (u32, u32),
    },
    /// One branch visits a cell twice (the router never emits this; it
    /// guards hand-assembled routes).
    CyclicBranch {
        /// Index of the offending branch.
        branch: usize,
        /// The revisited cell.
        cell: Resource,
    },
}

impl fmt::Display for RouteTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteTreeError::Empty => f.write_str("route tree needs at least one branch"),
            RouteTreeError::MixedSignals { expected, found } => {
                write!(f, "branch carries {found}, tree carries {expected}")
            }
            RouteTreeError::MixedRoots { branch } => {
                write!(f, "branch {branch} departs from a different root")
            }
            RouteTreeError::PhaseConflict { cell, phases } => write!(
                f,
                "cell {cell} used at phases {} and {}",
                phases.0, phases.1
            ),
            RouteTreeError::CyclicBranch { branch, cell } => {
                write!(f, "branch {branch} revisits {cell}")
            }
        }
    }
}

impl Error for RouteTreeError {}

impl RouteTree {
    /// Validates `branches` as one signal's route tree (see the module
    /// docs for the invariants).
    ///
    /// # Errors
    ///
    /// Returns the first violated [`RouteTreeError`] invariant.
    pub fn from_branches(branches: Vec<Route>) -> Result<Self, RouteTreeError> {
        let first = branches.first().ok_or(RouteTreeError::Empty)?;
        let signal = first.signal();
        let root = (first.request().src_pe, first.request().depart_cycle);
        let mut phase_of: HashMap<Resource, u32> = HashMap::new();
        for (b, route) in branches.iter().enumerate() {
            if route.signal() != signal {
                return Err(RouteTreeError::MixedSignals {
                    expected: signal,
                    found: route.signal(),
                });
            }
            if (route.request().src_pe, route.request().depart_cycle) != root {
                return Err(RouteTreeError::MixedRoots { branch: b });
            }
            let mut seen_this_branch: HashMap<Resource, ()> = HashMap::new();
            for (k, &cell) in route.resources().iter().enumerate() {
                if seen_this_branch.insert(cell, ()).is_some() {
                    return Err(RouteTreeError::CyclicBranch { branch: b, cell });
                }
                let phase = k as u32;
                match phase_of.get(&cell) {
                    Some(&p) if p != phase => {
                        return Err(RouteTreeError::PhaseConflict {
                            cell,
                            phases: (p, phase),
                        })
                    }
                    _ => {
                        phase_of.insert(cell, phase);
                    }
                }
            }
        }
        Ok(Self { branches })
    }

    /// The signal every branch carries.
    pub fn signal(&self) -> NodeId {
        self.branches[0].signal()
    }

    /// The producer PE all branches leave from.
    pub fn src_pe(&self) -> PeId {
        self.branches[0].request().src_pe
    }

    /// The absolute cycle the value is on the source wire.
    pub fn depart_cycle(&self) -> u32 {
        self.branches[0].request().depart_cycle
    }

    /// The branches, in the order supplied to
    /// [`from_branches`](RouteTree::from_branches).
    pub fn branches(&self) -> &[Route] {
        &self.branches
    }

    /// Number of sinks.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// `(dst_pe, arrive_cycle)` per branch, in branch order.
    pub fn sinks(&self) -> impl Iterator<Item = (PeId, u32)> + '_ {
        self.branches
            .iter()
            .map(|r| (r.request().dst_pe, r.request().arrive_cycle))
    }

    /// Number of *distinct* MRRG cells the tree occupies — the quantity
    /// trunk sharing reduces versus independent per-edge routing.
    pub fn footprint(&self) -> usize {
        let mut cells: Vec<usize> = Vec::new();
        self.for_each_cell_index(|idx| cells.push(idx));
        cells.sort_unstable();
        cells.dedup();
        cells.len()
    }

    /// Sum of the branch lengths (cells counted once per use). The
    /// difference `total_cells() − footprint()` is the trunk sharing the
    /// tree achieves.
    pub fn total_cells(&self) -> usize {
        self.branches.iter().map(|r| r.resources().len()).sum()
    }

    /// Number of distinct cells used by at least two branches.
    pub fn shared_cells(&self) -> usize {
        let mut cells: Vec<usize> = Vec::new();
        self.for_each_cell_index(|idx| cells.push(idx));
        cells.sort_unstable();
        let mut shared = 0;
        let mut i = 0;
        while i < cells.len() {
            let mut j = i + 1;
            while j < cells.len() && cells[j] == cells[i] {
                j += 1;
            }
            if j - i >= 2 {
                shared += 1;
            }
            i = j;
        }
        shared
    }

    /// A stable fingerprint of the tree's resource usage: the sorted
    /// multiset of `(cell index, phase)` pairs, FNV-1a hashed. Two trees
    /// with identical cell usage fingerprint identically regardless of
    /// branch order — the per-signal key the differential suite records.
    pub fn fingerprint(&self, mrrg: &Mrrg) -> u64 {
        let mut pairs: Vec<(usize, u32)> = Vec::new();
        for route in &self.branches {
            for (k, &cell) in route.resources().iter().enumerate() {
                pairs.push((mrrg.index_of(cell), k as u32));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut hash: u64 = 0xcbf29ce484222325;
        for (idx, phase) in pairs {
            for byte in (idx as u64)
                .to_le_bytes()
                .iter()
                .chain(phase.to_le_bytes().iter())
            {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x100000001b3);
            }
        }
        hash
    }

    /// Dense cell indices of every use, via `mrrg`-free local indexing:
    /// branches only need relative identity, so the tree hashes cells by
    /// position in a first-seen table rather than requiring the shape.
    fn for_each_cell_index(&self, mut f: impl FnMut(usize)) {
        let mut interned: HashMap<Resource, usize> = HashMap::new();
        for route in &self.branches {
            for &cell in route.resources() {
                let next = interned.len();
                let idx = *interned.entry(cell).or_insert(next);
                f(idx);
            }
        }
    }
}

impl fmt::Display for RouteTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tree {} from {}@{}: {} sinks, {} cells ({} shared)",
            self.signal(),
            self.src_pe(),
            self.depart_cycle(),
            self.num_branches(),
            self.footprint(),
            self.shared_cells()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteRequest;
    use rewire_arch::LinkId;

    fn req(signal: u32, src: u32, depart: u32, dst: u32, arrive: u32) -> RouteRequest {
        RouteRequest {
            signal: NodeId::new(signal),
            src_pe: PeId::new(src),
            depart_cycle: depart,
            dst_pe: PeId::new(dst),
            arrive_cycle: arrive,
        }
    }

    fn link(id: u32, slot: u32) -> Resource {
        Resource::Link {
            link: LinkId::new(id),
            slot,
        }
    }

    #[test]
    fn valid_tree_shares_a_trunk() {
        // Two branches sharing the first hop at phase 0.
        let trunk = link(0, 1);
        let a = Route::from_parts(req(3, 0, 1, 2, 3), vec![trunk, link(1, 0)], 2.0);
        let b = Route::from_parts(req(3, 0, 1, 5, 3), vec![trunk, link(2, 0)], 2.0);
        let tree = RouteTree::from_branches(vec![a, b]).unwrap();
        assert_eq!(tree.signal(), NodeId::new(3));
        assert_eq!(tree.num_branches(), 2);
        assert_eq!(tree.total_cells(), 4);
        assert_eq!(tree.footprint(), 3, "trunk counted once");
        assert_eq!(tree.shared_cells(), 1);
        assert_eq!(tree.sinks().count(), 2);
        assert!(format!("{tree}").contains("2 sinks"));
    }

    #[test]
    fn empty_and_mixed_inputs_are_rejected() {
        assert_eq!(
            RouteTree::from_branches(vec![]).unwrap_err(),
            RouteTreeError::Empty
        );
        let a = Route::from_parts(req(3, 0, 1, 2, 2), vec![link(0, 1)], 1.0);
        let other_signal = Route::from_parts(req(4, 0, 1, 2, 2), vec![link(1, 1)], 1.0);
        assert!(matches!(
            RouteTree::from_branches(vec![a.clone(), other_signal]).unwrap_err(),
            RouteTreeError::MixedSignals { .. }
        ));
        let other_root = Route::from_parts(req(3, 1, 1, 2, 2), vec![link(1, 1)], 1.0);
        assert!(matches!(
            RouteTree::from_branches(vec![a.clone(), other_root]).unwrap_err(),
            RouteTreeError::MixedRoots { branch: 1 }
        ));
        let later_depart = Route::from_parts(req(3, 0, 2, 2, 3), vec![link(1, 1)], 1.0);
        assert!(matches!(
            RouteTree::from_branches(vec![a, later_depart]).unwrap_err(),
            RouteTreeError::MixedRoots { branch: 1 }
        ));
    }

    #[test]
    fn phase_conflicts_and_cycles_are_rejected() {
        let cell = link(0, 1);
        // Same cell at phase 0 in one branch, phase 1 in the other.
        let a = Route::from_parts(req(3, 0, 1, 2, 2), vec![cell], 1.0);
        let b = Route::from_parts(req(3, 0, 1, 5, 3), vec![link(1, 0), cell], 2.0);
        let e = RouteTree::from_branches(vec![a, b]).unwrap_err();
        assert!(matches!(e, RouteTreeError::PhaseConflict { .. }));
        assert!(e.to_string().contains("phases"));

        let looped = Route::from_parts(req(3, 0, 1, 2, 3), vec![cell, cell], 2.0);
        assert!(matches!(
            RouteTree::from_branches(vec![looped]).unwrap_err(),
            RouteTreeError::CyclicBranch { branch: 0, .. }
        ));
    }

    #[test]
    fn fingerprint_is_branch_order_independent() {
        let cgra = rewire_arch::presets::paper_4x4_r4();
        let mrrg = Mrrg::new(&cgra, 2);
        let l0 = cgra.links().next().unwrap().id();
        let l1 = cgra.links().nth(1).unwrap().id();
        let trunk = Resource::Link { link: l0, slot: 1 };
        let a = Route::from_parts(
            req(3, 0, 1, 2, 3),
            vec![trunk, Resource::Link { link: l1, slot: 0 }],
            2.0,
        );
        let b = Route::from_parts(req(3, 0, 1, 5, 2), vec![trunk], 1.0);
        let ab = RouteTree::from_branches(vec![a.clone(), b.clone()]).unwrap();
        let ba = RouteTree::from_branches(vec![b, a]).unwrap();
        assert_eq!(ab.fingerprint(&mrrg), ba.fingerprint(&mrrg));
        assert_ne!(ab.fingerprint(&mrrg), 0);
    }
}
