//! Routes: committed paths through the MRRG.

use crate::Resource;
use rewire_arch::PeId;
use rewire_dfg::NodeId;
use std::error::Error;
use std::fmt;

/// A routing request: carry `signal` from the output wire of `src_pe`
/// (driven at `depart_cycle`) into `dst_pe`'s FU at `arrive_cycle`.
///
/// Both cycles are *absolute* schedule times; the router reduces them to
/// modulo slots when touching cells. For a DFG edge `(u, v, dist)`:
/// `depart_cycle = t_u + 1` and `arrive_cycle = t_v + dist·II`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouteRequest {
    /// The producing DFG node (sharing key).
    pub signal: NodeId,
    /// PE whose output wire carries the value.
    pub src_pe: PeId,
    /// Absolute cycle at which the value is on the source wire.
    pub depart_cycle: u32,
    /// PE whose FU consumes the value.
    pub dst_pe: PeId,
    /// Absolute cycle at which the consumer reads it.
    pub arrive_cycle: u32,
}

impl RouteRequest {
    /// Number of resource steps the path must take
    /// (`arrive_cycle − depart_cycle`), or `None` if the request is
    /// backwards in time.
    pub fn num_steps(&self) -> Option<u32> {
        self.arrive_cycle.checked_sub(self.depart_cycle)
    }
}

impl fmt::Display for RouteRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}@{} → {}@{}",
            self.signal, self.src_pe, self.depart_cycle, self.dst_pe, self.arrive_cycle
        )
    }
}

/// A realised route: the request plus the ordered cells it occupies.
///
/// Step `k` of the path consumes `resources()[k]` during absolute cycle
/// `depart_cycle + k`. Routes are value objects; claiming/releasing their
/// cells is [`Occupancy`](crate::Occupancy)'s job.
#[derive(Clone, PartialEq, Debug)]
pub struct Route {
    request: RouteRequest,
    resources: Vec<Resource>,
    cost: f64,
}

impl Route {
    pub(crate) fn new(request: RouteRequest, resources: Vec<Resource>, cost: f64) -> Self {
        Self {
            request,
            resources,
            cost,
        }
    }

    /// Assembles a route from raw parts, without any routing.
    ///
    /// Two legitimate callers exist: failure injection — building
    /// deliberately wrong paths (a mis-slotted cell, a register held
    /// across the modulo wrap) to prove that the simulator and the fuzz
    /// oracle catch what structural validation alone cannot — and the
    /// exact SAT backend's model decoder, which reconstructs cell lists
    /// from a satisfying assignment and immediately re-validates the full
    /// mapping. Heuristic mapping code must never call it; the router is
    /// their only producer of correct routes.
    pub fn from_parts(request: RouteRequest, resources: Vec<Resource>, cost: f64) -> Self {
        Self::new(request, resources, cost)
    }

    /// The request this route satisfies.
    pub fn request(&self) -> &RouteRequest {
        &self.request
    }

    /// The sharing key (producing DFG node).
    pub fn signal(&self) -> NodeId {
        self.request.signal
    }

    /// The ordered cells occupied, one per cycle of the path.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Total router cost of the path (1.0 per cell under
    /// [`UnitCost`](crate::UnitCost)).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of link hops on the path.
    pub fn hops(&self) -> usize {
        self.resources.iter().filter(|r| r.is_link()).count()
    }

    /// Number of register-cycle cells on the path.
    pub fn reg_cycles(&self) -> usize {
        self.resources.iter().filter(|r| r.is_reg()).count()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.request)?;
        for (i, r) in self.resources.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

/// Routing failure.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum RouteError {
    /// The arrival precedes the departure — a scheduling bug upstream.
    NegativeLength {
        /// The impossible request.
        request: RouteRequest,
    },
    /// No path of the required exact length exists under the cost model
    /// (cells blocked, or the fabric simply cannot deliver in time).
    NoPath {
        /// The unroutable request.
        request: RouteRequest,
    },
}

impl RouteError {
    /// Short static label for forensics (flight-recorder `RouteFailed`
    /// events tag failures with this, so the doctor can rank reasons
    /// without string parsing).
    pub fn label(&self) -> &'static str {
        match self {
            RouteError::NegativeLength { .. } => "negative_length",
            RouteError::NoPath { .. } => "no_path",
        }
    }
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NegativeLength { request } => {
                write!(f, "arrival precedes departure in request {request}")
            }
            RouteError::NoPath { request } => write!(f, "no feasible path for request {request}"),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::LinkId;

    fn req() -> RouteRequest {
        RouteRequest {
            signal: NodeId::new(0),
            src_pe: PeId::new(0),
            depart_cycle: 1,
            dst_pe: PeId::new(1),
            arrive_cycle: 3,
        }
    }

    #[test]
    fn num_steps() {
        assert_eq!(req().num_steps(), Some(2));
        let mut backwards = req();
        backwards.arrive_cycle = 0;
        assert_eq!(backwards.num_steps(), None);
    }

    #[test]
    fn route_statistics() {
        let r = Route::new(
            req(),
            vec![
                Resource::Reg {
                    pe: PeId::new(0),
                    reg: 0,
                    slot: 1,
                },
                Resource::Link {
                    link: LinkId::new(0),
                    slot: 0,
                },
            ],
            2.0,
        );
        assert_eq!(r.hops(), 1);
        assert_eq!(r.reg_cycles(), 1);
        assert_eq!(r.cost(), 2.0);
        assert!(format!("{r}").contains("REG"));
    }

    #[test]
    fn from_parts_is_equivalent_to_new() {
        let cells = vec![Resource::Link {
            link: LinkId::new(3),
            slot: 1,
        }];
        assert_eq!(
            Route::from_parts(req(), cells.clone(), 1.0),
            Route::new(req(), cells, 1.0)
        );
    }

    #[test]
    fn error_display() {
        let e = RouteError::NoPath { request: req() };
        assert!(format!("{e}").contains("no feasible path"));
    }
}
