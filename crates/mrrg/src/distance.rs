//! Static per-architecture hop-distance oracle.
//!
//! The router's DP relaxes `(pe, carrier)` states layer by layer; a state
//! whose PE cannot reach the destination within the remaining steps can
//! never contribute to an arrival candidate, so relaxing it is pure waste.
//! This module precomputes the all-pairs minimum-hop table over the CGRA
//! link topology with one BFS per destination, giving the router an
//! admissible (never over-estimating) lower bound to prune against.
//!
//! The table depends only on the link topology, not on the II or the
//! occupancy, so it is computed once per fabric and shared: the router
//! caches it behind an [`Arc`] in [`RouterScratch`](crate::RouterScratch),
//! keyed by [`Cgra::topology_fingerprint`], and portfolio workers receive
//! the parent thread's table instead of re-running the BFS.

use rewire_arch::{Cgra, PeId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// All-pairs minimum link-hop distances over a CGRA's directed link graph.
///
/// `hops(from, to)` is the fewest links on any directed path `from → to`,
/// or [`DistanceTable::UNREACHABLE`] when no path exists (disconnected
/// fabrics). Distances follow the *links*, not grid geometry, so torus
/// wraps and diagonals are measured exactly — unlike
/// [`Cgra::distance`], which is a Manhattan/Chebyshev heuristic that
/// over-estimates on wrap-around fabrics and therefore must not be used
/// for exact pruning.
#[derive(Clone)]
pub struct DistanceTable {
    fingerprint: u64,
    num_pes: usize,
    /// Row-major by destination: `table[dst * num_pes + src]` holds the
    /// hop count `src → dst`, so one destination's row is a contiguous
    /// slice the router can index by source PE in its inner loop.
    table: Vec<u32>,
}

impl DistanceTable {
    /// Sentinel distance for PE pairs with no connecting path.
    pub const UNREACHABLE: u32 = u32::MAX;

    /// Computes the table for `cgra`: one BFS per destination over the
    /// reversed link graph (`links_to`), O(PEs · (PEs + links)) total.
    pub fn build(cgra: &Cgra) -> Self {
        let n = cgra.num_pes();
        let mut table = vec![Self::UNREACHABLE; n * n];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            let row = &mut table[dst * n..(dst + 1) * n];
            row[dst] = 0;
            queue.clear();
            queue.push_back(PeId::new(dst as u32));
            while let Some(pe) = queue.pop_front() {
                let d = row[pe.index()];
                for link in cgra.links_to(pe) {
                    let src = link.src();
                    if row[src.index()] == Self::UNREACHABLE {
                        row[src.index()] = d + 1;
                        queue.push_back(src);
                    }
                }
            }
        }
        Self {
            fingerprint: cgra.topology_fingerprint(),
            num_pes: n,
            table,
        }
    }

    /// Builds the table behind an [`Arc`], ready for cross-thread sharing.
    pub fn shared(cgra: &Cgra) -> Arc<Self> {
        Arc::new(Self::build(cgra))
    }

    /// Whether this table was built for `cgra`'s link topology.
    pub fn matches(&self, cgra: &Cgra) -> bool {
        self.fingerprint == cgra.topology_fingerprint() && self.num_pes == cgra.num_pes()
    }

    /// The fingerprint of the topology the table was built for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Minimum link hops `from → to`, or [`Self::UNREACHABLE`].
    pub fn hops(&self, from: PeId, to: PeId) -> u32 {
        self.table[to.index() * self.num_pes + from.index()]
    }

    /// The distance row for destination `to`, indexed by source PE — the
    /// router's hot-path accessor (one bounds check per route, not per
    /// state).
    pub fn to_pe(&self, to: PeId) -> &[u32] {
        &self.table[to.index() * self.num_pes..(to.index() + 1) * self.num_pes]
    }
}

impl fmt::Debug for DistanceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistanceTable")
            .field("fingerprint", &self.fingerprint)
            .field("num_pes", &self.num_pes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, CgraBuilder, Coord};

    fn pe(cgra: &Cgra, row: u16, col: u16) -> PeId {
        cgra.pe_at(Coord::new(row, col)).unwrap().id()
    }

    #[test]
    fn mesh_distances_match_manhattan() {
        let cgra = presets::paper_4x4_r4();
        let t = DistanceTable::build(&cgra);
        for a in cgra.pes() {
            for b in cgra.pes() {
                assert_eq!(
                    t.hops(a.id(), b.id()),
                    cgra.distance(a.id(), b.id()),
                    "{} -> {}",
                    a.id(),
                    b.id()
                );
            }
        }
    }

    #[test]
    fn torus_wraps_beat_the_manhattan_heuristic() {
        let cgra = CgraBuilder::new(4, 4).torus(true).build().unwrap();
        let t = DistanceTable::build(&cgra);
        let a = pe(&cgra, 0, 0);
        let b = pe(&cgra, 0, 3);
        assert_eq!(t.hops(a, b), 1, "one wrap link, not three mesh hops");
        assert_eq!(cgra.distance(a, b), 3, "the heuristic stays geometric");
    }

    #[test]
    fn rows_are_indexed_by_source() {
        let cgra = presets::paper_4x4_r4();
        let t = DistanceTable::build(&cgra);
        let dst = pe(&cgra, 2, 1);
        let row = t.to_pe(dst);
        for src in cgra.pes() {
            assert_eq!(row[src.id().index()], t.hops(src.id(), dst));
        }
    }

    #[test]
    fn matches_tracks_the_fingerprint() {
        let mesh = presets::paper_4x4_r4();
        let torus = CgraBuilder::new(4, 4).torus(true).build().unwrap();
        let t = DistanceTable::build(&mesh);
        assert!(t.matches(&mesh));
        assert!(!t.matches(&torus));
    }

    #[test]
    fn disconnected_islands_are_unreachable() {
        let cgra = CgraBuilder::new(4, 2).cut_row(2).build().unwrap();
        let t = DistanceTable::build(&cgra);
        let top = pe(&cgra, 0, 0);
        let bottom = pe(&cgra, 3, 1);
        assert_eq!(t.hops(top, bottom), DistanceTable::UNREACHABLE);
        assert_eq!(t.hops(bottom, top), DistanceTable::UNREACHABLE);
        // Within an island the distances stay finite.
        assert_eq!(t.hops(top, pe(&cgra, 1, 1)), 2);
    }
}
