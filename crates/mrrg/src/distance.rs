//! Static per-architecture hop-distance oracles.
//!
//! The router's DP relaxes `(pe, carrier)` states layer by layer; a state
//! whose PE cannot reach the destination within the remaining steps can
//! never contribute to an arrival candidate, so relaxing it is pure waste.
//! This module precomputes hop-distance information over the CGRA link
//! topology, giving the router an admissible (never over-estimating) lower
//! bound to prune against.
//!
//! Two oracle tiers exist, chosen by fabric size ([`DistanceOracle`]):
//!
//! * [`DistanceTable`] — the exact all-pairs table (one BFS per
//!   destination, `PEs²` entries). Perfect pruning, but quadratic memory:
//!   fine for the paper's ≤8×8 meshes and up to
//!   [`DistanceOracle::DENSE_PE_LIMIT`] PEs, ruinous at 64×64 (4096² ≈
//!   67 MB per fabric per cache slot).
//! * [`TieredDistance`] — a landmark oracle over a tile decomposition of
//!   the mesh: one landmark PE per `TILE×TILE` tile, two BFS passes per
//!   landmark (forward and reverse), `2·L·PEs` entries. Queries return a
//!   triangle-inequality *lower bound* on the true hop distance, so the
//!   router's pruning proof carries over unchanged — a state whose lower
//!   bound already exceeds the remaining budget is dead under the true
//!   distance too. The bound is weaker than exact (fewer states pruned),
//!   never wrong (routes stay byte-identical across oracle tiers, pinned
//!   by the differential suites).
//!
//! The tables depend only on the link topology, not on the II or the
//! occupancy, so they are computed once per fabric and shared: the router
//! caches them behind [`Arc`]s in [`RouterScratch`](crate::RouterScratch),
//! keyed by [`Cgra::topology_fingerprint`], and portfolio workers receive
//! the parent thread's oracle instead of re-running the BFS.

use rewire_arch::{Cgra, PeId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// All-pairs minimum link-hop distances over a CGRA's directed link graph.
///
/// `hops(from, to)` is the fewest links on any directed path `from → to`,
/// or [`DistanceTable::UNREACHABLE`] when no path exists (disconnected
/// fabrics). Distances follow the *links*, not grid geometry, so torus
/// wraps and diagonals are measured exactly — unlike
/// [`Cgra::distance`], which is a Manhattan/Chebyshev heuristic that
/// over-estimates on wrap-around fabrics and therefore must not be used
/// for exact pruning.
#[derive(Clone)]
pub struct DistanceTable {
    fingerprint: u64,
    num_pes: usize,
    /// Row-major by destination: `table[dst * num_pes + src]` holds the
    /// hop count `src → dst`, so one destination's row is a contiguous
    /// slice the router can index by source PE in its inner loop.
    table: Vec<u32>,
}

/// Breadth-first hop distances from `start` following `next(pe)` edges,
/// written into `row` (which must be pre-filled with `UNREACHABLE`).
fn bfs_into<'c>(
    row: &mut [u32],
    queue: &mut VecDeque<PeId>,
    start: PeId,
    next: impl Fn(PeId) -> Box<dyn Iterator<Item = PeId> + 'c>,
) {
    row[start.index()] = 0;
    queue.clear();
    queue.push_back(start);
    while let Some(pe) = queue.pop_front() {
        let d = row[pe.index()];
        for n in next(pe) {
            if row[n.index()] == DistanceTable::UNREACHABLE {
                row[n.index()] = d + 1;
                queue.push_back(n);
            }
        }
    }
}

impl DistanceTable {
    /// Sentinel distance for PE pairs with no connecting path.
    pub const UNREACHABLE: u32 = u32::MAX;

    /// Computes the table for `cgra`: one BFS per destination over the
    /// reversed link graph (`links_to`), O(PEs · (PEs + links)) total.
    pub fn build(cgra: &Cgra) -> Self {
        let n = cgra.num_pes();
        let mut table = vec![Self::UNREACHABLE; n * n];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            let row = &mut table[dst * n..(dst + 1) * n];
            bfs_into(row, &mut queue, PeId::new(dst as u32), |pe| {
                Box::new(cgra.links_to(pe).map(|l| l.src()))
            });
        }
        Self {
            fingerprint: cgra.topology_fingerprint(),
            num_pes: n,
            table,
        }
    }

    /// Builds the table behind an [`Arc`], ready for cross-thread sharing.
    pub fn shared(cgra: &Cgra) -> Arc<Self> {
        Arc::new(Self::build(cgra))
    }

    /// Whether this table was built for `cgra`'s link topology.
    pub fn matches(&self, cgra: &Cgra) -> bool {
        self.fingerprint == cgra.topology_fingerprint() && self.num_pes == cgra.num_pes()
    }

    /// The fingerprint of the topology the table was built for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Minimum link hops `from → to`, or [`Self::UNREACHABLE`].
    pub fn hops(&self, from: PeId, to: PeId) -> u32 {
        self.table[to.index() * self.num_pes + from.index()]
    }

    /// The distance row for destination `to`, indexed by source PE — the
    /// router's hot-path accessor (one bounds check per route, not per
    /// state).
    pub fn to_pe(&self, to: PeId) -> &[u32] {
        &self.table[to.index() * self.num_pes..(to.index() + 1) * self.num_pes]
    }

    /// Heap bytes held by the table (the memory the dense tier trades for
    /// exactness; reported through the `router.distance_table_bytes`
    /// gauge).
    pub fn heap_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<u32>()
    }
}

impl fmt::Debug for DistanceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistanceTable")
            .field("fingerprint", &self.fingerprint)
            .field("num_pes", &self.num_pes)
            .finish_non_exhaustive()
    }
}

/// Landmark/tile hop-distance oracle for fabrics too large for the dense
/// all-pairs table.
///
/// The mesh is decomposed into `TILE×TILE` tiles; each tile contributes
/// one landmark PE (its geometric center). For every landmark `l` two BFS
/// passes record `d(l, ·)` (forward) and `d(·, l)` (reverse). A query for
/// `d(a, b)` returns the best triangle-inequality lower bound over `a`'s
/// and `b`'s tile landmarks:
///
/// * `d(a, b) ≥ d(l, b) − d(l, a)` (forward table),
/// * `d(a, b) ≥ d(a, l) − d(b, l)` (reverse table),
///
/// and detects some genuinely unreachable pairs outright: if `l` reaches
/// `a` but not `b`, or `b` reaches `l` but `a` does not, then no path
/// `a → b` can exist (it would extend to the missing one). Both rules are
/// consequences of the triangle inequality on directed hop distances, so
/// the bound is *admissible*: it never exceeds the true distance (pinned
/// by proptest against the exact table in
/// `crates/mrrg/tests/distance_properties.rs`).
///
/// Memory is `2 · landmarks · PEs` entries — for a 64×64 mesh with 8×8
/// tiles that is 2·64·4096 u32 ≈ 2 MB, against 67 MB for the dense table.
#[derive(Clone)]
pub struct TieredDistance {
    fingerprint: u64,
    num_pes: usize,
    /// Tile landmark index per PE (`lm_of[pe]` indexes the tables below).
    lm_of: Vec<u16>,
    /// Row-major by landmark: `from[l * num_pes + pe]` = `d(landmark, pe)`.
    from: Vec<u32>,
    /// Row-major by landmark: `to[l * num_pes + pe]` = `d(pe, landmark)`.
    to: Vec<u32>,
}

impl TieredDistance {
    /// Tile edge length of the mesh decomposition (one landmark per tile).
    pub const TILE: u16 = 8;

    /// Builds the landmark oracle for `cgra`: two BFS passes per tile
    /// landmark, O(tiles · (PEs + links)) total.
    pub fn build(cgra: &Cgra) -> Self {
        let n = cgra.num_pes();
        let tiles_across = cgra.cols().div_ceil(Self::TILE).max(1);
        let tiles_down = cgra.rows().div_ceil(Self::TILE).max(1);
        let num_tiles = tiles_across as usize * tiles_down as usize;

        // Tile membership and one landmark per tile: the PE closest to the
        // tile center (tiles at the fabric edge may be partial).
        let mut lm_of = vec![0u16; n];
        let mut landmarks = vec![PeId::new(0); num_tiles];
        for pe in cgra.pes() {
            let c = pe.coord();
            let tile = (c.row / Self::TILE) as usize * tiles_across as usize
                + (c.col / Self::TILE) as usize;
            lm_of[pe.id().index()] = tile as u16;
        }
        for tr in 0..tiles_down {
            for tc in 0..tiles_across {
                let tile = tr as usize * tiles_across as usize + tc as usize;
                // Center of the (possibly clipped) tile.
                let row = (tr * Self::TILE + (Self::TILE / 2)).min(cgra.rows() - 1);
                let col = (tc * Self::TILE + (Self::TILE / 2)).min(cgra.cols() - 1);
                landmarks[tile] = cgra
                    .pe_at(rewire_arch::Coord::new(row, col))
                    .expect("tile center clipped into the grid")
                    .id();
            }
        }

        let mut from = vec![DistanceTable::UNREACHABLE; num_tiles * n];
        let mut to = vec![DistanceTable::UNREACHABLE; num_tiles * n];
        let mut queue = VecDeque::new();
        for (l, &lm) in landmarks.iter().enumerate() {
            bfs_into(&mut from[l * n..(l + 1) * n], &mut queue, lm, |pe| {
                Box::new(cgra.links_from(pe).map(|link| link.dst()))
            });
            bfs_into(&mut to[l * n..(l + 1) * n], &mut queue, lm, |pe| {
                Box::new(cgra.links_to(pe).map(|link| link.src()))
            });
        }

        Self {
            fingerprint: cgra.topology_fingerprint(),
            num_pes: n,
            lm_of,
            from,
            to,
        }
    }

    /// Whether this oracle was built for `cgra`'s link topology.
    pub fn matches(&self, cgra: &Cgra) -> bool {
        self.fingerprint == cgra.topology_fingerprint() && self.num_pes == cgra.num_pes()
    }

    /// Number of tile landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.from.len() / self.num_pes.max(1)
    }

    /// Admissible lower bound on the hop distance `from → to`:
    /// never exceeds the true distance, and returns
    /// [`DistanceTable::UNREACHABLE`] only for pairs that genuinely have
    /// no connecting path.
    pub fn lower_bound(&self, from: PeId, to: PeId) -> u32 {
        self.bound_indexed(from.index(), to.index())
    }

    #[inline]
    fn bound_indexed(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        let n = self.num_pes;
        let la = self.lm_of[a] as usize;
        let lb = self.lm_of[b] as usize;
        let mut best = 0u32;
        let mut l = la;
        loop {
            let fa = self.from[l * n + a]; // d(l, a)
            let fb = self.from[l * n + b]; // d(l, b)
            let ta = self.to[l * n + a]; //   d(a, l)
            let tb = self.to[l * n + b]; //   d(b, l)
            const UNREACHABLE: u32 = DistanceTable::UNREACHABLE;
            // l reaches a but not b ⇒ a→b would extend l→a→b: impossible.
            if fa != UNREACHABLE && fb == UNREACHABLE {
                return UNREACHABLE;
            }
            // b reaches l but a does not ⇒ a→b would extend a→b→l.
            if tb != UNREACHABLE && ta == UNREACHABLE {
                return UNREACHABLE;
            }
            if fa != UNREACHABLE && fb != UNREACHABLE {
                best = best.max(fb.saturating_sub(fa)); // d(a,b) ≥ d(l,b) − d(l,a)
            }
            if ta != UNREACHABLE && tb != UNREACHABLE {
                best = best.max(ta.saturating_sub(tb)); // d(a,b) ≥ d(a,l) − d(b,l)
            }
            if l == lb {
                break;
            }
            l = lb;
        }
        best
    }

    /// Heap bytes held by the landmark tables.
    pub fn heap_bytes(&self) -> usize {
        (self.from.capacity() + self.to.capacity()) * std::mem::size_of::<u32>()
            + self.lm_of.capacity() * std::mem::size_of::<u16>()
    }
}

impl fmt::Debug for TieredDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TieredDistance")
            .field("fingerprint", &self.fingerprint)
            .field("num_pes", &self.num_pes)
            .field("landmarks", &self.num_landmarks())
            .finish_non_exhaustive()
    }
}

/// Size-tiered hop-distance oracle: exact dense table up to
/// [`DistanceOracle::DENSE_PE_LIMIT`] PEs, landmark lower bounds above.
///
/// Both tiers expose the same contract the router prunes against — an
/// admissible lower bound on `d(src, dst)` — so the pruning exactness
/// proof in [`Router::route_attempt`](crate::Router) holds for either:
/// pruned routes are byte-identical to the dense sweep regardless of the
/// tier in use.
#[derive(Clone, Debug)]
pub enum DistanceOracle {
    /// Exact all-pairs table (small fabrics).
    Dense(DistanceTable),
    /// Landmark lower-bound oracle (large fabrics).
    Tiered(TieredDistance),
}

impl DistanceOracle {
    /// Largest PE count served by the exact dense tier; above it
    /// [`DistanceOracle::build`] switches to the landmark oracle. 256 PEs
    /// (16×16) keeps the dense tier at ≤ 256 KB; 32×32 would already cost
    /// 4 MB per fabric per cache slot and 64×64 67 MB.
    pub const DENSE_PE_LIMIT: usize = 256;

    /// Builds the appropriate tier for `cgra`'s size.
    pub fn build(cgra: &Cgra) -> Self {
        if cgra.num_pes() <= Self::DENSE_PE_LIMIT {
            Self::Dense(DistanceTable::build(cgra))
        } else {
            Self::Tiered(TieredDistance::build(cgra))
        }
    }

    /// Builds the size-appropriate tier behind an [`Arc`].
    pub fn shared(cgra: &Cgra) -> Arc<Self> {
        Arc::new(Self::build(cgra))
    }

    /// Whether this oracle was built for `cgra`'s link topology.
    pub fn matches(&self, cgra: &Cgra) -> bool {
        match self {
            Self::Dense(t) => t.matches(cgra),
            Self::Tiered(t) => t.matches(cgra),
        }
    }

    /// The fingerprint of the topology the oracle was built for.
    pub fn fingerprint(&self) -> u64 {
        match self {
            Self::Dense(t) => t.fingerprint,
            Self::Tiered(t) => t.fingerprint,
        }
    }

    /// Whether the oracle returns exact distances (dense tier) rather
    /// than lower bounds.
    pub fn is_exact(&self) -> bool {
        matches!(self, Self::Dense(_))
    }

    /// Admissible lower bound on the hop distance `from → to` (exact in
    /// the dense tier).
    pub fn lower_bound(&self, from: PeId, to: PeId) -> u32 {
        match self {
            Self::Dense(t) => t.hops(from, to),
            Self::Tiered(t) => t.lower_bound(from, to),
        }
    }

    /// A per-destination view for the router's inner loop: resolves the
    /// destination once, then answers per-source queries without
    /// re-deriving it.
    pub fn bound_to(&self, dst: PeId) -> DistanceBound<'_> {
        match self {
            Self::Dense(t) => DistanceBound::Row(t.to_pe(dst)),
            Self::Tiered(t) => DistanceBound::Landmarks {
                oracle: t,
                dst: dst.index(),
            },
        }
    }

    /// Heap bytes held by the oracle's tables (reported through the
    /// `router.distance_table_bytes` gauge).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Self::Dense(t) => t.heap_bytes(),
            Self::Tiered(t) => t.heap_bytes(),
        }
    }
}

/// One destination's lower-bound view over a [`DistanceOracle`].
#[derive(Clone, Copy, Debug)]
pub enum DistanceBound<'a> {
    /// Dense tier: the destination's contiguous distance row.
    Row(&'a [u32]),
    /// Tiered tier: landmark queries against a fixed destination.
    Landmarks {
        /// The oracle the bounds come from.
        oracle: &'a TieredDistance,
        /// Destination PE index.
        dst: usize,
    },
}

impl DistanceBound<'_> {
    /// Admissible lower bound on the hop distance from PE index `src` to
    /// this view's destination.
    #[inline]
    pub fn get(&self, src: usize) -> u32 {
        match self {
            Self::Row(row) => row[src],
            Self::Landmarks { oracle, dst } => oracle.bound_indexed(src, *dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, CgraBuilder, Coord};

    fn pe(cgra: &Cgra, row: u16, col: u16) -> PeId {
        cgra.pe_at(Coord::new(row, col)).unwrap().id()
    }

    #[test]
    fn mesh_distances_match_manhattan() {
        let cgra = presets::paper_4x4_r4();
        let t = DistanceTable::build(&cgra);
        for a in cgra.pes() {
            for b in cgra.pes() {
                assert_eq!(
                    t.hops(a.id(), b.id()),
                    cgra.distance(a.id(), b.id()),
                    "{} -> {}",
                    a.id(),
                    b.id()
                );
            }
        }
    }

    #[test]
    fn torus_wraps_beat_the_manhattan_heuristic() {
        let cgra = CgraBuilder::new(4, 4).torus(true).build().unwrap();
        let t = DistanceTable::build(&cgra);
        let a = pe(&cgra, 0, 0);
        let b = pe(&cgra, 0, 3);
        assert_eq!(t.hops(a, b), 1, "one wrap link, not three mesh hops");
        assert_eq!(cgra.distance(a, b), 3, "the heuristic stays geometric");
    }

    #[test]
    fn rows_are_indexed_by_source() {
        let cgra = presets::paper_4x4_r4();
        let t = DistanceTable::build(&cgra);
        let dst = pe(&cgra, 2, 1);
        let row = t.to_pe(dst);
        for src in cgra.pes() {
            assert_eq!(row[src.id().index()], t.hops(src.id(), dst));
        }
    }

    #[test]
    fn matches_tracks_the_fingerprint() {
        let mesh = presets::paper_4x4_r4();
        let torus = CgraBuilder::new(4, 4).torus(true).build().unwrap();
        let t = DistanceTable::build(&mesh);
        assert!(t.matches(&mesh));
        assert!(!t.matches(&torus));
    }

    #[test]
    fn disconnected_islands_are_unreachable() {
        let cgra = CgraBuilder::new(4, 2).cut_row(2).build().unwrap();
        let t = DistanceTable::build(&cgra);
        let top = pe(&cgra, 0, 0);
        let bottom = pe(&cgra, 3, 1);
        assert_eq!(t.hops(top, bottom), DistanceTable::UNREACHABLE);
        assert_eq!(t.hops(bottom, top), DistanceTable::UNREACHABLE);
        // Within an island the distances stay finite.
        assert_eq!(t.hops(top, pe(&cgra, 1, 1)), 2);
    }

    #[test]
    fn tiered_is_admissible_on_a_plain_mesh() {
        let cgra = CgraBuilder::new(10, 10).build().unwrap();
        let exact = DistanceTable::build(&cgra);
        let tiered = TieredDistance::build(&cgra);
        assert_eq!(tiered.num_landmarks(), 4, "10x10 with 8x8 tiles");
        for a in cgra.pes() {
            for b in cgra.pes() {
                let lb = tiered.lower_bound(a.id(), b.id());
                let d = exact.hops(a.id(), b.id());
                assert!(lb <= d, "{} -> {}: lb {lb} > true {d}", a.id(), b.id());
            }
        }
    }

    #[test]
    fn tiered_detects_cut_islands() {
        // Landmark on each island ⇒ cross-island pairs are provably
        // unreachable, same-island pairs keep finite (admissible) bounds.
        let cgra = CgraBuilder::new(20, 4).cut_row(10).build().unwrap();
        let exact = DistanceTable::build(&cgra);
        let tiered = TieredDistance::build(&cgra);
        let top = pe(&cgra, 0, 0);
        let bottom = pe(&cgra, 19, 3);
        assert_eq!(
            tiered.lower_bound(top, bottom),
            DistanceTable::UNREACHABLE,
            "cross-island pair detected via landmark reachability"
        );
        for a in cgra.pes() {
            for b in cgra.pes() {
                let lb = tiered.lower_bound(a.id(), b.id());
                let d = exact.hops(a.id(), b.id());
                if lb == DistanceTable::UNREACHABLE {
                    assert_eq!(d, DistanceTable::UNREACHABLE, "{} -> {}", a.id(), b.id());
                } else {
                    assert!(lb <= d, "{} -> {}: lb {lb} > true {d}", a.id(), b.id());
                }
            }
        }
    }

    #[test]
    fn oracle_switches_tiers_at_the_limit() {
        let small = CgraBuilder::new(16, 16).build().unwrap();
        assert!(DistanceOracle::build(&small).is_exact(), "256 PEs is dense");
        let big = CgraBuilder::new(17, 16).build().unwrap();
        let oracle = DistanceOracle::build(&big);
        assert!(!oracle.is_exact(), "272 PEs exceeds the dense limit");
        assert!(oracle.matches(&big));
        assert!(!oracle.matches(&small));
        assert!(oracle.heap_bytes() < 17 * 16 * 17 * 16 * 4, "sub-quadratic");
    }

    #[test]
    fn bound_views_agree_with_point_queries() {
        for cgra in [
            CgraBuilder::new(9, 9).build().unwrap(),
            CgraBuilder::new(9, 9).torus(true).build().unwrap(),
        ] {
            let exact = DistanceTable::build(&cgra);
            for oracle in [
                DistanceOracle::Dense(DistanceTable::build(&cgra)),
                DistanceOracle::Tiered(TieredDistance::build(&cgra)),
            ] {
                for dst in cgra.pes() {
                    let view = oracle.bound_to(dst.id());
                    for src in cgra.pes() {
                        let got = view.get(src.id().index());
                        assert_eq!(got, oracle.lower_bound(src.id(), dst.id()));
                        assert!(got <= exact.hops(src.id(), dst.id()));
                    }
                }
            }
        }
    }

    #[test]
    fn dense_heap_bytes_are_quadratic() {
        let cgra = presets::paper_4x4_r4();
        let t = DistanceTable::build(&cgra);
        assert!(t.heap_bytes() >= 16 * 16 * 4);
        let oracle = DistanceOracle::build(&cgra);
        assert_eq!(oracle.heap_bytes(), t.heap_bytes());
        assert_eq!(oracle.fingerprint(), cgra.topology_fingerprint());
    }
}
