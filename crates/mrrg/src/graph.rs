//! MRRG dimensions and dense cell indexing.

use crate::Resource;
use rewire_arch::{Cgra, LinkId, PeId};
use std::fmt;

/// The shape of a time-extended resource graph: the architecture's resource
/// counts crossed with an initiation interval.
///
/// `Mrrg` owns no per-cell state (that is [`Occupancy`](crate::Occupancy));
/// it provides dense indexing so occupancy and cost tables are flat arrays.
///
/// # Examples
///
/// ```
/// use rewire_arch::presets;
/// use rewire_mrrg::Mrrg;
/// let cgra = presets::paper_4x4_r4();
/// let mrrg = Mrrg::new(&cgra, 3);
/// assert_eq!(mrrg.ii(), 3);
/// // 16 FUs + 48 links + 64 registers, each × 3 slots.
/// assert_eq!(mrrg.num_cells(), (16 + 48 + 64) * 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mrrg {
    ii: u32,
    num_pes: usize,
    num_links: usize,
    regs_per_pe: u8,
}

impl Mrrg {
    /// Builds the MRRG shape for `cgra` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(cgra: &Cgra, ii: u32) -> Self {
        assert!(ii > 0, "initiation interval must be at least 1");
        Self {
            ii,
            num_pes: cgra.num_pes(),
            num_links: cgra.num_links(),
            regs_per_pe: cgra.regs_per_pe(),
        }
    }

    /// The initiation interval this graph is extended to.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of PEs (FU rows).
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Registers per PE.
    pub fn regs_per_pe(&self) -> u8 {
        self.regs_per_pe
    }

    /// Total number of cells across all three resource classes.
    pub fn num_cells(&self) -> usize {
        (self.num_pes + self.num_links + self.num_pes * self.regs_per_pe as usize)
            * self.ii as usize
    }

    /// Reduces an absolute schedule cycle to its modulo slot.
    pub fn slot_of(&self, abs_cycle: u32) -> u32 {
        abs_cycle % self.ii
    }

    /// Dense index of a cell, for flat side tables of length
    /// [`num_cells`](Mrrg::num_cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell's entity or slot is out of range for this shape.
    pub fn index_of(&self, res: Resource) -> usize {
        let ii = self.ii as usize;
        match res {
            Resource::Fu { pe, slot } => {
                assert!(pe.index() < self.num_pes && (slot as usize) < ii, "{res}");
                pe.index() * ii + slot as usize
            }
            Resource::Link { link, slot } => {
                assert!(
                    link.index() < self.num_links && (slot as usize) < ii,
                    "{res}"
                );
                self.num_pes * ii + link.index() * ii + slot as usize
            }
            Resource::Reg { pe, reg, slot } => {
                assert!(
                    pe.index() < self.num_pes && reg < self.regs_per_pe && (slot as usize) < ii,
                    "{res}"
                );
                (self.num_pes + self.num_links) * ii
                    + (pe.index() * self.regs_per_pe as usize + reg as usize) * ii
                    + slot as usize
            }
        }
    }

    /// Inverse of [`index_of`](Mrrg::index_of): the resource cell at a
    /// dense arena index.
    ///
    /// Together with `index_of` this makes the dense index space a true
    /// arena: flat side tables (cost overlays, occupancy, history) can be
    /// walked by index and decoded back to cells without hashing.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_cells()`.
    pub fn resource_of(&self, idx: usize) -> Resource {
        assert!(
            idx < self.num_cells(),
            "cell index {idx} out of range for {self}"
        );
        let ii = self.ii as usize;
        let fu_cells = self.num_pes * ii;
        let link_cells = self.num_links * ii;
        if idx < fu_cells {
            Resource::Fu {
                pe: PeId::new((idx / ii) as u32),
                slot: (idx % ii) as u32,
            }
        } else if idx < fu_cells + link_cells {
            let rel = idx - fu_cells;
            Resource::Link {
                link: LinkId::new((rel / ii) as u32),
                slot: (rel % ii) as u32,
            }
        } else {
            let rel = idx - fu_cells - link_cells;
            let entity = rel / ii;
            let regs = self.regs_per_pe as usize;
            Resource::Reg {
                pe: PeId::new((entity / regs) as u32),
                reg: (entity % regs) as u8,
                slot: (rel % ii) as u32,
            }
        }
    }
}

impl fmt::Display for Mrrg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MRRG II={} ({} PEs, {} links, {} regs/PE, {} cells)",
            self.ii,
            self.num_pes,
            self.num_links,
            self.regs_per_pe,
            self.num_cells()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, LinkId, PeId};

    fn mrrg() -> Mrrg {
        Mrrg::new(&presets::paper_4x4_r2(), 3)
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let m = mrrg();
        let mut seen = vec![false; m.num_cells()];
        for pe in 0..m.num_pes() as u32 {
            for slot in 0..m.ii() {
                let i = m.index_of(Resource::Fu {
                    pe: PeId::new(pe),
                    slot,
                });
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        for link in 0..m.num_links() as u32 {
            for slot in 0..m.ii() {
                let i = m.index_of(Resource::Link {
                    link: LinkId::new(link),
                    slot,
                });
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        for pe in 0..m.num_pes() as u32 {
            for reg in 0..m.regs_per_pe() {
                for slot in 0..m.ii() {
                    let i = m.index_of(Resource::Reg {
                        pe: PeId::new(pe),
                        reg,
                        slot,
                    });
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        assert!(seen.into_iter().all(|b| b), "every cell index covered");
    }

    #[test]
    fn resource_of_inverts_index_of() {
        let m = mrrg();
        for idx in 0..m.num_cells() {
            assert_eq!(m.index_of(m.resource_of(idx)), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resource_of_out_of_range_panics() {
        let m = mrrg();
        m.resource_of(m.num_cells());
    }

    #[test]
    fn slot_reduction() {
        let m = mrrg();
        assert_eq!(m.slot_of(0), 0);
        assert_eq!(m.slot_of(3), 0);
        assert_eq!(m.slot_of(7), 1);
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_panics() {
        Mrrg::new(&presets::paper_4x4_r4(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_cell_panics() {
        let m = mrrg();
        m.index_of(Resource::Reg {
            pe: PeId::new(0),
            reg: 7,
            slot: 0,
        });
    }
}
