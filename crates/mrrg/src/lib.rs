//! Modulo Routing Resource Graph (MRRG) for CGRA modulo scheduling.
//!
//! The MRRG time-extends a [`rewire_arch::Cgra`] over `II` cycles (Mei et
//! al., DRESC). Three resource classes exist per modulo slot:
//!
//! * **FU** cells `(pe, slot)` — one operation executes per PE per slot,
//! * **Link** cells `(link, slot)` — a value departing on a link at a cycle
//!   with this slot arrives at the far PE one cycle later,
//! * **Register** cells `(pe, r, slot)` — the value held in register `r`
//!   of a PE during a cycle with this slot.
//!
//! ## Timing contract
//!
//! A DFG node `u` placed on `pe_u` at schedule time `t_u` drives its output
//! wire at cycle `t_u + 1`. Every subsequent cycle the value either hops one
//! link, is written to / held in a register, or is consumed by the
//! destination FU. An edge `(u, v, dist)` with `v` at `(pe_v, t_v)` under
//! initiation interval `II` needs a path of exactly
//! `t_v + dist·II − (t_u + 1)` resource steps that ends either *at* `pe_v`
//! (a zero-step path is same-PE output-register forwarding) or at a
//! neighbour of `pe_v`, in which case a final *delivery hop* crosses the
//! last link combinationally during the consumption cycle itself — the
//! ADRES/HyCube register→link→FU-input path that lets a neighbour consume
//! a value in the very next cycle.
//!
//! ## Sharing
//!
//! Routing cells (links/registers) are shareable between routes of the same
//! *signal* (the producing DFG node) — that is how fan-out works — and
//! exclusive across different signals. [`Occupancy`] tracks per-cell signal
//! reference counts, and also tolerates transient *overuse* (multiple
//! distinct signals on one cell) because PathFinder-style negotiation needs
//! it; [`Occupancy::is_overused`] exposes the violations.
//!
//! # Examples
//!
//! ```
//! use rewire_arch::presets;
//! use rewire_dfg::NodeId;
//! use rewire_mrrg::{Mrrg, Occupancy, RouteRequest, Router, UnitCost};
//!
//! let cgra = presets::paper_4x4_r4();
//! let mrrg = Mrrg::new(&cgra, 2);
//! let mut occ = Occupancy::new(&mrrg);
//! let router = Router::new(&cgra, &mrrg);
//!
//! // Route the output of node 0, on the wire of PE0 at cycle 1, into PE1
//! // at cycle 2 (one hop).
//! let req = RouteRequest {
//!     signal: NodeId::new(0),
//!     src_pe: cgra.pes().next().unwrap().id(),
//!     depart_cycle: 1,
//!     dst_pe: cgra.pe_at((0, 1).into()).unwrap().id(),
//!     arrive_cycle: 2,
//! };
//! let route = router.route(&occ, &req, &UnitCost)?;
//! assert_eq!(route.resources().len(), 1); // a single link cell
//! occ.claim_route(&route);
//! # Ok::<(), rewire_mrrg::RouteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod graph;
mod occupancy;
mod resource;
mod route;
mod route_tree;
mod router;

pub use distance::{DistanceBound, DistanceOracle, DistanceTable, TieredDistance};
pub use graph::Mrrg;
pub use occupancy::Occupancy;
pub use resource::Resource;
pub use route::{Route, RouteError, RouteRequest};
pub use route_tree::{RouteTree, RouteTreeError};
pub use router::{
    default_fanout_mode, default_router_mode, install_thread_distance_table,
    set_default_fanout_mode, set_default_router_mode, thread_distance_table, CostModel, FanoutMode,
    NegotiatedCost, Router, RouterMode, RouterScratch, TreeCost, UnitCost,
};
