//! Exact-arrival routers over the MRRG.
//!
//! Placement fixes both endpoints *and* both times of every route, so
//! routing is a shortest-path problem on a layered DAG: layer `k` holds the
//! possible value locations `k` cycles after departure, and every transition
//! consumes exactly one MRRG cell. A min-cost path is found with one dynamic
//! -programming sweep per layer — no priority queue needed because all
//! edges advance exactly one layer.

use crate::distance::{DistanceBound, DistanceOracle};
use crate::{Mrrg, Occupancy, Resource, Route, RouteError, RouteRequest};
use rewire_arch::{Cgra, PeId};
use rewire_dfg::NodeId;
use rewire_obs as obs;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pluggable cell-cost policy for the router.
pub trait CostModel {
    /// Cost for `signal` at step-age `phase` to occupy `cell`, or `None`
    /// if the cell must not be used (e.g. it carries a different signal —
    /// or the same signal at a different age — under exclusive rules).
    fn cell_cost(&self, occ: &Occupancy, cell: Resource, signal: NodeId, phase: u32)
        -> Option<f64>;
}

/// Exclusive routing: a cell is usable only if free or already carrying the
/// same signal. This is the policy used for final verification — a route
/// found under `UnitCost` is physically realisable.
///
/// Links cost 1.0 and register cells 0.95: timing slack is absorbed by
/// waiting in local registers rather than ping-ponging across the NoC,
/// which both conserves link bandwidth and makes tie-breaking
/// deterministic.
#[derive(Clone, Copy, Default, Debug)]
pub struct UnitCost;

impl CostModel for UnitCost {
    fn cell_cost(
        &self,
        occ: &Occupancy,
        cell: Resource,
        signal: NodeId,
        phase: u32,
    ) -> Option<f64> {
        occ.usable_by(cell, signal, phase)
            .then_some(if cell.is_reg() { 0.95 } else { 1.0 })
    }
}

/// PathFinder-style negotiated congestion cost: occupied cells may be used,
/// at a price that grows with present sharing and accumulated history.
///
/// `cost = 1 + present_factor·(#foreign signals) + history[cell]`.
/// After each routing iteration the mapper calls
/// [`accumulate_history`](NegotiatedCost::accumulate_history) so that
/// persistently congested cells become expensive and losers move elsewhere.
#[derive(Clone, Debug)]
pub struct NegotiatedCost {
    present_factor: f64,
    history_increment: f64,
    history: Vec<f64>,
}

impl NegotiatedCost {
    /// Creates a cost table for `mrrg` with the given negotiation factors.
    pub fn new(mrrg: &Mrrg, present_factor: f64, history_increment: f64) -> Self {
        Self {
            present_factor,
            history_increment,
            history: vec![0.0; mrrg.num_cells()],
        }
    }

    /// Bumps the history cost of every currently overused cell; call once
    /// per negotiation iteration.
    pub fn accumulate_history(&mut self, occ: &Occupancy, mrrg: &Mrrg, cells: &[Resource]) {
        for &cell in cells {
            if occ.is_overused(cell) {
                self.history[mrrg.index_of(cell)] += self.history_increment;
            }
        }
    }

    /// Bumps history on every overused cell in the table (full sweep).
    pub fn accumulate_history_everywhere(&mut self, occ: &Occupancy) {
        // Only occupied chunks can hold overuse, so the walk is bounded by
        // the touched fabric, not its full time-extended size.
        occ.for_each_overused_index(|idx| {
            self.history[idx] += self.history_increment;
        });
    }

    /// Current history cost of a cell.
    pub fn history(&self, mrrg: &Mrrg, cell: Resource) -> f64 {
        self.history[mrrg.index_of(cell)]
    }
}

impl CostModel for NegotiatedCost {
    fn cell_cost(
        &self,
        occ: &Occupancy,
        cell: Resource,
        signal: NodeId,
        phase: u32,
    ) -> Option<f64> {
        let owners = occ.owners(cell);
        let foreign = owners.iter().filter(|(k, _)| *k != (signal, phase)).count();
        let idx_cost = self.history[occ.mrrg().index_of(cell)];
        Some(1.0 + self.present_factor * foreign as f64 + idx_cost)
    }
}

/// Multiplicative reuse discount applied by [`TreeCost`] to cells the
/// routed signal already owns at the queried phase.
///
/// Under [`UnitCost`] and [`NegotiatedCost`] a cell carrying the same
/// signal at the same phase is priced like a free cell, so per-edge
/// fan-out routes only share trunks when the shared path happens to be
/// the unique minimum. The discount makes reuse *strictly* cheaper, so
/// the DP actively converges sibling branches onto the existing trunk —
/// the Steiner-tree behaviour — while never enabling a cell the inner
/// model forbids.
const TREE_REUSE_DISCOUNT: f64 = 1.0 / 16.0;

/// Cost wrapper that discounts cells already owned by the routed signal
/// at the queried phase (by `TREE_REUSE_DISCOUNT`, 1/16).
///
/// Admissibility is inherited: a cell the inner model rejects stays
/// rejected, and a discounted cost is still positive, so routes found
/// under `TreeCost` satisfy exactly the same sharing rules as the inner
/// model's — they just prefer the signal's own cells.
#[derive(Clone, Copy, Debug)]
pub struct TreeCost<'c, C> {
    inner: &'c C,
}

impl<'c, C: CostModel> TreeCost<'c, C> {
    /// Wraps `inner` with the trunk-reuse discount.
    pub fn new(inner: &'c C) -> Self {
        Self { inner }
    }
}

impl<C: CostModel> CostModel for TreeCost<'_, C> {
    fn cell_cost(
        &self,
        occ: &Occupancy,
        cell: Resource,
        signal: NodeId,
        phase: u32,
    ) -> Option<f64> {
        let cost = self.inner.cell_cost(occ, cell, signal, phase)?;
        let owned = occ
            .owners(cell)
            .iter()
            .any(|(key, _)| *key == (signal, phase));
        Some(if owned {
            cost * TREE_REUSE_DISCOUNT
        } else {
            cost
        })
    }
}

/// Sweep strategy for the router's per-layer dynamic program.
///
/// Both modes produce byte-identical routes (pinned by the differential
/// tests in `crates/mrrg/tests/route_pruning.rs`); they differ only in how
/// many states they relax per layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouterMode {
    /// Sweep a sorted sparse frontier of live states and skip any state
    /// whose PE cannot reach the destination in the remaining steps, using
    /// the [`DistanceOracle`] hop bound as an admissible lower bound. The
    /// default.
    Pruned,
    /// The original dense `0..num_states` sweep. Kept compiled (not just
    /// `#[cfg(test)]`) so the differential tests and the `router_prune`
    /// bench can run it as the oracle against the pruned path.
    Dense,
}

/// Process-wide default mode picked up by [`Router::new`]. A global (not a
/// thread-local) because the portfolio mapper routes from freshly spawned
/// worker threads, and a whole-process differential run (tests, bench,
/// `--router dense`) must reach those too.
static DEFAULT_ROUTER_MODE: AtomicU8 = AtomicU8::new(0); // 0 = Pruned

fn mode_to_u8(mode: RouterMode) -> u8 {
    match mode {
        RouterMode::Pruned => 0,
        RouterMode::Dense => 1,
    }
}

fn mode_from_u8(v: u8) -> RouterMode {
    if v == 0 {
        RouterMode::Pruned
    } else {
        RouterMode::Dense
    }
}

/// Sets the process-wide default [`RouterMode`] and returns the previous
/// one, so differential harnesses can restore it. Routers already
/// constructed keep the mode they were built with.
pub fn set_default_router_mode(mode: RouterMode) -> RouterMode {
    mode_from_u8(DEFAULT_ROUTER_MODE.swap(mode_to_u8(mode), Ordering::SeqCst))
}

/// The process-wide default [`RouterMode`] used by [`Router::new`].
pub fn default_router_mode() -> RouterMode {
    mode_from_u8(DEFAULT_ROUTER_MODE.load(Ordering::SeqCst))
}

/// How multi-sink signals are routed.
///
/// Orthogonal to [`RouterMode`] (which picks the DP sweep strategy):
/// `FanoutMode` decides whether a producer's fan-out edges are routed as
/// one shared route tree or as independent per-edge paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FanoutMode {
    /// Route fan-out as shared route trees: branches are grown in
    /// deterministic order with [`TreeCost`]'s reuse discount, so sibling
    /// branches converge on a shared trunk
    /// ([`Router::route_fanout`]). The default.
    Tree,
    /// The original independent per-edge routing. Kept as the
    /// differential baseline (tests, bench, `--router per-edge`).
    PerEdge,
}

/// Process-wide default fan-out mode picked up by the mappers. Global for
/// the same reason as [`DEFAULT_ROUTER_MODE`]: portfolio workers route
/// from freshly spawned threads, and a whole-process differential run
/// must reach those too.
static DEFAULT_FANOUT_MODE: AtomicU8 = AtomicU8::new(0); // 0 = Tree

fn fanout_to_u8(mode: FanoutMode) -> u8 {
    match mode {
        FanoutMode::Tree => 0,
        FanoutMode::PerEdge => 1,
    }
}

fn fanout_from_u8(v: u8) -> FanoutMode {
    if v == 0 {
        FanoutMode::Tree
    } else {
        FanoutMode::PerEdge
    }
}

/// Sets the process-wide default [`FanoutMode`] and returns the previous
/// one, so differential harnesses can restore it.
pub fn set_default_fanout_mode(mode: FanoutMode) -> FanoutMode {
    fanout_from_u8(DEFAULT_FANOUT_MODE.swap(fanout_to_u8(mode), Ordering::SeqCst))
}

/// The process-wide default [`FanoutMode`].
pub fn default_fanout_mode() -> FanoutMode {
    fanout_from_u8(DEFAULT_FANOUT_MODE.load(Ordering::SeqCst))
}

/// Value location during routing: on the PE's wire fabric, or parked in a
/// register (with its residency run length, to respect the modulo wrap).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Carrier {
    Wire,
    /// `(register index, cycles spent in it so far)`.
    Reg(u8, u32),
}

/// A reusable bitset over dense MRRG cell indices with O(touched words)
/// clearing, so the duplicate-cell scan after each route attempt costs one
/// pass over the route instead of a quadratic `Vec::contains` loop.
#[derive(Clone, Debug, Default)]
struct CellBitset {
    words: Vec<u64>,
    touched: Vec<u32>,
}

impl CellBitset {
    /// Clears all set bits and resizes for a universe of `num_cells`.
    fn reset(&mut self, num_cells: usize) {
        let words = num_cells.div_ceil(64);
        if self.words.len() == words {
            for &w in &self.touched {
                self.words[w as usize] = 0;
            }
        } else {
            self.words.clear();
            self.words.resize(words, 0);
        }
        self.touched.clear();
    }

    /// Sets a bit; returns whether it was already set.
    fn test_and_set(&mut self, idx: usize) -> bool {
        let (w, b) = (idx / 64, 1u64 << (idx % 64));
        let word = &mut self.words[w];
        if *word == 0 {
            self.touched.push(w as u32);
        }
        let was = *word & b != 0;
        *word |= b;
        was
    }

    fn test(&self, idx: usize) -> bool {
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    fn clear(&mut self, idx: usize) {
        self.words[idx / 64] &= !(1u64 << (idx % 64));
    }
}

/// A DP value row over dense state indices with O(1) whole-row reset.
///
/// Resetting the row per layer used to be a `clear(); resize(num_states,
/// INF)` pair — an O(states) memset that dominates on big fabrics where
/// only a few hundred of hundreds of thousands of states are ever live.
/// Instead each entry carries the epoch that last wrote it: `begin` bumps
/// the epoch (invalidating every entry at once), reads of entries from an
/// older epoch see infinity, and the storage is allocated once per shape.
#[derive(Clone, Debug, Default)]
struct StampedRow {
    values: Vec<f64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl StampedRow {
    /// Invalidates the whole row and (re)sizes it for `num_states`.
    fn begin(&mut self, num_states: usize) {
        if self.values.len() < num_states {
            self.values.resize(num_states, f64::INFINITY);
            self.stamps.resize(num_states, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrap (u32::MAX resets in one scratch lifetime): every
            // stale stamp could alias the new epoch, so pay one real clear.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// The entry's value this epoch, or infinity if unwritten.
    #[inline]
    fn get(&self, i: usize) -> f64 {
        if self.stamps[i] == self.epoch {
            self.values[i]
        } else {
            f64::INFINITY
        }
    }

    /// Writes an entry; returns whether it was unwritten this epoch.
    #[inline]
    fn set(&mut self, i: usize, v: f64) -> bool {
        let first = self.stamps[i] != self.epoch;
        self.stamps[i] = self.epoch;
        self.values[i] = v;
        first
    }
}

/// One layer's parent pointer: `(state, previous state, resource consumed)`
/// — stored only for states that are live in that layer, sorted by state
/// for binary-searched reconstruction.
type CompactParent = (u32, u32, Resource);

/// How many distinct fabric topologies one scratch keeps distance oracles
/// for. Mapping alternates over at most a handful of fabrics at a time
/// (fuzz differentials pit two, the scaling sweep walks one per size);
/// beyond that the oldest oracle is evicted instead of the cache growing
/// with every fabric a long-lived process ever touched.
const ORACLE_CACHE_CAP: usize = 4;

/// Reusable buffers for the router's layered dynamic program.
///
/// One route call needs an additive per-cell cost overlay, two DP value
/// rows, and one parent list per path layer. Allocating these per call put
/// `malloc` in the innermost loop of PF* negotiation, Rewire verification
/// and SA evaluation; a scratch instance keeps them alive across calls so
/// repeated routing does zero steady-state allocation.
///
/// [`Router::route`] maintains one instance per thread automatically;
/// [`Router::route_with`] accepts an explicit instance for callers that
/// manage their own pools. Buffers grow to the largest shape seen and are
/// reused for any request of the same or smaller shape.
#[derive(Clone, Debug, Default)]
pub struct RouterScratch {
    /// Dense per-cell additive penalty (`Mrrg::index_of` indexed).
    overlay: Vec<f64>,
    /// Indices of nonzero overlay entries, for O(touched) clearing.
    overlay_touched: Vec<usize>,
    /// DP value row for the current layer (epoch-stamped: resets in O(1)).
    cur: StampedRow,
    /// DP value row being built for the next layer.
    next: StampedRow,
    /// Dense parent scratch for the layer being built; only entries whose
    /// state is live in `next` are meaningful. Compacted into `parents`
    /// at the end of each layer.
    parent_state: Vec<u32>,
    /// Dense parent-resource scratch paired with `parent_state`.
    parent_res: Vec<Resource>,
    /// Per-layer compacted parent pointers, one entry per *live* state
    /// sorted by state id. Replaces the old dense `num_states × len`
    /// parent matrix, whose resize-and-fill per layer was both the top
    /// allocation and ~240 MB of traffic on a 64×64 fabric.
    parents: Vec<Vec<CompactParent>>,
    /// Live (finite-value) states of the current layer, for the pruned
    /// sparse sweep. Sorted ascending at the end of the producing layer so
    /// relaxation order — and therefore every tie-break — matches the
    /// dense scan.
    frontier: Vec<u32>,
    /// Live states being collected for the next layer.
    next_frontier: Vec<u32>,
    /// Cells seen while scanning a candidate route for duplicates.
    seen_cells: CellBitset,
    /// Cells seen at least twice in the candidate route.
    dup_cells: CellBitset,
    /// Hop-distance oracles for recently routed fabrics, most recently
    /// used first, keyed by `Cgra::topology_fingerprint` and bounded at
    /// [`ORACLE_CACHE_CAP`] entries. Portfolio workers receive the
    /// parent's oracle via [`install_thread_distance_table`] instead of
    /// re-running the BFS.
    oracles: Vec<Arc<DistanceOracle>>,
    /// Cached `router.*` metric handles, re-resolved when the thread's
    /// metric scope changes (`rewire_obs::scope_epoch`). Keeping handles
    /// here turns the per-call metrics flush into a few atomic adds.
    metrics: Option<RouteMetricHandles>,
}

/// Resolved handles for the router's global metrics, valid for one metric
/// scope on one thread (see [`RouterScratch::metrics`]).
#[derive(Clone, Debug)]
struct RouteMetricHandles {
    epoch: u64,
    route_calls: obs::Counter,
    route_ok: obs::Counter,
    route_failed: obs::Counter,
    route_ns: obs::Counter,
    expansions: obs::Counter,
    pruned_states: obs::Counter,
    retries: obs::Counter,
    route_len: obs::Histogram,
    frontier_size: obs::Histogram,
}

impl RouteMetricHandles {
    fn resolve() -> Self {
        Self {
            epoch: obs::scope_epoch(),
            route_calls: obs::counter("router.route_calls"),
            route_ok: obs::counter("router.route_ok"),
            route_failed: obs::counter("router.route_failed"),
            route_ns: obs::counter("router.route_ns"),
            expansions: obs::counter("router.expansions"),
            pruned_states: obs::counter("router.pruned_states"),
            retries: obs::counter("router.retries"),
            route_len: obs::histogram("router.route_len"),
            frontier_size: obs::histogram("router.frontier_size"),
        }
    }
}

impl RouterScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes the overlay for a new route call, resizing to `num_cells`.
    fn reset_overlay(&mut self, num_cells: usize) {
        if self.overlay.len() == num_cells {
            for &idx in &self.overlay_touched {
                self.overlay[idx] = 0.0;
            }
        } else {
            self.overlay.clear();
            self.overlay.resize(num_cells, 0.0);
        }
        self.overlay_touched.clear();
    }

    /// Adds `penalty` to a cell's overlay entry, tracking it for clearing.
    fn penalise(&mut self, idx: usize, penalty: f64) {
        if self.overlay[idx] == 0.0 {
            self.overlay_touched.push(idx);
        }
        self.overlay[idx] += penalty;
    }

    /// The hop-distance oracle for `cgra`, served from the bounded MRU
    /// cache (keyed by [`Cgra::topology_fingerprint`]) or built on miss.
    /// The cache holds at most [`ORACLE_CACHE_CAP`] fabrics: a process
    /// that maps many distinct fabrics (fuzzing, the scaling sweep)
    /// evicts the least recently used oracle instead of accreting one
    /// table per fabric it ever saw.
    fn distances_for(&mut self, cgra: &Cgra) -> Arc<DistanceOracle> {
        if let Some(pos) = self.oracles.iter().position(|o| o.matches(cgra)) {
            // MRU order: move the hit to the front.
            let hit = self.oracles.remove(pos);
            self.oracles.insert(0, Arc::clone(&hit));
            return hit;
        }
        // Time the BFS sweep as a span: oracle construction is the one
        // per-fabric quadratic-ish cost left, and the scaling suite reads
        // this to show it stays sane as fabrics grow.
        let _build = obs::span("distance_oracle_build");
        let oracle = DistanceOracle::shared(cgra);
        self.oracles.insert(0, Arc::clone(&oracle));
        self.oracles.truncate(ORACLE_CACHE_CAP);
        self.publish_oracle_bytes();
        oracle
    }

    /// Installs a prebuilt distance oracle at the front of the cache so
    /// this scratch skips the BFS. An oracle for a fabric never routed is
    /// simply evicted like any other cache entry.
    pub fn install_distances(&mut self, oracle: Arc<DistanceOracle>) {
        self.oracles
            .retain(|o| o.fingerprint() != oracle.fingerprint());
        self.oracles.insert(0, oracle);
        self.oracles.truncate(ORACLE_CACHE_CAP);
        self.publish_oracle_bytes();
    }

    /// Heap bytes currently held by the scratch's cached distance oracles.
    pub fn oracle_bytes(&self) -> usize {
        self.oracles.iter().map(|o| o.heap_bytes()).sum()
    }

    /// Number of distinct fabrics the oracle cache currently holds.
    pub fn cached_oracles(&self) -> usize {
        self.oracles.len()
    }

    /// Updates the `router.distance_table_bytes` gauge with this thread's
    /// oracle-cache footprint. Gauges sum across threads, so the reported
    /// value is the process-wide distance-table memory — the number the
    /// large-fabric CI smoke caps.
    fn publish_oracle_bytes(&self) {
        obs::gauge("router.distance_table_bytes").set(self.oracle_bytes() as i64);
    }

    /// Cells appearing more than once in `resources`, each reported once,
    /// ordered by first occurrence — exactly what the quadratic
    /// `Vec::contains` scan used to produce, in O(len) via two bitset
    /// passes (mark cells seen twice, then emit marked cells in first-
    /// occurrence order, un-marking as they are emitted).
    fn duplicate_cells(&mut self, mrrg: &Mrrg, resources: &[Resource]) -> Vec<Resource> {
        self.seen_cells.reset(mrrg.num_cells());
        self.dup_cells.reset(mrrg.num_cells());
        let mut any = false;
        for res in resources {
            let idx = mrrg.index_of(*res);
            if self.seen_cells.test_and_set(idx) && !self.dup_cells.test_and_set(idx) {
                any = true;
            }
        }
        if !any {
            return Vec::new();
        }
        let mut duplicates = Vec::new();
        for res in resources {
            let idx = mrrg.index_of(*res);
            if self.dup_cells.test(idx) {
                self.dup_cells.clear(idx);
                duplicates.push(*res);
            }
        }
        duplicates
    }

    /// The `router.*` metric handles for the calling thread's current
    /// scope, re-resolving when the scope has changed since they were
    /// cached. Scratch instances are intended to stay on one thread (the
    /// [`Router::route`] fast path keeps one per thread); a scratch moved
    /// across threads still counts correctly, it only attributes to the
    /// scope that was current when its handles were resolved.
    fn metrics(&mut self) -> &RouteMetricHandles {
        let epoch = obs::scope_epoch();
        if self.metrics.as_ref().is_none_or(|m| m.epoch != epoch) {
            self.metrics = Some(RouteMetricHandles::resolve());
        }
        self.metrics.as_ref().expect("handles were just resolved")
    }
}

thread_local! {
    /// Per-thread scratch backing [`Router::route`], so every existing
    /// call site gets allocation reuse without signature changes.
    static ROUTE_SCRATCH: RefCell<RouterScratch> = RefCell::new(RouterScratch::new());
}

/// The calling thread's cached [`DistanceOracle`] for `cgra`, building it
/// on first use. Parents of a worker pool call this once, then hand the
/// `Arc` to each worker via [`install_thread_distance_table`] so the BFS
/// runs once per fabric instead of once per thread.
pub fn thread_distance_table(cgra: &Cgra) -> Arc<DistanceOracle> {
    ROUTE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => scratch.distances_for(cgra),
        Err(_) => DistanceOracle::shared(cgra),
    })
}

/// Seeds the calling thread's router scratch with a prebuilt distance
/// oracle (see [`thread_distance_table`]).
pub fn install_thread_distance_table(oracle: Arc<DistanceOracle>) {
    ROUTE_SCRATCH.with(|cell| {
        if let Ok(mut scratch) = cell.try_borrow_mut() {
            scratch.install_distances(oracle);
        }
    });
}

/// The layered-DAG router.
///
/// See the crate docs for the timing contract. One `Router` borrows the
/// architecture and MRRG shape and can serve any number of requests.
#[derive(Clone, Copy, Debug)]
pub struct Router<'a> {
    cgra: &'a Cgra,
    mrrg: &'a Mrrg,
    mode: RouterMode,
}

impl<'a> Router<'a> {
    /// Creates a router over `cgra` time-extended as `mrrg`, using the
    /// process-wide [`default_router_mode`].
    pub fn new(cgra: &'a Cgra, mrrg: &'a Mrrg) -> Self {
        Self::with_mode(cgra, mrrg, default_router_mode())
    }

    /// Creates a router with an explicit sweep mode, for differential
    /// harnesses that pin dense and pruned routers side by side.
    pub fn with_mode(cgra: &'a Cgra, mrrg: &'a Mrrg, mode: RouterMode) -> Self {
        Self { cgra, mrrg, mode }
    }

    /// The MRRG shape in use.
    pub fn mrrg(&self) -> &Mrrg {
        self.mrrg
    }

    /// The sweep mode this router was constructed with.
    pub fn mode(&self) -> RouterMode {
        self.mode
    }

    /// Finds a minimum-cost path satisfying `req` under `cost`.
    ///
    /// A path may never use the same cell twice (a same-slot revisit would
    /// carry the value at two different ages on one physical resource), so
    /// a returned path containing duplicates is retried with those cells
    /// penalised; after a few attempts the request is declared unroutable.
    ///
    /// # Errors
    ///
    /// * [`RouteError::NegativeLength`] — arrival before departure,
    /// * [`RouteError::NoPath`] — no admissible path of the exact length.
    pub fn route(
        &self,
        occ: &Occupancy,
        req: &RouteRequest,
        cost: &impl CostModel,
    ) -> Result<Route, RouteError> {
        ROUTE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.route_with(occ, req, cost, &mut scratch),
            // Re-entrant call (a cost model routing from inside
            // `cell_cost`): fall back to a fresh scratch.
            Err(_) => self.route_with(occ, req, cost, &mut RouterScratch::new()),
        })
    }

    /// [`route`](Router::route) with an explicit scratch buffer, for
    /// callers that manage their own pools (e.g. per-worker scratch in a
    /// parallel portfolio).
    pub fn route_with(
        &self,
        occ: &Occupancy,
        req: &RouteRequest,
        cost: &impl CostModel,
        scratch: &mut RouterScratch,
    ) -> Result<Route, RouteError> {
        let start = Instant::now();
        let expansions = Cell::new(0u64);
        let pruned = Cell::new(0u64);
        let frontier_peak = Cell::new(0u64);
        let mut retries = 0u64;
        let result = self.route_inner(
            occ,
            req,
            cost,
            scratch,
            &expansions,
            &pruned,
            &frontier_peak,
            &mut retries,
        );
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Observe-only accounting: never feeds back into routing decisions.
        let m = scratch.metrics();
        m.route_calls.incr();
        m.expansions.add(expansions.get());
        m.pruned_states.add(pruned.get());
        if self.mode == RouterMode::Pruned {
            m.frontier_size.record(frontier_peak.get());
        }
        m.retries.add(retries);
        m.route_ns.add(elapsed_ns);
        match &result {
            Ok(route) => {
                m.route_ok.incr();
                m.route_len.record(route.resources().len() as u64);
            }
            Err(_) => m.route_failed.incr(),
        }
        result
    }

    /// Routes one signal's whole fan-out as a shared route tree.
    ///
    /// All requests must share `(signal, src_pe, depart_cycle)` — they are
    /// the adjacent edges of one producer. Branches are routed longest
    /// first (ties broken by destination PE, then request order) under a
    /// [`TreeCost`] wrapper around `cost`, and each branch is claimed into
    /// `occ` before the next one routes, so later branches both *see* and
    /// *prefer* the growing trunk. Every claim is released before
    /// returning — `occ` is left exactly as found — and the routes come
    /// back in request order, ready to be committed one by one.
    ///
    /// The number of cells a branch reused from its already-routed
    /// siblings (or from the signal's pre-existing commitments in `occ`)
    /// is published on the `router.tree_reuse` counter.
    ///
    /// # Panics
    ///
    /// Panics if the requests do not share one `(signal, src_pe,
    /// depart_cycle)` root — a caller bug, not a routing failure.
    ///
    /// # Errors
    ///
    /// The first branch failure aborts the call with that branch's
    /// [`RouteError`]; no claims are left behind.
    pub fn route_fanout(
        &self,
        occ: &mut Occupancy,
        reqs: &[RouteRequest],
        cost: &impl CostModel,
    ) -> Result<Vec<Route>, RouteError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let root = (reqs[0].signal, reqs[0].src_pe, reqs[0].depart_cycle);
        assert!(
            reqs.iter()
                .all(|r| (r.signal, r.src_pe, r.depart_cycle) == root),
            "route_fanout requests must share one producer"
        );
        // Longest branch first: the longest path lays down the trunk the
        // shorter siblings then peel off of. Ties break by destination PE
        // and then request order, so the result is deterministic.
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(reqs[i].arrive_cycle.saturating_sub(reqs[i].depart_cycle)),
                reqs[i].dst_pe.index(),
                i,
            )
        });
        let tree_cost = TreeCost::new(cost);
        let mut routed: Vec<(usize, Route)> = Vec::with_capacity(reqs.len());
        let mut reused = 0u64;
        let mut failure = None;
        for &i in &order {
            match self.route(occ, &reqs[i], &tree_cost) {
                Ok(route) => {
                    for (k, &cell) in route.resources().iter().enumerate() {
                        let key = (root.0, k as u32);
                        if occ.owners(cell).iter().any(|(owner, _)| *owner == key) {
                            reused += 1;
                        }
                    }
                    occ.claim_route(&route);
                    routed.push((i, route));
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        for (_, route) in &routed {
            occ.release_route(route);
        }
        obs::counter("router.tree_reuse").add(reused);
        if let Some(e) = failure {
            return Err(e);
        }
        routed.sort_by_key(|&(i, _)| i);
        Ok(routed.into_iter().map(|(_, r)| r).collect())
    }

    #[allow(clippy::too_many_arguments)] // internal plumbing for metric tallies
    fn route_inner(
        &self,
        occ: &Occupancy,
        req: &RouteRequest,
        cost: &impl CostModel,
        scratch: &mut RouterScratch,
        expansions: &Cell<u64>,
        pruned: &Cell<u64>,
        frontier_peak: &Cell<u64>,
        retries: &mut u64,
    ) -> Result<Route, RouteError> {
        scratch.reset_overlay(self.mrrg.num_cells());
        for _attempt in 0..10 {
            let route =
                self.route_attempt(occ, req, cost, scratch, expansions, pruned, frontier_peak)?;
            let duplicates = scratch.duplicate_cells(self.mrrg, route.resources());
            if duplicates.is_empty() {
                return Ok(route);
            }
            *retries += 1;
            // Steer the next attempt away from every looped cell.
            for cell in duplicates {
                scratch.penalise(self.mrrg.index_of(cell), 8.0);
            }
        }
        Err(RouteError::NoPath { request: *req })
    }

    /// One DP attempt with the scratch's additive cost overlay.
    ///
    /// # Why pruning is exact
    ///
    /// A state at layer `k` (i.e. after `k` of the `len` steps) on PE `p`
    /// can only contribute to an arrival candidate if `dist(p, dst) <=
    /// (len - k) + 1`: a local arrival needs `dist` link hops within the
    /// remaining `len - k` steps, and a delivery arrival needs to reach a
    /// predecessor of `dst` (at distance `>= dist - 1`) before the final
    /// combinational hop. Register steps never change the PE, so the hop
    /// distance lower-bounds the link steps, which lower-bound the total
    /// steps. Every DP predecessor of a feasible state is itself feasible
    /// (one transition moves at most one hop), so skipping infeasible
    /// states can never change the value, nor the parent, of any state the
    /// arrival scan reads — and sweeping the live frontier in ascending
    /// state order preserves the dense scan's strict-`<` tie-breaks.
    /// Routes are therefore byte-identical across [`RouterMode`]s.
    ///
    /// The argument needs only an *admissible* bound, not the exact
    /// distance: pruning on `lb(p, dst) > budget` with `lb ≤ dist` skips a
    /// strict subset of the states the exact table would skip, all of them
    /// provably infeasible. The tiered [`DistanceOracle`] used above
    /// [`DistanceOracle::DENSE_PE_LIMIT`] PEs therefore preserves
    /// byte-identical routes too — it just prunes less than the dense
    /// tier would.
    #[allow(clippy::too_many_arguments)] // internal plumbing for metric tallies
    fn route_attempt(
        &self,
        occ: &Occupancy,
        req: &RouteRequest,
        cost: &impl CostModel,
        scratch: &mut RouterScratch,
        expansions: &Cell<u64>,
        pruned: &Cell<u64>,
        frontier_peak: &Cell<u64>,
    ) -> Result<Route, RouteError> {
        let len = req
            .num_steps()
            .ok_or(RouteError::NegativeLength { request: *req })? as usize;
        let ii = self.mrrg.ii();
        let regs = self.mrrg.regs_per_pe() as usize;
        // State encoding: pe * stride + carrier, carrier 0 = Wire,
        // 1 + r*ii + (run-1) = Reg(r, run).
        let stride = 1 + regs * ii as usize;
        let num_states = self.cgra.num_pes() * stride;
        let encode = |pe: usize, c: Carrier| -> usize {
            pe * stride
                + match c {
                    Carrier::Wire => 0,
                    Carrier::Reg(r, run) => 1 + r as usize * ii as usize + (run as usize - 1),
                }
        };
        let decode = |state: usize| -> (usize, Carrier) {
            let pe = state / stride;
            let c = state % stride;
            if c == 0 {
                (pe, Carrier::Wire)
            } else {
                let r = (c - 1) / ii as usize;
                let run = (c - 1) % ii as usize + 1;
                (pe, Carrier::Reg(r as u8, run as u32))
            }
        };

        const INF: f64 = f64::INFINITY;
        // The hop oracle is resolved before the scratch is split into
        // field borrows; the `Arc` keeps the bound view alive for the
        // sweep.
        let oracle = match self.mode {
            RouterMode::Pruned => Some(scratch.distances_for(self.cgra)),
            RouterMode::Dense => None,
        };
        let bound: Option<DistanceBound<'_>> = oracle.as_deref().map(|o| o.bound_to(req.dst_pe));
        // Split the scratch into disjoint field borrows so the DP can hold
        // the overlay immutably while writing the value/parent rows.
        let RouterScratch {
            overlay,
            cur,
            next,
            parent_state,
            parent_res,
            parents,
            frontier,
            next_frontier,
            ..
        } = scratch;
        cur.begin(num_states);
        let src_state = encode(req.src_pe.index(), Carrier::Wire);
        cur.set(src_state, 0.0);
        frontier.clear();
        frontier.push(src_state as u32);
        frontier_peak.set(frontier_peak.get().max(1));
        // Dense parent scratch grows to the largest shape seen; entries
        // are only read for states live in `next`, so no per-layer fill.
        if parent_state.len() < num_states {
            parent_state.resize(num_states, u32::MAX);
            parent_res.resize(
                num_states,
                Resource::Fu {
                    pe: req.src_pe,
                    slot: 0,
                },
            );
        }
        if parents.len() < len {
            parents.resize(len, Vec::new());
        }

        for (k, parent) in parents.iter_mut().enumerate().take(len) {
            let cycle = req.depart_cycle + k as u32;
            let slot = self.mrrg.slot_of(cycle);
            next.begin(num_states);
            next_frontier.clear();
            // A state expanded here still has `len - k` steps (this move
            // included) plus the optional delivery hop to reach `dst`.
            let hop_budget = (len - k) as u32 + 1;

            // Pruned mode sweeps the live frontier (sorted ascending by
            // the previous layer's compaction); dense mode scans every
            // state id. Ascending order either way keeps every strict-`<`
            // tie-break identical across modes.
            let sweep_len = match bound {
                Some(_) => frontier.len(),
                None => num_states,
            };
            // An index loop, not a frontier iterator: in dense mode `i`
            // IS the state id and the frontier is untouched.
            #[allow(clippy::needless_range_loop)]
            for i in 0..sweep_len {
                let state = match bound {
                    Some(_) => frontier[i] as usize,
                    None => i,
                };
                let base = cur.get(state);
                if base == INF {
                    continue; // dense mode only: frontier states are live
                }
                let (pe_idx, carrier) = decode(state);
                if let Some(b) = &bound {
                    if b.get(pe_idx) > hop_budget {
                        pruned.set(pruned.get() + 1);
                        continue;
                    }
                }
                // PeIds are dense row-major indices, so the state's PE is a
                // direct construction (this used to be an O(num_pes)
                // iterator walk in the DP inner loop).
                let pe = PeId::new(pe_idx as u32);

                let mrrg = self.mrrg;
                let relax = |next_state: usize,
                             res: Resource,
                             next_row: &mut StampedRow,
                             pstate: &mut Vec<u32>,
                             pres: &mut Vec<Resource>,
                             live: &mut Vec<u32>| {
                    expansions.set(expansions.get() + 1);
                    if let Some(c) = cost.cell_cost(occ, res, req.signal, k as u32) {
                        let cand = base + c + overlay[mrrg.index_of(res)];
                        if cand < next_row.get(next_state) {
                            if next_row.set(next_state, cand) {
                                live.push(next_state as u32);
                            }
                            pstate[next_state] = state as u32;
                            pres[next_state] = res;
                        }
                    }
                };

                // Link hops (legal from wire and from a register read-out).
                for link in self.cgra.links_from(pe) {
                    let res = Resource::Link {
                        link: link.id(),
                        slot,
                    };
                    let ns = encode(link.dst().index(), Carrier::Wire);
                    relax(ns, res, next, parent_state, parent_res, next_frontier);
                }

                match carrier {
                    Carrier::Wire => {
                        // Park in any register.
                        for r in 0..regs as u8 {
                            let res = Resource::Reg { pe, reg: r, slot };
                            let ns = encode(pe_idx, Carrier::Reg(r, 1));
                            relax(ns, res, next, parent_state, parent_res, next_frontier);
                        }
                    }
                    Carrier::Reg(r, run) => {
                        // Keep holding (bounded by II so no modulo cell is
                        // claimed twice by this route).
                        if run < ii {
                            let res = Resource::Reg { pe, reg: r, slot };
                            let ns = encode(pe_idx, Carrier::Reg(r, run + 1));
                            relax(ns, res, next, parent_state, parent_res, next_frontier);
                        }
                        // Transfer to a sibling register.
                        for r2 in 0..regs as u8 {
                            if r2 != r {
                                let res = Resource::Reg { pe, reg: r2, slot };
                                let ns = encode(pe_idx, Carrier::Reg(r2, 1));
                                relax(ns, res, next, parent_state, parent_res, next_frontier);
                            }
                        }
                    }
                }
            }

            frontier_peak.set(frontier_peak.get().max(next_frontier.len() as u64));
            // Compact this layer's parents: one entry per live state,
            // sorted by state id. The sort doubles as the pre-ordering the
            // next layer's pruned sweep needs for dense-identical
            // tie-breaks.
            next_frontier.sort_unstable();
            parent.clear();
            parent.extend(
                next_frontier
                    .iter()
                    .map(|&s| (s, parent_state[s as usize], parent_res[s as usize])),
            );
            std::mem::swap(cur, next);
            std::mem::swap(frontier, next_frontier);
        }

        // Arrival. Two ways for the consumer FU to read the value during
        // `arrive_cycle`:
        //  (a) locally — the value sits at the destination PE (on its wire
        //      or in one of its registers) after all `len` moves, or
        //  (b) delivered — after `len` moves the value sits at a
        //      *neighbour*, and the final link hop happens combinationally
        //      during the consumption cycle itself (the ADRES/HyCube
        //      register→link→FU-input path), occupying that link's cell at
        //      `slot(arrive_cycle)`.
        let dst = req.dst_pe.index();
        let arrive_slot = self.mrrg.slot_of(req.arrive_cycle);
        let mut best: Option<(f64, usize, Option<Resource>)> = None;
        for c in 0..stride {
            let s = dst * stride + c;
            if cur.get(s) < best.map_or(f64::INFINITY, |(b, ..)| b) {
                best = Some((cur.get(s), s, None));
            }
        }
        for link in self.cgra.links_to(req.dst_pe) {
            let res = Resource::Link {
                link: link.id(),
                slot: arrive_slot,
            };
            expansions.set(expansions.get() + 1);
            let Some(hop_cost) = cost.cell_cost(occ, res, req.signal, len as u32) else {
                continue;
            };
            let hop_cost = hop_cost + overlay[self.mrrg.index_of(res)];
            for c in 0..stride {
                let s = link.src().index() * stride + c;
                let total = cur.get(s) + hop_cost;
                if total < best.map_or(f64::INFINITY, |(b, ..)| b) {
                    best = Some((total, s, Some(res)));
                }
            }
        }
        let Some((best_cost, best_state, delivery)) = best else {
            return Err(RouteError::NoPath { request: *req });
        };
        if best_cost == f64::INFINITY {
            return Err(RouteError::NoPath { request: *req });
        }

        // Reconstruct.
        let mut resources = vec![];
        if let Some(res) = delivery {
            resources.push(res);
        }
        let mut state = best_state as u32;
        for k in (0..len).rev() {
            let layer = &parents[k];
            let idx = layer
                .binary_search_by_key(&state, |&(s, _, _)| s)
                .expect("the arrival state is live, so every ancestor is recorded");
            let (_, prev, res) = layer[idx];
            resources.push(res);
            state = prev;
        }
        resources.reverse();
        debug_assert!(resources.len() == len || resources.len() == len + 1);
        Ok(Route::new(*req, resources, best_cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, Coord, PeId};

    fn setup(ii: u32) -> (rewire_arch::Cgra, Mrrg) {
        let cgra = presets::paper_4x4_r4();
        let mrrg = Mrrg::new(&cgra, ii);
        (cgra, mrrg)
    }

    fn pe(cgra: &rewire_arch::Cgra, row: u16, col: u16) -> PeId {
        cgra.pe_at(Coord::new(row, col)).unwrap().id()
    }

    fn req(signal: u32, src: PeId, depart: u32, dst: PeId, arrive: u32) -> RouteRequest {
        RouteRequest {
            signal: NodeId::new(signal),
            src_pe: src,
            depart_cycle: depart,
            dst_pe: dst,
            arrive_cycle: arrive,
        }
    }

    #[test]
    fn single_hop() {
        let (cgra, mrrg) = setup(2);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let r = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 0, 1), 2),
                &UnitCost,
            )
            .unwrap();
        assert_eq!(r.hops(), 1);
        assert_eq!(r.reg_cycles(), 0);
    }

    #[test]
    fn manhattan_path_uses_only_links_when_timed_exactly() {
        let (cgra, mrrg) = setup(4);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        // (0,0) -> (2,3): manhattan 5, departure 1, arrival 6.
        let r = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 2, 3), 6),
                &UnitCost,
            )
            .unwrap();
        assert_eq!(r.hops(), 5);
        assert_eq!(r.reg_cycles(), 0);
    }

    #[test]
    fn slack_is_absorbed_by_registers() {
        let (cgra, mrrg) = setup(4);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        // One hop needed but three cycles available: two register cells.
        let r = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 0, 1), 4),
                &UnitCost,
            )
            .unwrap();
        assert_eq!(r.hops(), 1);
        assert_eq!(r.reg_cycles(), 2);
    }

    #[test]
    fn same_pe_forwarding_is_free() {
        let (cgra, mrrg) = setup(2);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let p = pe(&cgra, 1, 1);
        let r = router.route(&occ, &req(0, p, 3, p, 3), &UnitCost).unwrap();
        assert!(r.resources().is_empty());
        assert_eq!(r.cost(), 0.0);
    }

    #[test]
    fn zero_length_to_a_neighbour_uses_the_delivery_hop() {
        // Producer at t, consumer at t+1 on an adjacent PE: the latched
        // output crosses one link combinationally during the consumption
        // cycle (the ADRES/HyCube chaining path).
        let (cgra, mrrg) = setup(2);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let r = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 3, pe(&cgra, 0, 1), 3),
                &UnitCost,
            )
            .unwrap();
        assert_eq!(r.hops(), 1);
        assert_eq!(r.resources()[0].slot(), 1); // the consumption cycle's slot
    }

    #[test]
    fn zero_length_to_a_distant_pe_is_no_path() {
        let (cgra, mrrg) = setup(2);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let e = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 3, pe(&cgra, 2, 3), 3),
                &UnitCost,
            )
            .unwrap_err();
        assert!(matches!(e, RouteError::NoPath { .. }));
    }

    #[test]
    fn negative_length_is_an_error() {
        let (cgra, mrrg) = setup(2);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let e = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 3, pe(&cgra, 0, 1), 2),
                &UnitCost,
            )
            .unwrap_err();
        assert!(matches!(e, RouteError::NegativeLength { .. }));
    }

    #[test]
    fn too_far_for_the_deadline_is_no_path() {
        let (cgra, mrrg) = setup(4);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        // Manhattan distance 5 but only 2 cycles.
        let e = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 2, 3), 3),
                &UnitCost,
            )
            .unwrap_err();
        assert!(matches!(e, RouteError::NoPath { .. }));
    }

    #[test]
    fn blocked_cells_are_respected_by_unit_cost() {
        let (cgra, mrrg) = setup(1);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        // Block both links out of (0,0) at slot 0 (II = 1, so every cycle).
        for link in cgra.links_from(pe(&cgra, 0, 0)) {
            occ.claim(
                Resource::Link {
                    link: link.id(),
                    slot: 0,
                },
                NodeId::new(99),
                0,
            );
        }
        // Also fill every register of (0,0) so the value cannot wait.
        for r in 0..cgra.regs_per_pe() {
            occ.claim(
                Resource::Reg {
                    pe: pe(&cgra, 0, 0),
                    reg: r,
                    slot: 0,
                },
                NodeId::new(99),
                0,
            );
        }
        let e = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 0, 1), 2),
                &UnitCost,
            )
            .unwrap_err();
        assert!(matches!(e, RouteError::NoPath { .. }));
    }

    #[test]
    fn same_signal_may_share_blocked_cells() {
        let (cgra, mrrg) = setup(1);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        for link in cgra.links_from(pe(&cgra, 0, 0)) {
            occ.claim(
                Resource::Link {
                    link: link.id(),
                    slot: 0,
                },
                NodeId::new(7),
                0,
            );
        }
        // Signal 7 can reuse its own cells.
        let r = router
            .route(
                &occ,
                &req(7, pe(&cgra, 0, 0), 1, pe(&cgra, 0, 1), 2),
                &UnitCost,
            )
            .unwrap();
        assert_eq!(r.hops(), 1);
    }

    #[test]
    fn negotiated_cost_routes_through_congestion() {
        let (cgra, mrrg) = setup(1);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        for link in cgra.links_from(pe(&cgra, 0, 0)) {
            occ.claim(
                Resource::Link {
                    link: link.id(),
                    slot: 0,
                },
                NodeId::new(99),
                0,
            );
        }
        for r in 0..cgra.regs_per_pe() {
            occ.claim(
                Resource::Reg {
                    pe: pe(&cgra, 0, 0),
                    reg: r,
                    slot: 0,
                },
                NodeId::new(99),
                0,
            );
        }
        let nc = NegotiatedCost::new(&mrrg, 10.0, 1.0);
        let r = router
            .route(&occ, &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 0, 1), 2), &nc)
            .unwrap();
        assert_eq!(r.hops(), 1);
        assert!(r.cost() > 10.0, "congestion penalty applies: {}", r.cost());
    }

    #[test]
    fn targeted_history_accumulation() {
        let (cgra, mrrg) = setup(2);
        let mut occ = Occupancy::new(&mrrg);
        let l0 = cgra.links().next().unwrap().id();
        let cell = Resource::Link { link: l0, slot: 0 };
        let other = Resource::Link { link: l0, slot: 1 };
        occ.claim(cell, NodeId::new(1), 0);
        occ.claim(cell, NodeId::new(2), 0);
        let mut nc = NegotiatedCost::new(&mrrg, 1.0, 0.25);
        // The targeted variant only touches the listed cells.
        nc.accumulate_history(&occ, &mrrg, &[cell, other]);
        assert_eq!(nc.history(&mrrg, cell), 0.25);
        assert_eq!(nc.history(&mrrg, other), 0.0, "not overused: untouched");
    }

    #[test]
    fn history_cost_accumulates_on_overuse() {
        let (cgra, mrrg) = setup(1);
        let mut occ = Occupancy::new(&mrrg);
        let cell = Resource::Link {
            link: cgra.links_from(pe(&cgra, 0, 0)).next().unwrap().id(),
            slot: 0,
        };
        occ.claim(cell, NodeId::new(1), 0);
        occ.claim(cell, NodeId::new(2), 0);
        let mut nc = NegotiatedCost::new(&mrrg, 1.0, 0.5);
        nc.accumulate_history_everywhere(&occ);
        nc.accumulate_history_everywhere(&occ);
        assert_eq!(nc.history(&mrrg, cell), 1.0);
    }

    #[test]
    fn self_edge_round_trip_waits_in_registers() {
        // A node feeding itself next iteration at II 3: depart t+1, arrive
        // t+3 — two register cells on its own PE.
        let (cgra, mrrg) = setup(3);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let p = pe(&cgra, 2, 2);
        let r = router.route(&occ, &req(0, p, 1, p, 3), &UnitCost).unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.reg_cycles(), 2);
        // Both cells in the same register at consecutive slots.
        let slots: Vec<u32> = r.resources().iter().map(|c| c.slot()).collect();
        assert_eq!(slots, vec![1, 2]);
    }

    #[test]
    fn register_residency_respects_modulo_wrap() {
        // II=2, single register per PE: a 5-cycle wait cannot fit (any
        // register can hold at most II=2 consecutive cycles, and chaining
        // needs a second register).
        let cgra = presets::paper_4x4_r1();
        let mrrg = Mrrg::new(&cgra, 2);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let p = cgra.pe_at(Coord::new(1, 1)).unwrap().id();
        let out = router.route(&occ, &req(0, p, 1, p, 6), &UnitCost);
        // With one register the value can sit at most 2 cycles, then must
        // move; it can bounce between neighbours, so a path may still exist
        // — but it must involve link hops, not a 5-cycle register stay.
        if let Ok(r) = out {
            assert!(r.hops() >= 2, "cannot idle in registers past II: {r}");
        }
    }

    #[test]
    fn router_metrics_accumulate_under_scope() {
        let (cgra, mrrg) = setup(2);
        let occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        // Unique scope so parallel tests sharing the global registry
        // cannot interfere with the assertions.
        let _scope = obs::scope("test/router_metrics_accumulate");
        let mut scratch = RouterScratch::new();
        router
            .route_with(
                &occ,
                &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 0, 1), 2),
                &UnitCost,
                &mut scratch,
            )
            .unwrap();
        router
            .route_with(
                &occ,
                &req(0, pe(&cgra, 0, 0), 3, pe(&cgra, 0, 1), 2),
                &UnitCost,
                &mut scratch,
            )
            .unwrap_err();
        let snap = obs::metrics().snapshot();
        let s = &snap.scopes["test/router_metrics_accumulate"];
        assert_eq!(s.counters["router.route_calls"], 2);
        assert_eq!(s.counters["router.route_ok"], 1);
        assert_eq!(s.counters["router.route_failed"], 1);
        assert!(s.counters["router.expansions"] > 0, "relax calls counted");
        assert_eq!(s.histograms["router.route_len"].count, 1);
        assert_eq!(s.histograms["router.route_len"].min, Some(1));
    }

    /// The quadratic scan `duplicate_cells` replaced, kept verbatim as the
    /// behavioural reference: every cell appearing at least twice, reported
    /// once, in first-occurrence order.
    fn quadratic_duplicates(resources: &[Resource]) -> Vec<Resource> {
        let mut duplicates = Vec::new();
        for (i, a) in resources.iter().enumerate() {
            if resources[i + 1..].contains(a) && !duplicates.contains(a) {
                duplicates.push(*a);
            }
        }
        duplicates
    }

    #[test]
    fn duplicate_scan_matches_the_quadratic_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (_cgra, mrrg) = setup(3);
        let mut scratch = RouterScratch::new();
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..200 {
            let len = rng.random_range(0..24usize);
            let cells: Vec<Resource> = (0..len)
                .map(|_| mrrg.resource_of(rng.random_range(0..mrrg.num_cells())))
                .collect();
            assert_eq!(
                scratch.duplicate_cells(&mrrg, &cells),
                quadratic_duplicates(&cells),
                "trial {trial}: {cells:?}"
            );
        }
        // Hand-picked interleaving where second-occurrence order would
        // differ from first-occurrence order: [A, B, B, A].
        let a = mrrg.resource_of(0);
        let b = mrrg.resource_of(1);
        let cells = vec![a, b, b, a];
        assert_eq!(scratch.duplicate_cells(&mrrg, &cells), vec![a, b]);
    }

    #[test]
    fn dense_and_pruned_routers_agree_and_prune() {
        let (cgra, mrrg) = setup(4);
        let occ = Occupancy::new(&mrrg);
        let dense = Router::with_mode(&cgra, &mrrg, RouterMode::Dense);
        let pruned = Router::with_mode(&cgra, &mrrg, RouterMode::Pruned);
        let _scope = obs::scope("test/dense_vs_pruned_unit");
        let mut ds = RouterScratch::new();
        let mut ps = RouterScratch::new();
        for (src, dst, depart, arrive) in [
            ((0, 0), (2, 3), 1, 6),
            ((0, 0), (0, 1), 1, 4),
            ((3, 3), (0, 0), 2, 9),
            ((1, 1), (1, 1), 1, 3),
        ] {
            let r = req(
                0,
                pe(&cgra, src.0, src.1),
                depart,
                pe(&cgra, dst.0, dst.1),
                arrive,
            );
            let a = dense.route_with(&occ, &r, &UnitCost, &mut ds).unwrap();
            let b = pruned.route_with(&occ, &r, &UnitCost, &mut ps).unwrap();
            assert_eq!(a, b, "{r:?}");
        }
        let snap = obs::metrics().snapshot();
        let s = &snap.scopes["test/dense_vs_pruned_unit"];
        assert!(
            s.counters["router.pruned_states"] > 0,
            "the oracle pruned something on a 4x4 fabric"
        );
        assert!(s.histograms["router.frontier_size"].count > 0);
    }

    #[test]
    fn unreachable_destination_is_no_path_in_both_modes() {
        // A deliberately disconnected fabric: rows 0..1 and 1..3 are
        // separate islands, so cross-island requests must fail cleanly.
        let cgra = rewire_arch::CgraBuilder::new(3, 3)
            .cut_row(1)
            .build()
            .unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let occ = Occupancy::new(&mrrg);
        let r = req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 2, 2), 9);
        for mode in [RouterMode::Dense, RouterMode::Pruned] {
            let router = Router::with_mode(&cgra, &mrrg, mode);
            let e = router.route(&occ, &r, &UnitCost).unwrap_err();
            assert!(matches!(e, RouteError::NoPath { .. }), "{mode:?}");
        }
    }

    #[test]
    fn default_mode_toggle_round_trips() {
        // Serialized within this one test: other tests in this binary never
        // touch the global default.
        assert_eq!(default_router_mode(), RouterMode::Pruned);
        let prev = set_default_router_mode(RouterMode::Dense);
        assert_eq!(prev, RouterMode::Pruned);
        let (cgra, mrrg) = setup(2);
        assert_eq!(Router::new(&cgra, &mrrg).mode(), RouterMode::Dense);
        set_default_router_mode(prev);
        assert_eq!(Router::new(&cgra, &mrrg).mode(), RouterMode::Pruned);
    }

    #[test]
    fn installed_distance_table_is_reused() {
        let (cgra, _mrrg) = setup(2);
        let oracle = DistanceOracle::shared(&cgra);
        let mut scratch = RouterScratch::new();
        scratch.install_distances(Arc::clone(&oracle));
        assert!(Arc::ptr_eq(&scratch.distances_for(&cgra), &oracle));
        // An oracle for another fabric coexists in the cache; the first
        // one is still served without a rebuild.
        let other = rewire_arch::CgraBuilder::new(2, 2).build().unwrap();
        let rebuilt = scratch.distances_for(&other);
        assert!(!Arc::ptr_eq(&rebuilt, &oracle));
        assert!(rebuilt.matches(&other));
        assert!(Arc::ptr_eq(&scratch.distances_for(&cgra), &oracle));
    }

    #[test]
    fn oracle_cache_is_bounded_with_mru_eviction() {
        // One distinct topology per grid shape: the cache must stop at its
        // cap instead of accreting an oracle per fabric ever routed.
        let mut scratch = RouterScratch::new();
        let fabrics: Vec<rewire_arch::Cgra> = (0..7)
            .map(|i| {
                rewire_arch::CgraBuilder::new(2, 2 + i as u16)
                    .build()
                    .unwrap()
            })
            .collect();
        for cgra in &fabrics {
            scratch.distances_for(cgra);
        }
        assert_eq!(scratch.cached_oracles(), ORACLE_CACHE_CAP);
        // Most recently used fabrics survive; the earliest were evicted.
        let last = &fabrics[6];
        let first = &fabrics[0];
        let kept = Arc::clone(&scratch.distances_for(last));
        assert!(kept.matches(last));
        let rebuilt = scratch.distances_for(first);
        assert!(
            rebuilt.matches(first),
            "evicted fabric is rebuilt on demand"
        );
        assert!(scratch.oracle_bytes() > 0);
        assert_eq!(scratch.cached_oracles(), ORACLE_CACHE_CAP);
        // Re-requesting the MRU entry returns the very same Arc.
        assert!(Arc::ptr_eq(&scratch.distances_for(first), &rebuilt));
    }

    #[test]
    fn default_fanout_toggle_round_trips() {
        // Serialized within this one test: other tests in this binary
        // never touch the global fan-out default.
        assert_eq!(default_fanout_mode(), FanoutMode::Tree);
        let prev = set_default_fanout_mode(FanoutMode::PerEdge);
        assert_eq!(prev, FanoutMode::Tree);
        assert_eq!(default_fanout_mode(), FanoutMode::PerEdge);
        set_default_fanout_mode(prev);
        assert_eq!(default_fanout_mode(), FanoutMode::Tree);
    }

    #[test]
    fn tree_cost_discounts_owned_cells_only() {
        let (cgra, mrrg) = setup(2);
        let mut occ = Occupancy::new(&mrrg);
        let l0 = cgra.links().next().unwrap().id();
        let cell = Resource::Link { link: l0, slot: 1 };
        let signal = NodeId::new(5);
        occ.claim(cell, signal, 0);
        let tc = TreeCost::new(&UnitCost);
        // Owned at the queried phase: discounted.
        assert_eq!(
            tc.cell_cost(&occ, cell, signal, 0),
            Some(TREE_REUSE_DISCOUNT)
        );
        // Same signal at a different phase: the inner model forbids it,
        // and so must the wrapper.
        assert_eq!(tc.cell_cost(&occ, cell, signal, 1), None);
        // A free cell keeps the inner cost.
        let other = Resource::Link {
            link: cgra.links().nth(1).unwrap().id(),
            slot: 1,
        };
        assert_eq!(tc.cell_cost(&occ, other, signal, 0), Some(1.0));
        // A foreign signal cannot take the owned cell.
        assert_eq!(tc.cell_cost(&occ, cell, NodeId::new(6), 0), None);
    }

    #[test]
    fn route_fanout_shares_a_trunk_and_restores_occupancy() {
        let (cgra, mrrg) = setup(4);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let _scope = obs::scope("test/route_fanout_trunk");
        // One producer at (0,0), two sinks far away in the same corner:
        // their shortest paths overlap for several hops.
        let src = pe(&cgra, 0, 0);
        let reqs = [
            req(9, src, 1, pe(&cgra, 2, 3), 6),
            req(9, src, 1, pe(&cgra, 3, 2), 6),
        ];
        let routes = router.route_fanout(&mut occ, &reqs, &UnitCost).unwrap();
        assert_eq!(routes.len(), 2);
        // Routes come back in request order.
        assert_eq!(routes[0].request(), &reqs[0]);
        assert_eq!(routes[1].request(), &reqs[1]);
        // The occupancy is exactly as found.
        assert_eq!(occ.used_cells(), 0);
        // The branches form a valid tree with a genuinely shared trunk.
        let tree = crate::RouteTree::from_branches(routes).unwrap();
        assert!(
            tree.shared_cells() > 0,
            "sibling branches converge on a trunk: {tree}"
        );
        assert!(tree.footprint() < tree.total_cells());
        let snap = obs::metrics().snapshot();
        let s = &snap.scopes["test/route_fanout_trunk"];
        assert!(
            s.counters["router.tree_reuse"] > 0,
            "trunk reuse is published"
        );
    }

    #[test]
    fn route_fanout_footprint_never_exceeds_per_edge() {
        let (cgra, mrrg) = setup(4);
        let router = Router::new(&cgra, &mrrg);
        let src = pe(&cgra, 1, 1);
        let reqs = [
            req(2, src, 1, pe(&cgra, 3, 3), 6),
            req(2, src, 1, pe(&cgra, 3, 2), 5),
            req(2, src, 1, pe(&cgra, 2, 3), 5),
        ];
        // Per-edge baseline: route each branch independently against the
        // accumulating occupancy (the mappers' sequential commit order).
        let mut per_edge = Occupancy::new(&mrrg);
        let mut baseline = Vec::new();
        for r in &reqs {
            let route = router.route(&per_edge, r, &UnitCost).unwrap();
            per_edge.claim_route(&route);
            baseline.push(route);
        }
        let baseline_tree = crate::RouteTree::from_branches(baseline).unwrap();
        let mut occ = Occupancy::new(&mrrg);
        let routes = router.route_fanout(&mut occ, &reqs, &UnitCost).unwrap();
        let tree = crate::RouteTree::from_branches(routes).unwrap();
        assert!(
            tree.footprint() <= baseline_tree.footprint(),
            "tree {} vs per-edge {}",
            tree.footprint(),
            baseline_tree.footprint()
        );
    }

    #[test]
    fn route_fanout_rejects_mixed_producers_and_propagates_failures() {
        let (cgra, mrrg) = setup(4);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        assert!(router
            .route_fanout(&mut occ, &[], &UnitCost)
            .unwrap()
            .is_empty());
        let bad = [
            req(1, pe(&cgra, 0, 0), 1, pe(&cgra, 1, 1), 3),
            req(1, pe(&cgra, 0, 1), 1, pe(&cgra, 1, 1), 3),
        ];
        assert!(std::panic::catch_unwind(|| {
            let mut occ = Occupancy::new(&mrrg);
            let _ = router.route_fanout(&mut occ, &bad, &UnitCost);
        })
        .is_err());
        // One feasible and one impossible branch: the call fails, and no
        // claims are left behind.
        let reqs = [
            req(1, pe(&cgra, 0, 0), 1, pe(&cgra, 0, 1), 2),
            req(1, pe(&cgra, 0, 0), 1, pe(&cgra, 2, 3), 0), // backwards
        ];
        let e = router.route_fanout(&mut occ, &reqs, &UnitCost).unwrap_err();
        assert!(matches!(e, RouteError::NegativeLength { .. }));
        assert_eq!(occ.used_cells(), 0);
    }

    #[test]
    fn route_claim_release_is_balanced() {
        let (cgra, mrrg) = setup(2);
        let mut occ = Occupancy::new(&mrrg);
        let router = Router::new(&cgra, &mrrg);
        let r = router
            .route(
                &occ,
                &req(0, pe(&cgra, 0, 0), 1, pe(&cgra, 1, 1), 3),
                &UnitCost,
            )
            .unwrap();
        occ.claim_route(&r);
        assert!(occ.used_cells() > 0);
        occ.release_route(&r);
        assert_eq!(occ.used_cells(), 0);
    }
}
