//! Property tests for the metrics primitives: histogram bucketing laws,
//! counter saturation, and snapshot merge/round-trip invariants.

use proptest::prelude::*;
use rewire_obs::{Histogram, Registry, Snapshot, NUM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]
    #[test]
    fn bucket_of_respects_bucket_bounds(value in 0u64..=u64::MAX) {
        let i = Histogram::bucket_of(value);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(Histogram::bucket_lo(i) <= value, "lo({i}) > {value}");
        prop_assert!(value <= Histogram::bucket_hi(i), "hi({i}) < {value}");
    }

    #[test]
    fn bucket_of_is_monotone(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Histogram::bucket_of(lo) <= Histogram::bucket_of(hi));
    }

    #[test]
    fn powers_of_two_open_new_buckets(shift in 0u32..64) {
        let v = 1u64 << shift;
        prop_assert_eq!(Histogram::bucket_of(v), shift as usize + 1);
        if v > 1 {
            prop_assert_eq!(Histogram::bucket_of(v - 1), shift as usize);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn counters_saturate_at_max(near_max_gap in 0u64..1000, add in 0u64..=u64::MAX) {
        let r = Registry::new();
        let c = r.counter_in("p", "c");
        c.add(u64::MAX - near_max_gap);
        c.add(add);
        let expected = (u64::MAX - near_max_gap).saturating_add(add);
        prop_assert_eq!(c.get(), expected);
        prop_assert_eq!(r.snapshot().scopes["p"].counters["c"], expected);
    }

    #[test]
    fn histogram_sum_saturates_and_count_stays_exact(
        big in (u64::MAX / 2)..=u64::MAX,
        extra in 1u64..100,
    ) {
        let r = Registry::new();
        let h = r.histogram_in("p", "h");
        h.record(big);
        h.record(big);
        h.record(extra);
        prop_assert_eq!(h.count(), 3);
        prop_assert_eq!(h.sum(), big.saturating_add(big).saturating_add(extra));
        let snap = r.snapshot();
        let hs = &snap.scopes["p"].histograms["h"];
        prop_assert_eq!(hs.min, Some(extra.min(big)));
        prop_assert_eq!(hs.max, Some(big));
    }

    #[test]
    fn recorded_values_land_in_their_buckets(
        values in proptest::collection::vec(0u64..10_000, 1..40),
    ) {
        let r = Registry::new();
        let h = r.histogram_in("p", "h");
        for &v in &values {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = &snap.scopes["p"].histograms["h"];
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
        let total: u64 = hs.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, values.len() as u64, "bucket counts cover every record");
        for &(i, c) in &hs.buckets {
            let expected = values
                .iter()
                .filter(|&&v| Histogram::bucket_of(v) == i)
                .count() as u64;
            prop_assert_eq!(c, expected, "bucket {i}");
        }
    }

    #[test]
    fn snapshot_json_round_trips(
        counter in 0u64..=u64::MAX,
        gauge in i64::MIN..=i64::MAX,
        values in proptest::collection::vec(0u64..=u64::MAX, 0..20),
    ) {
        let r = Registry::new();
        r.counter_in("m/k", "c").add(counter);
        r.gauge_in("m/k", "g").set(gauge);
        let h = r.histogram_in("m/k", "h");
        for &v in &values {
            h.record(v);
        }
        let snap = r.snapshot();
        let decoded = Snapshot::from_json(&snap.to_json()).expect("round trip");
        prop_assert_eq!(&decoded, &snap);
        prop_assert_eq!(decoded.to_json(), snap.to_json());
    }

    #[test]
    fn merge_is_commutative(
        a_vals in proptest::collection::vec(0u64..1_000_000, 0..20),
        b_vals in proptest::collection::vec(0u64..1_000_000, 0..20),
    ) {
        let make = |vals: &[u64]| {
            let r = Registry::new();
            for &v in vals {
                r.counter_in("s", "c").add(v);
                r.histogram_in("s", "h").record(v);
            }
            r.snapshot()
        };
        let (a, b) = (make(&a_vals), make(&b_vals));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }
}
