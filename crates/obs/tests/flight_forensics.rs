//! Integration tests for the forensics layer: the Chrome `trace_event`
//! exporter (valid JSON, per-thread monotonic timestamps, balanced `B`/`E`
//! pairs) and a property test that the flight-recorder ring buffer wraps
//! correctly with an exact drop counter.

use proptest::prelude::*;
use rewire_obs::{json, FlightEvent, FlightRecorder, Registry};

/// Everything that touches the process-global Chrome collector lives in
/// this one test so parallel test threads cannot interleave span streams
/// from different scenarios.
#[test]
fn chrome_export_is_valid_balanced_and_monotonic() {
    let chrome = rewire_obs::chrome();
    chrome.reset();
    chrome.enable(0);

    // Spans from several threads, each with its own registry scope/stack.
    std::thread::scope(|s| {
        for t in 0..3 {
            s.spawn(move || {
                let r = Registry::new();
                let _scope = r.scope(format!("mapper{t}/kern"));
                let _run = r.span("run");
                for _ in 0..4 {
                    let _attempt = r.span("attempt");
                    let _inner = r.span("route");
                }
            });
        }
    });
    chrome.disable();

    // Flight records ride along as instant events.
    let flight = FlightRecorder::new(16);
    flight.enable(0);
    flight.record_in(
        "mapper0/kern",
        FlightEvent::RouteFailed {
            edge: (3, 4),
            ii: 2,
            reason: "no_path",
        },
    );
    let text = chrome.export_json(Some(&flight.snapshot()));

    // 1. The export parses with the workspace's own JSON parser.
    let root = json::parse(&text).expect("chrome trace is valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // 3 threads × (1 run + 4 attempt + 4 route) × B+E, plus one instant.
    assert_eq!(events.len(), 3 * 9 * 2 + 1);

    // 2. Timestamps are monotonically non-decreasing per thread, and
    // 3. every B has a matching E (well-nested per thread).
    use std::collections::HashMap;
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut instants = 0usize;
    for e in events {
        let ts = e.get("ts").and_then(|v| v.as_u64()).expect("ts");
        let tid = e.get("tid").and_then(|v| v.as_u64()).expect("tid");
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
        let name = e.get("name").and_then(|v| v.as_str()).expect("name");
        let prev = last_ts.entry(tid).or_insert(0);
        assert!(ts >= *prev, "tid {tid}: ts went backwards ({ts} < {prev})");
        *prev = ts;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let top = stacks.entry(tid).or_default().pop();
                assert_eq!(top.as_deref(), Some(name), "E matches innermost B");
            }
            "i" => {
                instants += 1;
                assert_eq!(name, "route_failed");
                let args = e.get("args").expect("instant args");
                assert_eq!(args.get("src").and_then(|v| v.as_u64()), Some(3));
                assert_eq!(args.get("reason").and_then(|v| v.as_str()), Some("no_path"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(stacks.values().all(Vec::is_empty), "unmatched B events");
    assert_eq!(instants, 1);
    // Span B events carry the scope they were recorded under.
    let scoped = events.iter().any(|e| {
        e.get("args")
            .and_then(|a| a.get("scope"))
            .and_then(|s| s.as_str())
            == Some("mapper1/kern")
    });
    assert!(scoped, "span events carry their metric scope");
    chrome.reset();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]
    /// The ring keeps exactly the last `capacity` events and the drop
    /// counter equals `events_emitted − capacity` once the ring has
    /// wrapped (0 before).
    #[test]
    fn ring_buffer_wraps_with_exact_drop_accounting(
        capacity in 1usize..64,
        emitted in 0usize..200,
    ) {
        let r = FlightRecorder::new(capacity);
        r.enable(0);
        for i in 0..emitted {
            r.record_in("s", FlightEvent::AttemptPhase { phase: "p", ii: i as u32 });
        }
        let log = r.snapshot();
        prop_assert_eq!(r.events_emitted(), emitted as u64);
        prop_assert_eq!(log.events.len(), emitted.min(capacity));
        prop_assert_eq!(log.dropped, emitted.saturating_sub(capacity) as u64);
        // Survivors are the most recent `capacity` events, in order.
        for (k, rec) in log.events.iter().enumerate() {
            let expect = emitted.saturating_sub(capacity) + k;
            prop_assert_eq!(rec.seq, expect as u64);
            match rec.event {
                FlightEvent::AttemptPhase { ii, .. } =>
                    prop_assert_eq!(ii as usize, expect),
                _ => prop_assert!(false, "unexpected event kind"),
            }
        }
    }

    /// Timestamps within the ring are non-decreasing (events are recorded
    /// in real time under one lock).
    #[test]
    fn ring_timestamps_are_monotone(emitted in 2usize..60) {
        let r = FlightRecorder::new(32);
        r.enable(0);
        for i in 0..emitted {
            r.record_in("s", FlightEvent::AttemptPhase { phase: "p", ii: i as u32 });
        }
        let log = r.snapshot();
        for pair in log.events.windows(2) {
            prop_assert!(pair[0].ts_us <= pair[1].ts_us);
            prop_assert!(pair[0].seq < pair[1].seq);
        }
    }
}
