//! Point-in-time, merge-friendly views of a [`Registry`](crate::Registry).

use crate::hist::NUM_BUCKETS;
use crate::json::{self, Json};
use crate::registry::Shard;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// A merged, deterministic view of every metric recorded in a registry,
/// grouped by scope. Serialises to/from the workspace's hand-rolled JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-scope metrics, sorted by scope name.
    pub scopes: BTreeMap<String, ScopeSnapshot>,
}

/// All metrics recorded under one scope.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScopeSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (per-thread values summed).
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timers by full hierarchical path.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

/// The merged state of one log2 histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations (saturating).
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value, `None` when `count == 0`.
    pub min: Option<u64>,
    /// Largest recorded value, `None` when `count == 0`.
    pub max: Option<u64>,
    /// Sparse `(bucket index, count)` pairs, ascending by index; see
    /// [`Histogram::bucket_of`](crate::Histogram::bucket_of) for ranges.
    pub buckets: Vec<(usize, u64)>,
}

/// The merged state of one span timer path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total time across those spans, in nanoseconds (saturating).
    pub total_ns: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets.
    ///
    /// The quantile *rank* is `ceil(q × count)` clamped to `[1, count]`
    /// (the nearest-rank definition). The rank's bucket is located by a
    /// cumulative walk, and the value is interpolated linearly at the
    /// rank's midpoint within the bucket's `[lo, hi]` range:
    /// `lo + (hi − lo) × (rank_into_bucket − 0.5) / bucket_count`,
    /// clamped to the histogram's recorded `[min, max]` so an estimate can
    /// never leave the observed range. Returns `None` for an empty
    /// histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            if seen + c >= rank {
                let lo = crate::Histogram::bucket_lo(i) as f64;
                let hi = crate::Histogram::bucket_hi(i) as f64;
                let into = (rank - seen) as f64; // 1-based rank inside the bucket
                let v = lo + (hi - lo) * ((into - 0.5) / c as f64);
                let min = self.min.unwrap_or(0) as f64;
                let max = self.max.unwrap_or(u64::MAX) as f64;
                return Some(v.clamp(min, max));
            }
            seen += c;
        }
        // Bucket counts can undercount `count` only if both saturated;
        // fall back to the recorded maximum.
        self.max.map(|m| m as f64)
    }

    /// Median estimate ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one (saturating sums; min/max
    /// widen).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let mut dense = [0u64; NUM_BUCKETS];
        for &(i, c) in self.buckets.iter().chain(&other.buckets) {
            dense[i] = dense[i].saturating_add(c);
        }
        self.buckets = dense
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
    }
}

impl SpanSnapshot {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Mean span duration in nanoseconds, `None` when empty.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }
}

impl Snapshot {
    /// The (created-if-absent) scope entry for `name`.
    pub fn scope_mut(&mut self, name: &str) -> &mut ScopeSnapshot {
        self.scopes.entry(name.to_string()).or_default()
    }

    /// Folds one thread shard into this snapshot.
    pub(crate) fn absorb_shard(&mut self, shard: &Shard) {
        for ((scope, name), cell) in shard.counters.lock().expect("counter map poisoned").iter() {
            let slot = self
                .scope_mut(scope)
                .counters
                .entry(name.clone())
                .or_insert(0);
            *slot = slot.saturating_add(cell.load(Ordering::Relaxed));
        }
        for ((scope, name), cell) in shard.gauges.lock().expect("gauge map poisoned").iter() {
            let slot = self
                .scope_mut(scope)
                .gauges
                .entry(name.clone())
                .or_insert(0);
            *slot = slot.saturating_add(cell.load(Ordering::Relaxed));
        }
        for ((scope, name), cell) in shard.hists.lock().expect("histogram map poisoned").iter() {
            let count = cell.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let mut part = HistogramSnapshot {
                count,
                sum: cell.sum.load(Ordering::Relaxed),
                min: Some(cell.min.load(Ordering::Relaxed)),
                max: Some(cell.max.load(Ordering::Relaxed)),
                buckets: Vec::new(),
            };
            for (i, b) in cell.buckets.iter().enumerate() {
                let c = b.load(Ordering::Relaxed);
                if c > 0 {
                    part.buckets.push((i, c));
                }
            }
            self.scope_mut(scope)
                .histograms
                .entry(name.clone())
                .or_default()
                .merge(&part);
        }
        for ((scope, path), cell) in shard.spans.lock().expect("span map poisoned").iter() {
            let slot = self.scope_mut(scope).spans.entry(path.clone()).or_default();
            slot.count = slot
                .count
                .saturating_add(cell.count.load(Ordering::Relaxed));
            slot.total_ns = slot
                .total_ns
                .saturating_add(cell.total_ns.load(Ordering::Relaxed));
        }
    }

    /// Folds another snapshot into this one (e.g. snapshots from separate
    /// processes, merged by `rewire-report`).
    pub fn merge(&mut self, other: &Snapshot) {
        for (scope, theirs) in &other.scopes {
            let ours = self.scope_mut(scope);
            for (name, v) in &theirs.counters {
                let slot = ours.counters.entry(name.clone()).or_insert(0);
                *slot = slot.saturating_add(*v);
            }
            for (name, v) in &theirs.gauges {
                let slot = ours.gauges.entry(name.clone()).or_insert(0);
                *slot = slot.saturating_add(*v);
            }
            for (name, h) in &theirs.histograms {
                ours.histograms.entry(name.clone()).or_default().merge(h);
            }
            for (path, s) in &theirs.spans {
                let slot = ours.spans.entry(path.clone()).or_default();
                slot.count = slot.count.saturating_add(s.count);
                slot.total_ns = slot.total_ns.saturating_add(s.total_ns);
            }
        }
    }

    /// Serialises the snapshot to the versioned JSON format. Keys are
    /// emitted in sorted order, so equal snapshots serialise byte-equal.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"scopes\":{");
        let mut first_scope = true;
        for (scope, s) in &self.scopes {
            if !first_scope {
                out.push(',');
            }
            first_scope = false;
            json::write_str(&mut out, scope);
            out.push_str(":{\"counters\":{");
            push_u64_map(&mut out, &s.counters);
            out.push_str("},\"gauges\":{");
            let mut first = true;
            for (name, v) in &s.gauges {
                if !first {
                    out.push(',');
                }
                first = false;
                json::write_str(&mut out, name);
                out.push(':');
                out.push_str(&v.to_string());
            }
            out.push_str("},\"histograms\":{");
            first = true;
            for (name, h) in &s.histograms {
                if !first {
                    out.push(',');
                }
                first = false;
                json::write_str(&mut out, name);
                out.push_str(&format!(
                    ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                    h.count,
                    h.sum,
                    h.min.unwrap_or(0),
                    h.max.unwrap_or(0)
                ));
                let mut first_bucket = true;
                for &(i, c) in &h.buckets {
                    if !first_bucket {
                        out.push(',');
                    }
                    first_bucket = false;
                    out.push_str(&format!("[{i},{c}]"));
                }
                out.push_str("]}");
            }
            out.push_str("},\"spans\":{");
            first = true;
            for (path, sp) in &s.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                json::write_str(&mut out, path);
                out.push_str(&format!(
                    ":{{\"count\":{},\"total_ns\":{}}}",
                    sp.count, sp.total_ns
                ));
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot previously written by [`Snapshot::to_json`].
    pub fn from_json(input: &str) -> Result<Snapshot, String> {
        let root = json::parse(input).map_err(|e| e.to_string())?;
        let version = root
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing snapshot version")?;
        if version != 1 {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let mut snap = Snapshot::default();
        let scopes = root
            .get("scopes")
            .and_then(Json::as_object)
            .ok_or("missing scopes object")?;
        for (scope, body) in scopes {
            let entry = snap.scope_mut(scope);
            for (name, v) in section(body, "counters")? {
                let v = v.as_u64().ok_or_else(|| format!("bad counter {name}"))?;
                entry.counters.insert(name.clone(), v);
            }
            for (name, v) in section(body, "gauges")? {
                let v = v.as_i64().ok_or_else(|| format!("bad gauge {name}"))?;
                entry.gauges.insert(name.clone(), v);
            }
            for (name, v) in section(body, "histograms")? {
                let h = parse_histogram(name, v)?;
                entry.histograms.insert(name.clone(), h);
            }
            for (path, v) in section(body, "spans")? {
                let count = v
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("bad span count in {path}"))?;
                let total_ns = v
                    .get("total_ns")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("bad span total_ns in {path}"))?;
                entry
                    .spans
                    .insert(path.clone(), SpanSnapshot { count, total_ns });
            }
        }
        Ok(snap)
    }
}

fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (name, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        json::write_str(out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
}

fn section<'a>(body: &'a Json, key: &str) -> Result<&'a [(String, Json)], String> {
    body.get(key)
        .and_then(Json::as_object)
        .ok_or_else(|| format!("missing {key} object"))
}

fn parse_histogram(name: &str, v: &Json) -> Result<HistogramSnapshot, String> {
    let field = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("bad histogram field {key} in {name}"))
    };
    let count = field("count")?;
    let mut h = HistogramSnapshot {
        count,
        sum: field("sum")?,
        min: (count > 0).then(|| field("min")).transpose()?,
        max: (count > 0).then(|| field("max")).transpose()?,
        buckets: Vec::new(),
    };
    let buckets = v
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing buckets array in {name}"))?;
    for pair in buckets {
        let pair = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("bad bucket pair in {name}"))?;
        let i = pair[0]
            .as_u64()
            .filter(|&i| (i as usize) < NUM_BUCKETS)
            .ok_or_else(|| format!("bad bucket index in {name}"))? as usize;
        let c = pair[1]
            .as_u64()
            .ok_or_else(|| format!("bad bucket count in {name}"))?;
        h.buckets.push((i, c));
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        {
            let _s = r.scope("PF*/fir");
            r.counter("router.expansions").add(321);
            r.gauge("depth").set(-4);
            let h = r.histogram("router.route_len");
            h.record(0);
            h.record(3);
            h.record(3);
            h.record(900);
            let _t = r.span("run");
        }
        r.counter_in("SA/fir", "sa.moves").add(7);
        r.snapshot()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let encoded = snap.to_json();
        let decoded = Snapshot::from_json(&encoded).expect("round trip");
        assert_eq!(decoded, snap);
        // Deterministic serialisation: same snapshot, same bytes.
        assert_eq!(decoded.to_json(), encoded);
    }

    #[test]
    fn histogram_snapshot_merge_widens() {
        let mut a = HistogramSnapshot {
            count: 2,
            sum: 10,
            min: Some(2),
            max: Some(8),
            buckets: vec![(2, 1), (4, 1)],
        };
        let b = HistogramSnapshot {
            count: 1,
            sum: 1,
            min: Some(1),
            max: Some(1),
            buckets: vec![(1, 1)],
        };
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 11);
        assert_eq!(a.min, Some(1));
        assert_eq!(a.max, Some(8));
        assert_eq!(a.buckets, vec![(1, 1), (2, 1), (4, 1)]);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn snapshot_merge_sums_across_processes() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.scopes["PF*/fir"].counters["router.expansions"], 642);
        assert_eq!(a.scopes["SA/fir"].counters["sa.moves"], 14);
        assert_eq!(a.scopes["PF*/fir"].gauges["depth"], -8);
        let h = &a.scopes["PF*/fir"].histograms["router.route_len"];
        assert_eq!(h.count, 8);
        assert_eq!(h.mean(), Some(1812.0 / 8.0));
        assert_eq!(a.scopes["PF*/fir"].spans["run"].count, 2);
    }

    /// Pins the quantile-from-log2-bucket math: nearest-rank bucket
    /// lookup, midpoint interpolation inside the bucket, and clamping to
    /// the recorded min/max.
    #[test]
    fn quantiles_from_log2_buckets() {
        // Values {1, 2, 3, 900}: buckets 1 (count 1), 2 (count 2: values
        // in [2,3]), 10 (count 1: [512,1023]).
        let h = HistogramSnapshot {
            count: 4,
            sum: 906,
            min: Some(1),
            max: Some(900),
            buckets: vec![(1, 1), (2, 2), (10, 1)],
        };
        // p50: rank = ceil(0.5·4) = 2 → bucket 2 (seen 1, into 1 of 2):
        // 2 + (3−2)·(0.5/2) = 2.25.
        assert_eq!(h.p50(), Some(2.25));
        // p90: rank = ceil(3.6) = 4 → bucket 10 (into 1 of 1): midpoint
        // 512 + 511·0.5 = 767.5, inside [min,max] so unclamped.
        assert_eq!(h.p90(), Some(767.5));
        assert_eq!(h.p99(), Some(767.5), "same rank at count 4");
        // p0 / p100 clamp to the bucket walk's extremes.
        assert_eq!(h.quantile(0.0), Some(1.0), "rank clamps to 1");
        assert_eq!(h.quantile(1.0), Some(767.5));
        // Single-value histogram: every quantile is that value (the
        // min/max clamp collapses the bucket range).
        let one = HistogramSnapshot {
            count: 3,
            sum: 15,
            min: Some(5),
            max: Some(5),
            buckets: vec![(3, 3)],
        };
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(one.quantile(q), Some(5.0));
        }
        // Degenerate inputs.
        assert_eq!(HistogramSnapshot::default().p50(), None);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut snap = HistogramSnapshot::default();
        let r = Registry::new();
        let hist = r.histogram_in("s", "h");
        for v in 0..=1000u64 {
            hist.record(v * v % 7919);
        }
        snap.merge(&r.snapshot().scopes["s"].histograms["h"]);
        let mut last = f64::MIN;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = snap.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            assert!(v >= snap.min.unwrap() as f64 && v <= snap.max.unwrap() as f64);
            last = v;
        }
    }

    #[test]
    fn empty_histograms_are_omitted() {
        let r = Registry::new();
        let _h = r.histogram_in("s", "never_recorded");
        r.counter_in("s", "c").add(1);
        let snap = r.snapshot();
        assert!(snap.scopes["s"].histograms.is_empty());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{\"version\":2,\"scopes\":{}}").is_err());
        assert!(Snapshot::from_json("{\"scopes\":{}}").is_err());
        assert!(
            Snapshot::from_json("{\"version\":1,\"scopes\":{\"s\":{\"counters\":{}}}}").is_err()
        );
    }
}
