//! Chrome `trace_event` export for the span-timer tree.
//!
//! The registry's span timers aggregate `count + total_ns` per path — good
//! for tables, useless for *seeing* where one slow run spent its time. This
//! module adds an opt-in process-global [`ChromeTrace`] collector: when
//! enabled, every span begin/end on any registry also appends a `B`/`E`
//! event with a per-thread id and a microsecond timestamp, and
//! [`ChromeTrace::export_json`] renders the buffer as a Chrome
//! `trace_event` JSON document loadable in Perfetto or `chrome://tracing`.
//! Flight-recorder events ride along as instant (`"ph":"i"`) events so the
//! decision record and the time profile land on one timeline.
//!
//! Balance guarantee: the exporter never emits an unmatched `B` or `E`.
//! A span whose `B` was dropped (buffer full, or tracing enabled mid-span)
//! records no `E` (the [`crate::ScopedTimer`] carries a `traced` flag), and
//! the export pass additionally filters any residual unmatched events with
//! a per-thread stack, so the output always validates.

use crate::flight::{epoch_us, FlightEvent, FlightLog};
use crate::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default span-event buffer capacity when [`ChromeTrace::enable`] is
/// given 0.
pub const DEFAULT_TRACE_CAPACITY: usize = 262_144;

thread_local! {
    /// Small dense per-thread id for the `tid` field (thread 0 is reserved
    /// for flight instant events).
    static TRACE_TID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// One buffered span boundary.
#[derive(Clone, Debug)]
struct SpanEvent {
    /// `b'B'` or `b'E'`.
    phase: u8,
    /// Full hierarchical span path (`"run/attempt"`).
    name: String,
    /// Metric scope at record time (`"<mapper>/<kernel>"`).
    scope: String,
    /// Per-thread id.
    tid: u64,
    /// Microseconds since the observability epoch.
    ts_us: u64,
}

#[derive(Default)]
struct TraceState {
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

/// The opt-in span-boundary collector. One process-global instance lives
/// behind [`crate::chrome`]; tests construct their own and feed it via
/// [`ChromeTrace::begin`]/[`ChromeTrace::end`].
pub struct ChromeTrace {
    enabled: AtomicBool,
    state: Mutex<TraceState>,
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl ChromeTrace {
    /// A disabled collector with the given buffer capacity (0 selects
    /// [`DEFAULT_TRACE_CAPACITY`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            state: Mutex::new(TraceState {
                capacity: if capacity == 0 {
                    DEFAULT_TRACE_CAPACITY
                } else {
                    capacity
                },
                ..TraceState::default()
            }),
        }
    }

    /// Starts collecting with the given capacity (0 keeps the current
    /// capacity). Spans already open keep their "not traced" status, so
    /// only spans begun after this call produce events.
    pub fn enable(&self, capacity: usize) {
        if capacity > 0 {
            self.state.lock().expect("trace state poisoned").capacity = capacity;
        }
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops collecting new `B` events (open traced spans still record
    /// their `E` so the buffer stays balanced).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether new spans are currently being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records a `B` event. Returns `true` if the event was buffered —
    /// the caller must record the matching [`ChromeTrace::end`] exactly
    /// when this returned `true`.
    pub fn begin(&self, path: &str, scope: &str) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let ts_us = epoch_us();
        let tid = TRACE_TID.with(|t| *t);
        let mut s = self.state.lock().expect("trace state poisoned");
        if s.events.len() >= s.capacity {
            s.dropped = s.dropped.saturating_add(1);
            return false;
        }
        s.events.push(SpanEvent {
            phase: b'B',
            name: path.to_string(),
            scope: scope.to_string(),
            tid,
            ts_us,
        });
        true
    }

    /// Records the `E` matching a successful [`ChromeTrace::begin`].
    /// Always buffered (the buffer may overshoot its capacity by the open
    /// span depth) so every recorded `B` gets its `E` even if the
    /// collector was disabled or saturated in between.
    pub fn end(&self, path: &str, scope: &str) {
        let ts_us = epoch_us();
        let tid = TRACE_TID.with(|t| *t);
        let mut s = self.state.lock().expect("trace state poisoned");
        s.events.push(SpanEvent {
            phase: b'E',
            name: path.to_string(),
            scope: scope.to_string(),
            tid,
            ts_us,
        });
    }

    /// `B` events refused because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("trace state poisoned").dropped
    }

    /// Clears the buffer and drop counter (enabled flag and capacity are
    /// kept).
    pub fn reset(&self) {
        let mut s = self.state.lock().expect("trace state poisoned");
        s.events.clear();
        s.dropped = 0;
    }

    /// Renders the buffered spans (plus `flight`'s records as instant
    /// events, when given) as a Chrome `trace_event` JSON document.
    ///
    /// The output is guaranteed balanced: a per-thread stack pass drops
    /// any `B` still waiting for its `E` (spans open at export time) and
    /// any orphaned `E` (its `B` was exported by an earlier call).
    pub fn export_json(&self, flight: Option<&FlightLog>) -> String {
        use std::fmt::Write as _;
        let events = {
            let s = self.state.lock().expect("trace state poisoned");
            s.events.clone()
        };
        let keep = balanced_indices(&events);
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for idx in keep {
            let e = &events[idx];
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            json::write_str(&mut out, &e.name);
            let _ = write!(
                out,
                ",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{},\"cat\":\"span\",\"args\":{{\"scope\":",
                e.phase as char, e.ts_us, e.tid
            );
            json::write_str(&mut out, &e.scope);
            out.push_str("}}");
        }
        if let Some(log) = flight {
            for rec in &log.events {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"name\":");
                json::write_str(&mut out, rec.event.kind());
                let _ = write!(
                    out,
                    ",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\",\"cat\":\"flight\",\
                     \"args\":{{\"seq\":{},\"scope\":",
                    rec.ts_us, rec.seq
                );
                json::write_str(&mut out, &rec.scope);
                if let FlightEvent::RouteFailed { edge, ii, reason } = rec.event {
                    let _ = write!(
                        out,
                        ",\"src\":{},\"dst\":{},\"ii\":{ii},\"reason\":\"{reason}\"",
                        edge.0, edge.1
                    );
                }
                out.push_str("}}");
            }
        }
        out.push_str("]}");
        out
    }
}

/// Indices of events that form balanced, well-nested `B`/`E` pairs, per
/// thread. Unmatched `B`s (still open) and orphaned `E`s are excluded.
fn balanced_indices(events: &[SpanEvent]) -> Vec<usize> {
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut keep = vec![false; events.len()];
    for (i, e) in events.iter().enumerate() {
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            b'B' => stack.push(i),
            _ => {
                // RAII guarantees LIFO order per thread, so a matching `B`
                // is always the innermost open one with the same name.
                if let Some(pos) = stack
                    .iter()
                    .rposition(|&b| events[b].name == e.name && events[b].scope == e.scope)
                {
                    let b = stack.remove(pos);
                    keep[b] = true;
                    keep[i] = true;
                }
            }
        }
    }
    (0..events.len()).filter(|&i| keep[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_refuses_begins() {
        let t = ChromeTrace::new(8);
        assert!(!t.begin("run", "s"));
        assert_eq!(t.export_json(None), "{\"traceEvents\":[]}");
    }

    #[test]
    fn full_buffer_drops_b_and_export_stays_balanced() {
        let t = ChromeTrace::new(2);
        t.enable(0);
        assert!(t.begin("a", "s"));
        assert!(t.begin("a/b", "s"));
        assert!(!t.begin("a/b/c", "s"), "third B exceeds capacity");
        assert_eq!(t.dropped(), 1);
        t.end("a/b", "s");
        t.end("a", "s");
        let json = t.export_json(None);
        let root = crate::json::parse(&json).unwrap();
        let events = root.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 4, "two balanced pairs survive");
    }

    #[test]
    fn open_spans_are_filtered_from_export() {
        let t = ChromeTrace::new(16);
        t.enable(0);
        assert!(t.begin("outer", "s"));
        assert!(t.begin("outer/inner", "s"));
        t.end("outer/inner", "s");
        // "outer" is still open at export time.
        let root = crate::json::parse(&t.export_json(None)).unwrap();
        let events = root.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(|v| v.as_str()),
            Some("outer/inner")
        );
    }

    #[test]
    fn flight_records_become_instant_events() {
        let t = ChromeTrace::new(8);
        t.enable(0);
        let r = crate::FlightRecorder::new(8);
        r.enable(0);
        r.record_in(
            "SA/fir",
            FlightEvent::RouteFailed {
                edge: (0, 1),
                ii: 2,
                reason: "no_path",
            },
        );
        let json = t.export_json(Some(&r.snapshot()));
        let root = crate::json::parse(&json).unwrap();
        let events = root.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("i"));
        let args = events[0].get("args").unwrap();
        assert_eq!(args.get("reason").and_then(|v| v.as_str()), Some("no_path"));
    }
}
