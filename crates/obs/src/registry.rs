//! The thread-sharded metrics registry.

use crate::hist::{saturating_fetch_add, HistCell, Histogram};
use crate::snapshot::Snapshot;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Metric key inside a shard: `(scope, name)`.
pub(crate) type Key = (String, String);

/// The cells behind one span path: invocation count and total nanoseconds.
#[derive(Debug, Default)]
pub(crate) struct SpanCell {
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
}

/// One thread's private slice of a registry. Only the owning thread
/// inserts; the snapshot thread reads the atomic cells concurrently, which
/// is why every value is an atomic rather than a plain integer.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<BTreeMap<Key, Arc<AtomicI64>>>,
    pub(crate) hists: Mutex<BTreeMap<Key, Arc<HistCell>>>,
    pub(crate) spans: Mutex<BTreeMap<Key, Arc<SpanCell>>>,
}

/// Per-registry, per-thread bookkeeping that must not be shared across
/// threads: the current scope and the live span stack.
#[derive(Default)]
struct ThreadState {
    scope: String,
    /// Bumped on every scope change so handle caches can self-invalidate.
    epoch: u64,
    /// Full paths of the open spans, innermost last.
    span_stack: Vec<String>,
}

thread_local! {
    /// Shards of every registry this thread has recorded into, by registry id.
    static THREAD_SHARDS: RefCell<HashMap<u64, Arc<Shard>>> = RefCell::new(HashMap::new());
    /// Scope/span state per registry id.
    static THREAD_STATE: RefCell<HashMap<u64, ThreadState>> = RefCell::new(HashMap::new());
}

/// A thread-aware metrics registry.
///
/// See the [crate docs](crate) for the design. All methods are safe to call
/// from any thread; recording is lock-free after the first handle lookup on
/// a thread, and [`snapshot`](Registry::snapshot) may run concurrently with
/// recording (it observes each cell atomically).
#[derive(Debug)]
pub struct Registry {
    id: u64,
    /// Every shard ever created for this registry, including those of
    /// threads that have since exited (their counts must survive).
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shards: Mutex::new(Vec::new()),
        }
    }

    /// The calling thread's shard, created and registered on first use.
    fn shard(&self) -> Arc<Shard> {
        THREAD_SHARDS.with(|map| {
            map.borrow_mut()
                .entry(self.id)
                .or_insert_with(|| {
                    let shard = Arc::new(Shard::default());
                    self.shards
                        .lock()
                        .expect("registry shard list poisoned")
                        .push(shard.clone());
                    shard
                })
                .clone()
        })
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut ThreadState) -> R) -> R {
        THREAD_STATE.with(|map| f(map.borrow_mut().entry(self.id).or_default()))
    }

    /// Sets the calling thread's scope until the returned guard drops
    /// (restoring the previous scope). Scopes *replace* rather than nest:
    /// one scope identifies one run (`"<mapper>/<kernel>"` in the engine).
    pub fn scope(&self, path: impl Into<String>) -> ScopeGuard<'_> {
        let path = path.into();
        let prev = self.with_state(|s| {
            s.epoch += 1;
            std::mem::replace(&mut s.scope, path)
        });
        ScopeGuard {
            registry: self,
            prev,
        }
    }

    /// The calling thread's current scope (empty by default).
    pub fn current_scope(&self) -> String {
        self.with_state(|s| s.scope.clone())
    }

    /// Monotonic per-thread count of scope changes. A cache holding metric
    /// handles may store this value and refresh its handles whenever it
    /// changes — the pattern the router scratch uses to keep its per-call
    /// flush down to a few atomic adds.
    pub fn scope_epoch(&self) -> u64 {
        self.with_state(|s| s.epoch)
    }

    /// A counter handle under the calling thread's current scope.
    pub fn counter(&self, name: &str) -> Counter {
        let scope = self.current_scope();
        self.counter_in(&scope, name)
    }

    /// A counter handle under an explicit scope.
    pub fn counter_in(&self, scope: &str, name: &str) -> Counter {
        let shard = self.shard();
        let mut map = shard.counters.lock().expect("counter map poisoned");
        Counter(
            map.entry((scope.to_string(), name.to_string()))
                .or_default()
                .clone(),
        )
    }

    /// A gauge handle under the calling thread's current scope.
    pub fn gauge(&self, name: &str) -> Gauge {
        let scope = self.current_scope();
        self.gauge_in(&scope, name)
    }

    /// A gauge handle under an explicit scope.
    pub fn gauge_in(&self, scope: &str, name: &str) -> Gauge {
        let shard = self.shard();
        let mut map = shard.gauges.lock().expect("gauge map poisoned");
        Gauge(
            map.entry((scope.to_string(), name.to_string()))
                .or_default()
                .clone(),
        )
    }

    /// A histogram handle under the calling thread's current scope.
    pub fn histogram(&self, name: &str) -> Histogram {
        let scope = self.current_scope();
        self.histogram_in(&scope, name)
    }

    /// A histogram handle under an explicit scope.
    pub fn histogram_in(&self, scope: &str, name: &str) -> Histogram {
        let shard = self.shard();
        let mut map = shard.hists.lock().expect("histogram map poisoned");
        Histogram(
            map.entry((scope.to_string(), name.to_string()))
                .or_default()
                .clone(),
        )
    }

    /// Starts a span nested under the calling thread's innermost live span:
    /// `span("route")` inside `span("attempt")` records as
    /// `"attempt/route"`. Guards must drop in LIFO order (the natural
    /// behaviour of stack-scoped RAII).
    pub fn span(&self, name: &str) -> ScopedTimer<'_> {
        let path = self.with_state(|s| match s.span_stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        });
        self.start_span(path)
    }

    /// Starts a span at `parent/name` regardless of the thread's span
    /// stack. Worker threads use this with the spawner's
    /// [`current_span_path`](Registry::current_span_path) so their spans
    /// nest under the spawning run instead of starting a new hierarchy.
    pub fn span_under(&self, parent: &str, name: &str) -> ScopedTimer<'_> {
        let path = if parent.is_empty() {
            name.to_string()
        } else {
            format!("{parent}/{name}")
        };
        self.start_span(path)
    }

    /// The calling thread's innermost live span path (empty if none).
    pub fn current_span_path(&self) -> String {
        self.with_state(|s| s.span_stack.last().cloned().unwrap_or_default())
    }

    fn start_span(&self, path: String) -> ScopedTimer<'_> {
        self.with_state(|s| s.span_stack.push(path.clone()));
        let scope = self.current_scope();
        // Observe-only side channel: when the Chrome trace collector is on,
        // every span boundary also lands in its buffer. `traced` remembers
        // whether the `B` was actually buffered so the drop handler emits
        // the matching `E` exactly then — the balance invariant the
        // exporter relies on.
        let traced = crate::chrome().begin(&path, &scope);
        ScopedTimer {
            registry: self,
            scope,
            path,
            start: Instant::now(),
            traced,
        }
    }

    fn finish_span(&self, scope: &str, path: &str, elapsed_ns: u64) {
        self.with_state(|s| {
            let popped = s.span_stack.pop();
            debug_assert_eq!(
                popped.as_deref(),
                Some(path),
                "span guards must drop in LIFO order"
            );
        });
        let shard = self.shard();
        let cell = {
            let mut map = shard.spans.lock().expect("span map poisoned");
            map.entry((scope.to_string(), path.to_string()))
                .or_default()
                .clone()
        };
        saturating_fetch_add(&cell.count, 1);
        saturating_fetch_add(&cell.total_ns, elapsed_ns);
    }

    /// Merges every thread's shard into one deterministic [`Snapshot`].
    ///
    /// Counters, histogram buckets and span totals merge by (saturating)
    /// summation and gauges by summation of per-thread values — all
    /// commutative, so the result does not depend on thread scheduling or
    /// shard order. Keys come out sorted (`BTreeMap`), so
    /// [`Snapshot::to_json`] is byte-stable for a given set of values.
    pub fn snapshot(&self) -> Snapshot {
        let shards: Vec<Arc<Shard>> = self
            .shards
            .lock()
            .expect("registry shard list poisoned")
            .clone();
        let mut snap = Snapshot::default();
        for shard in shards {
            snap.absorb_shard(&shard);
        }
        snap
    }
}

/// RAII guard restoring the previous thread scope on drop.
#[must_use = "dropping the guard immediately restores the previous scope"]
pub struct ScopeGuard<'r> {
    registry: &'r Registry,
    prev: String,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        let prev = std::mem::take(&mut self.prev);
        self.registry.with_state(|s| {
            s.epoch += 1;
            s.scope = prev;
        });
    }
}

/// RAII guard timing one span; records `count += 1, total_ns += elapsed`
/// under its path on drop.
#[must_use = "dropping the timer immediately records a zero-length span"]
pub struct ScopedTimer<'r> {
    registry: &'r Registry,
    scope: String,
    path: String,
    start: Instant,
    /// Whether the Chrome trace collector buffered this span's `B` event
    /// (and therefore must receive the matching `E` on drop).
    traced: bool,
}

impl ScopedTimer<'_> {
    /// The full hierarchical path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.finish_span(&self.scope, &self.path, ns);
        if self.traced {
            crate::chrome().end(&self.path, &self.scope);
        }
    }
}

/// A cheap cloneable handle to one monotonic counter cell.
///
/// Additions saturate at `u64::MAX` instead of wrapping, so a snapshot can
/// never mistake an overflowed counter for a small value.
#[derive(Clone, Debug)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (saturating).
    pub fn add(&self, n: u64) {
        saturating_fetch_add(&self.0, n);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value of this thread-local cell (not the merged total; use
    /// [`Registry::snapshot`] for cross-thread totals).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A cheap cloneable handle to one gauge cell (a signed instantaneous
/// value; per-thread values are *summed* in the snapshot).
#[derive(Clone, Debug)]
pub struct Gauge(pub(crate) Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (saturating).
    pub fn add(&self, delta: i64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(delta))
            });
    }

    /// Current value of this thread-local cell.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "saturates instead of wrapping");
        assert_eq!(r.snapshot().scopes[""].counters["x"], u64::MAX);
    }

    #[test]
    fn scopes_partition_metrics_and_restore_on_drop() {
        let r = Registry::new();
        assert_eq!(r.current_scope(), "");
        let e0 = r.scope_epoch();
        {
            let _a = r.scope("SA/fir");
            assert_eq!(r.current_scope(), "SA/fir");
            assert_ne!(r.scope_epoch(), e0);
            r.counter("hits").add(2);
        }
        assert_eq!(r.current_scope(), "");
        r.counter("hits").add(1);
        let snap = r.snapshot();
        assert_eq!(snap.scopes["SA/fir"].counters["hits"], 2);
        assert_eq!(snap.scopes[""].counters["hits"], 1);
    }

    #[test]
    fn spans_nest_on_the_thread_stack() {
        let r = Registry::new();
        {
            let outer = r.span("run");
            assert_eq!(outer.path(), "run");
            {
                let inner = r.span("route");
                assert_eq!(inner.path(), "run/route");
            }
            let sibling = r.span_under("run", "attempt");
            assert_eq!(sibling.path(), "run/attempt");
            {
                let nested = r.span("inner");
                assert_eq!(nested.path(), "run/attempt/inner");
            }
        }
        assert_eq!(r.current_span_path(), "");
        let snap = r.snapshot();
        let spans = &snap.scopes[""].spans;
        for path in ["run", "run/route", "run/attempt", "run/attempt/inner"] {
            assert_eq!(spans[path].count, 1, "{path}");
        }
    }

    #[test]
    fn snapshot_merges_thread_shards_by_sum() {
        let r = Registry::new();
        r.counter_in("s", "n").add(1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    r.counter_in("s", "n").add(10);
                    r.histogram_in("s", "h").record(3);
                    r.gauge_in("s", "g").set(2);
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.scopes["s"].counters["n"], 41);
        let h = &snap.scopes["s"].histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 12);
        assert_eq!(h.min, Some(3));
        assert_eq!(h.max, Some(3));
        assert_eq!(snap.scopes["s"].gauges["g"], 8, "gauges sum per thread");
    }

    #[test]
    fn gauge_set_add_get() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.add(i64::MIN);
        g.add(-10);
        assert_eq!(g.get(), i64::MIN, "saturating");
    }
}
