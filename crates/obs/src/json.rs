//! A minimal hand-rolled JSON reader/writer.
//!
//! The workspace deliberately has no serde; trace lines and metrics
//! snapshots are emitted by string building. This module supplies the other
//! half — a small recursive-descent parser — so `rewire-report` and the
//! snapshot round-trip tests can read those files back offline. It parses
//! the full JSON grammar (numbers are kept as raw text so `u64::MAX`
//! survives), but is tuned for trust-the-producer inputs: errors carry a
//! byte offset and message, nothing fancier.

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (lossless for u64).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as an ordered list of `(key, value)` members.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: byte offset into the input plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

/// Appends `s` to `out` as a quoted JSON string, escaping the mandatory
/// characters (`"`, `\`, and control characters below 0x20).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a following \uXXXX low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5e1").unwrap().as_f64(), Some(25.0));
    }

    #[test]
    fn u64_max_is_lossless() {
        let raw = u64::MAX.to_string();
        assert_eq!(parse(&raw).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().as_object().unwrap().len(), 0);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"slash\\tab\tunicode\u{1F600}ctl\u{1}";
        let mut enc = String::new();
        write_str(&mut enc, original);
        assert_eq!(parse(&enc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let escaped = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(escaped).unwrap().as_str(), Some("\u{1F600}"));
        assert_eq!(parse("\"😀\"").unwrap().as_str(), Some("😀"));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("[1,]").unwrap_err();
        assert_eq!(err.pos, 3);
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }
}
