//! `rewire-obs` — the workspace's observability substrate.
//!
//! A zero-dependency, thread-aware metrics registry: monotonic (saturating)
//! [`Counter`]s, [`Gauge`]s, fixed-bucket log2 [`Histogram`]s, and
//! hierarchical span timers recorded through a [`ScopedTimer`] RAII guard.
//! Everything is *observe-only by contract*: recording never feeds back into
//! the code being measured, so mapping results are byte-identical with and
//! without metrics enabled (pinned by `tests/engine_determinism.rs` at the
//! workspace root).
//!
//! # Design
//!
//! * **Thread-sharded.** Every thread records into its own shard (a private
//!   set of atomic cells), so the hot paths never contend on a shared lock.
//!   [`Registry::snapshot`] merges all shards by summation — a commutative,
//!   associative merge over integers, so the merged [`Snapshot`] is
//!   deterministic regardless of thread scheduling or merge order.
//! * **Scoped.** Metrics are grouped under a per-thread *scope* string (the
//!   engine uses `"<mapper>/<kernel>"`), set with the [`scope`] RAII guard.
//!   This is what lets one global registry attribute router expansions to
//!   the individual run that caused them.
//! * **Handle-based.** Looking a metric up returns a cheap cloneable handle
//!   (an `Arc` around atomic cells); hot loops resolve handles once and
//!   then increment lock-free. [`scope_epoch`] lets long-lived caches (the
//!   router scratch) detect scope changes and refresh their handles.
//! * **Offline JSON.** [`Snapshot::to_json`] hand-rolls the same minimal
//!   JSON subset the engine's trace sink uses (the workspace has no serde),
//!   and [`json`] provides the matching parser used by `rewire-report`.
//!
//! # Example
//!
//! ```
//! let registry = rewire_obs::Registry::new();
//! {
//!     let _run = registry.scope("PF*/fir");
//!     registry.counter("router.expansions").add(128);
//!     registry.histogram("router.route_len").record(5);
//!     let _t = registry.span("attempt");
//!     // ... timed work ...
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.scopes["PF*/fir"].counters["router.expansions"], 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flight;
mod hist;
pub mod json;
mod registry;
mod snapshot;
mod trace;

pub use flight::{
    FlightEvent, FlightLog, FlightRecord, FlightRecorder, HeatCell, DEFAULT_FLIGHT_CAPACITY,
};
pub use hist::{Histogram, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Registry, ScopeGuard, ScopedTimer};
pub use snapshot::{HistogramSnapshot, ScopeSnapshot, Snapshot, SpanSnapshot};
pub use trace::{ChromeTrace, DEFAULT_TRACE_CAPACITY};

use std::sync::OnceLock;

/// The process-wide registry every free function below records into.
///
/// The instrumented crates (`rewire-mrrg`'s router, the mappers, the
/// engine) all use this instance so a single `--metrics FILE` snapshot
/// covers the whole run; tests that need isolation construct their own
/// [`Registry`].
pub fn metrics() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Sets the calling thread's metric scope on the global registry until the
/// returned guard drops. See [`Registry::scope`].
pub fn scope(path: impl Into<String>) -> ScopeGuard<'static> {
    metrics().scope(path)
}

/// The calling thread's current scope on the global registry.
pub fn current_scope() -> String {
    metrics().current_scope()
}

/// Monotonic per-thread counter of scope changes on the global registry.
/// See [`Registry::scope_epoch`].
pub fn scope_epoch() -> u64 {
    metrics().scope_epoch()
}

/// A counter under the current thread scope of the global registry.
pub fn counter(name: &str) -> Counter {
    metrics().counter(name)
}

/// A gauge under the current thread scope of the global registry.
pub fn gauge(name: &str) -> Gauge {
    metrics().gauge(name)
}

/// A histogram under the current thread scope of the global registry.
pub fn histogram(name: &str) -> Histogram {
    metrics().histogram(name)
}

/// Starts a span timer on the global registry, nested under the thread's
/// innermost live span. See [`Registry::span`].
pub fn span(name: &str) -> ScopedTimer<'static> {
    metrics().span(name)
}

/// Starts a span timer on the global registry at an explicit parent path,
/// ignoring the thread's span stack. See [`Registry::span_under`].
pub fn span_under(parent: &str, name: &str) -> ScopedTimer<'static> {
    metrics().span_under(parent, name)
}

/// The calling thread's innermost live span path on the global registry
/// (empty when no span is open). Capture this before spawning workers and
/// pass it to [`span_under`] so their spans nest consistently.
pub fn current_span_path() -> String {
    metrics().current_span_path()
}

/// The process-wide flight recorder (disabled until
/// [`FlightRecorder::enable`] is called). The mappers and engine record
/// decision events into this instance; `--flight FILE` on the experiment
/// binaries enables it and writes [`FlightRecorder::snapshot`] at exit.
pub fn flight() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::default)
}

/// Records one decision event on the global [`flight`] recorder under the
/// calling thread's current scope. One relaxed atomic load when disabled.
pub fn flight_event(event: FlightEvent) {
    flight().record(event);
}

/// The process-wide Chrome trace collector (disabled until
/// [`ChromeTrace::enable`] is called). Every span on every registry feeds
/// it while enabled; `--chrome-trace FILE` on the experiment binaries
/// enables it and writes [`ChromeTrace::export_json`] at exit.
pub fn chrome() -> &'static ChromeTrace {
    static GLOBAL: OnceLock<ChromeTrace> = OnceLock::new();
    GLOBAL.get_or_init(ChromeTrace::default)
}
