//! The flight recorder: a bounded ring of structured decision events plus
//! a per-negotiation-round congestion heatmap.
//!
//! Aggregate counters answer "how much"; the flight recorder answers *what
//! the mapper was doing* when a run failed or stalled. Mappers record
//! [`FlightEvent`]s (route failures, rip-ups, evictions, congestion peaks,
//! attempt phase transitions) into one process-global bounded ring buffer;
//! when the ring is full the oldest record is dropped and a saturating
//! drop counter remembers how many were lost. Everything here is
//! observe-only: recording never feeds back into mapping decisions, and
//! the disabled fast path is a single relaxed atomic load.

use crate::json;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity when [`FlightRecorder::enable`] is given 0.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 65_536;

/// Microseconds since the process-wide observability epoch (the first call
/// to this function). Shared by the flight recorder and the Chrome trace
/// collector so their timestamps line up in one timeline.
pub(crate) fn epoch_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One structured mapper decision. All payloads are plain integers and
/// `&'static str` labels so recording stays allocation-light and the crate
/// stays dependency-free; mappers translate their richer types (MRRG
/// resources, node ids) into `(pe, class, cycle)` keys before recording.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEvent {
    /// Routing one DFG edge failed at the given II.
    RouteFailed {
        /// `(source node index, destination node index)` of the DFG edge.
        edge: (u32, u32),
        /// The II being attempted.
        ii: u32,
        /// Router failure label (see `RouteError::label`).
        reason: &'static str,
    },
    /// A placed node was ripped up during negotiated congestion.
    RipUp {
        /// Dense PE index the victim occupied.
        pe: u32,
        /// Resource class of the contested cell (`"fu"`, `"link"`, `"reg"`).
        class: &'static str,
        /// Modulo cycle of the contested cell.
        cycle: u32,
        /// Negotiation iteration the rip-up happened in.
        round: u64,
    },
    /// Occupants were evicted from a PE slot to make room for a placement.
    Eviction {
        /// Dense PE index evicted from.
        pe: u32,
        /// Modulo cycle evicted from.
        cycle: u32,
        /// Number of occupants displaced.
        victims: u32,
        /// The II being attempted.
        ii: u32,
    },
    /// The most-overused MRRG cell observed in one negotiation round.
    CongestionPeak {
        /// Dense PE index the cell belongs to (links attribute to their
        /// source PE).
        pe: u32,
        /// Resource class (`"fu"`, `"link"`, `"reg"`).
        class: &'static str,
        /// Modulo cycle of the cell.
        cycle: u32,
        /// Excess signals on the cell (`signals - 1`).
        overuse: u64,
        /// Negotiation iteration the peak was sampled in.
        round: u64,
    },
    /// An engine/mapper phase transition — the stall watchdog's heartbeat.
    AttemptPhase {
        /// Phase label (`"attempt_start"`, `"initial"`, `"gave_up"`, ...).
        phase: &'static str,
        /// The II in play (0 when no II applies).
        ii: u32,
    },
}

impl FlightEvent {
    /// Snake-case kind label used in the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::RouteFailed { .. } => "route_failed",
            FlightEvent::RipUp { .. } => "rip_up",
            FlightEvent::Eviction { .. } => "eviction",
            FlightEvent::CongestionPeak { .. } => "congestion_peak",
            FlightEvent::AttemptPhase { .. } => "attempt_phase",
        }
    }
}

/// One recorded event with its ordering and attribution envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number (monotonic across the whole process, keeps
    /// counting even while records are dropped).
    pub seq: u64,
    /// Microseconds since the observability epoch.
    pub ts_us: u64,
    /// The recording thread's metric scope (`"<mapper>/<kernel>"`).
    pub scope: String,
    /// The decision itself.
    pub event: FlightEvent,
}

/// Accumulated congestion for one `(pe, class, cycle)` heatmap cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeatCell {
    /// Sum of overuse across the rounds this cell was sampled in.
    pub overuse: u64,
    /// Largest single-round overuse seen.
    pub peak: u64,
    /// Number of negotiation rounds the cell was overused in.
    pub rounds: u64,
}

/// A point-in-time copy of the recorder: events in ring order, the drop
/// counter, and the congestion heatmap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightLog {
    /// Events still in the ring, oldest first.
    pub events: Vec<FlightRecord>,
    /// Records evicted because the ring was full (saturating).
    pub dropped: u64,
    /// Congestion heatmap keyed by `(pe, class, cycle)`, sorted.
    pub heatmap: Vec<((u32, &'static str, u32), HeatCell)>,
}

impl FlightLog {
    /// Serialises to the versioned flight-log JSON (one object; parse it
    /// back with [`crate::json::parse`]). Byte-stable for a given log.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"version\":1,\"dropped\":");
        let _ = write!(out, "{}", self.dropped);
        out.push_str(",\"events\":[");
        for (i, rec) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"ts_us\":{},\"scope\":",
                rec.seq, rec.ts_us
            );
            json::write_str(&mut out, &rec.scope);
            let _ = write!(out, ",\"kind\":\"{}\"", rec.event.kind());
            match rec.event {
                FlightEvent::RouteFailed { edge, ii, reason } => {
                    let _ = write!(
                        out,
                        ",\"src\":{},\"dst\":{},\"ii\":{},\"reason\":\"{reason}\"",
                        edge.0, edge.1, ii
                    );
                }
                FlightEvent::RipUp {
                    pe,
                    class,
                    cycle,
                    round,
                } => {
                    let _ = write!(
                        out,
                        ",\"pe\":{pe},\"class\":\"{class}\",\"cycle\":{cycle},\"round\":{round}"
                    );
                }
                FlightEvent::Eviction {
                    pe,
                    cycle,
                    victims,
                    ii,
                } => {
                    let _ = write!(
                        out,
                        ",\"pe\":{pe},\"cycle\":{cycle},\"victims\":{victims},\"ii\":{ii}"
                    );
                }
                FlightEvent::CongestionPeak {
                    pe,
                    class,
                    cycle,
                    overuse,
                    round,
                } => {
                    let _ = write!(
                        out,
                        ",\"pe\":{pe},\"class\":\"{class}\",\"cycle\":{cycle},\
                         \"overuse\":{overuse},\"round\":{round}"
                    );
                }
                FlightEvent::AttemptPhase { phase, ii } => {
                    let _ = write!(out, ",\"phase\":\"{phase}\",\"ii\":{ii}");
                }
            }
            out.push('}');
        }
        out.push_str("],\"heatmap\":[");
        for (i, ((pe, class, cycle), cell)) in self.heatmap.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pe\":{pe},\"class\":\"{class}\",\"cycle\":{cycle},\
                 \"overuse\":{},\"peak\":{},\"rounds\":{}}}",
                cell.overuse, cell.peak, cell.rounds
            );
        }
        out.push_str("]}");
        out
    }
}

#[derive(Default)]
struct RingState {
    buf: VecDeque<FlightRecord>,
    capacity: usize,
    seq: u64,
    dropped: u64,
    heat: BTreeMap<(u32, &'static str, u32), HeatCell>,
}

/// The bounded decision-event ring buffer. One process-global instance
/// lives behind [`crate::flight`]; tests construct their own.
///
/// Disabled (the default) the recorder costs one relaxed atomic load per
/// call site. Enabled, each record takes the internal mutex briefly —
/// acceptable because recording only happens on cold mapper paths
/// (failures, rip-ups, per-round sampling), never per router expansion.
pub struct FlightRecorder {
    enabled: AtomicBool,
    state: Mutex<RingState>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A disabled recorder with the given ring capacity (0 selects
    /// [`DEFAULT_FLIGHT_CAPACITY`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            state: Mutex::new(RingState {
                capacity: if capacity == 0 {
                    DEFAULT_FLIGHT_CAPACITY
                } else {
                    capacity
                },
                ..RingState::default()
            }),
        }
    }

    /// Starts recording with the given ring capacity (0 keeps the current
    /// capacity). Already-recorded state is kept.
    pub fn enable(&self, capacity: usize) {
        if capacity > 0 {
            let mut s = self.state.lock().expect("flight state poisoned");
            s.capacity = capacity;
            while s.buf.len() > capacity {
                s.buf.pop_front();
                s.dropped = s.dropped.saturating_add(1);
            }
        }
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (state is kept and can still be snapshotted).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the recorder is currently accepting events.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event under an explicit scope. No-op while disabled.
    pub fn record_in(&self, scope: &str, event: FlightEvent) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = epoch_us();
        let mut s = self.state.lock().expect("flight state poisoned");
        let seq = s.seq;
        s.seq = s.seq.saturating_add(1);
        if s.buf.len() >= s.capacity {
            s.buf.pop_front();
            s.dropped = s.dropped.saturating_add(1);
        }
        s.buf.push_back(FlightRecord {
            seq,
            ts_us,
            scope: scope.to_string(),
            event,
        });
    }

    /// Records one event under the calling thread's current metric scope
    /// on the global registry. No-op while disabled.
    pub fn record(&self, event: FlightEvent) {
        if !self.is_enabled() {
            return;
        }
        let scope = crate::current_scope();
        self.record_in(&scope, event);
    }

    /// Accumulates one overused cell sample into the congestion heatmap
    /// (called once per overused `(pe, class, cycle)` cell per negotiation
    /// round). No-op while disabled.
    pub fn heat(&self, pe: u32, class: &'static str, cycle: u32, overuse: u64) {
        if !self.is_enabled() || overuse == 0 {
            return;
        }
        let mut s = self.state.lock().expect("flight state poisoned");
        let cell = s.heat.entry((pe, class, cycle)).or_default();
        cell.overuse = cell.overuse.saturating_add(overuse);
        cell.peak = cell.peak.max(overuse);
        cell.rounds = cell.rounds.saturating_add(1);
    }

    /// A copy of the current ring contents, drop counter, and heatmap.
    /// Does not clear anything; safe to call while recording continues.
    pub fn snapshot(&self) -> FlightLog {
        let s = self.state.lock().expect("flight state poisoned");
        FlightLog {
            events: s.buf.iter().cloned().collect(),
            dropped: s.dropped,
            heatmap: s.heat.iter().map(|(k, v)| (*k, *v)).collect(),
        }
    }

    /// Total events ever offered to the ring (survivors + dropped).
    pub fn events_emitted(&self) -> u64 {
        self.state.lock().expect("flight state poisoned").seq
    }

    /// Clears events, drop counter, sequence numbers, and the heatmap.
    /// The enabled flag and capacity are kept.
    pub fn reset(&self) {
        let mut s = self.state.lock().expect("flight state poisoned");
        s.buf.clear();
        s.seq = 0;
        s.dropped = 0;
        s.heat.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(i: u32) -> FlightEvent {
        FlightEvent::AttemptPhase {
            phase: "test",
            ii: i,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::new(4);
        r.record_in("s", phase(1));
        r.heat(0, "fu", 0, 3);
        assert_eq!(r.snapshot(), FlightLog::default());
        assert_eq!(r.events_emitted(), 0);
    }

    #[test]
    fn ring_wraps_oldest_first_and_counts_drops() {
        let r = FlightRecorder::new(3);
        r.enable(0);
        for i in 0..5 {
            r.record_in("s", phase(i));
        }
        let log = r.snapshot();
        assert_eq!(log.dropped, 2);
        assert_eq!(r.events_emitted(), 5);
        let iis: Vec<u32> = log
            .events
            .iter()
            .map(|e| match e.event {
                FlightEvent::AttemptPhase { ii, .. } => ii,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(iis, vec![2, 3, 4], "oldest records are evicted first");
        assert_eq!(
            log.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "sequence numbers keep counting across drops"
        );
    }

    #[test]
    fn heatmap_accumulates_sum_peak_and_rounds() {
        let r = FlightRecorder::new(8);
        r.enable(0);
        r.heat(3, "reg", 1, 2);
        r.heat(3, "reg", 1, 5);
        r.heat(0, "fu", 0, 1);
        r.heat(0, "fu", 0, 0); // zero overuse is ignored
        let log = r.snapshot();
        assert_eq!(log.heatmap.len(), 2);
        let (key, cell) = log.heatmap[1];
        assert_eq!(key, (3, "reg", 1));
        assert_eq!(
            cell,
            HeatCell {
                overuse: 7,
                peak: 5,
                rounds: 2
            }
        );
    }

    #[test]
    fn json_export_parses_and_carries_fields() {
        let r = FlightRecorder::new(8);
        r.enable(0);
        r.record_in(
            "PF*/fir",
            FlightEvent::RouteFailed {
                edge: (1, 2),
                ii: 3,
                reason: "no_path",
            },
        );
        r.heat(5, "link", 2, 4);
        let json = r.snapshot().to_json();
        let root = crate::json::parse(&json).expect("flight log JSON parses");
        assert_eq!(root.get("version").and_then(|v| v.as_u64()), Some(1));
        let events = root.get("events").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").and_then(|v| v.as_str()),
            Some("route_failed")
        );
        assert_eq!(events[0].get("src").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            events[0].get("reason").and_then(|v| v.as_str()),
            Some("no_path")
        );
        let heat = root.get("heatmap").and_then(|v| v.as_array()).unwrap();
        assert_eq!(heat[0].get("pe").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(heat[0].get("overuse").and_then(|v| v.as_u64()), Some(4));
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let r = FlightRecorder::new(2);
        r.enable(0);
        r.record_in("s", phase(0));
        r.record_in("s", phase(1));
        r.record_in("s", phase(2));
        r.reset();
        assert!(r.is_enabled());
        assert_eq!(r.snapshot(), FlightLog::default());
        r.record_in("s", phase(7));
        assert_eq!(r.snapshot().events[0].seq, 0, "sequence restarts");
    }
}
