//! Fixed-bucket log2 histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds the value 0 and bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)`, so bucket 64 holds `[2^63, u64::MAX]`.
pub const NUM_BUCKETS: usize = 65;

/// The shared cells behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistCell {
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    /// Initialised to `u64::MAX`; meaningless until `count > 0`.
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for HistCell {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A cheap cloneable handle to one histogram's cells.
///
/// Buckets are log2-spaced ([`Histogram::bucket_of`]); recording is a
/// handful of relaxed atomic operations, and the count/sum saturate rather
/// than wrap so merged snapshots stay monotonic.
#[derive(Clone, Debug)]
pub struct Histogram(pub(crate) Arc<HistCell>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        let c = &self.0;
        saturating_fetch_add(&c.count, 1);
        saturating_fetch_add(&c.sum, value);
        c.min.fetch_min(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
        c.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket index a value falls into: 0 for the value 0, otherwise
    /// `1 + floor(log2(value))`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Smallest value of bucket `i` (`0`, then powers of two).
    pub fn bucket_lo(i: usize) -> u64 {
        assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Largest value of bucket `i` (inclusive).
    pub fn bucket_hi(i: usize) -> u64 {
        assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// Relaxed saturating add on an atomic cell (counters must never wrap —
/// a wrapped counter would read as a plausible small value).
pub(crate) fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    // `fetch_update` with an always-`Some` closure cannot fail.
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_of(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_of((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_ranges_tile_the_u64_line() {
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_hi(0), 0);
        for i in 1..NUM_BUCKETS {
            assert_eq!(Histogram::bucket_lo(i), Histogram::bucket_hi(i - 1) + 1);
            assert_eq!(Histogram::bucket_of(Histogram::bucket_lo(i)), i);
            assert_eq!(Histogram::bucket_of(Histogram::bucket_hi(i)), i);
        }
        assert_eq!(Histogram::bucket_hi(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_updates_all_cells() {
        let h = Histogram(Arc::new(HistCell::default()));
        for v in [0u64, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.0.min.load(Ordering::Relaxed), 0);
        assert_eq!(h.0.max.load(Ordering::Relaxed), 1000);
        assert_eq!(h.0.buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(h.0.buckets[1].load(Ordering::Relaxed), 1);
        assert_eq!(h.0.buckets[3].load(Ordering::Relaxed), 1);
        assert_eq!(h.0.buckets[10].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram(Arc::new(HistCell::default()));
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
