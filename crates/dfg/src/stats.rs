//! Structural statistics of a DFG — the numbers papers quote about their
//! benchmark suites and that mappers use for difficulty triage.

use crate::Dfg;
use rewire_arch::OpKind;
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of one DFG.
#[derive(Clone, Debug)]
pub struct DfgStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Loop-carried edge count.
    pub carried_edges: usize,
    /// Memory operations (loads + stores).
    pub memory_ops: usize,
    /// Critical-path depth (intra edges).
    pub depth: u32,
    /// Recurrence-constrained minimum II.
    pub rec_mii: u32,
    /// Largest fan-out of any producer.
    pub max_fanout: usize,
    /// Mean fan-out over producers with at least one consumer.
    pub mean_fanout: f64,
    /// Histogram of operation kinds.
    pub op_histogram: BTreeMap<&'static str, usize>,
}

impl Dfg {
    /// Computes the summary statistics.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_dfg::kernels;
    /// let s = kernels::gesummv().stats();
    /// assert!(s.nodes >= 26);
    /// assert!(s.memory_ops > 0);
    /// assert!(s.op_histogram["ld"] > 0);
    /// ```
    pub fn stats(&self) -> DfgStats {
        let mut op_histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
        for n in self.nodes() {
            *op_histogram.entry(n.op().mnemonic()).or_insert(0) += 1;
        }
        let fanouts: Vec<usize> = self
            .node_ids()
            .map(|v| self.children(v).count())
            .filter(|&f| f > 0)
            .collect();
        DfgStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            carried_edges: self.edges().filter(|e| e.is_loop_carried()).count(),
            memory_ops: self.num_memory_ops(),
            depth: self.longest_path(),
            rec_mii: self.rec_mii(),
            max_fanout: fanouts.iter().copied().max().unwrap_or(0),
            mean_fanout: if fanouts.is_empty() {
                0.0
            } else {
                fanouts.iter().sum::<usize>() as f64 / fanouts.len() as f64
            },
            op_histogram,
        }
    }

    /// Fraction of nodes that are memory operations.
    pub fn memory_fraction(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_memory_ops() as f64 / self.num_nodes() as f64
        }
    }
}

impl fmt::Display for DfgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} nodes, {} edges ({} carried), {} memory ops, depth {}, RecMII {}",
            self.nodes, self.edges, self.carried_edges, self.memory_ops, self.depth, self.rec_mii
        )?;
        write!(
            f,
            "fanout max {} / mean {:.2}; ops:",
            self.max_fanout, self.mean_fanout
        )?;
        for (op, count) in &self.op_histogram {
            write!(f, " {op}×{count}")?;
        }
        Ok(())
    }
}

/// Suite-level aggregates over a list of DFGs — the numbers §V quotes
/// ("The number of DFG nodes varies from 26 to 51 and the average is 38").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuiteStats {
    /// Smallest kernel.
    pub min_nodes: usize,
    /// Largest kernel.
    pub max_nodes: usize,
    /// Mean size.
    pub mean_nodes: f64,
    /// Number of kernels.
    pub count: usize,
}

/// Aggregates node counts over `dfgs`.
pub fn suite_stats<'a, I: IntoIterator<Item = &'a Dfg>>(dfgs: I) -> SuiteStats {
    let sizes: Vec<usize> = dfgs.into_iter().map(|d| d.num_nodes()).collect();
    SuiteStats {
        min_nodes: sizes.iter().copied().min().unwrap_or(0),
        max_nodes: sizes.iter().copied().max().unwrap_or(0),
        mean_nodes: if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        },
        count: sizes.len(),
    }
}

/// Convenience: which operations of `ops` appear in the DFG.
pub fn uses_ops(dfg: &Dfg, ops: &[OpKind]) -> bool {
    dfg.nodes().any(|n| ops.contains(&n.op()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn suite_statistics_match_the_paper_band() {
        let suite: Vec<Dfg> = kernels::all().into_iter().map(|(_, d)| d).collect();
        let s = suite_stats(suite.iter());
        assert!(s.min_nodes >= 26);
        assert!(s.max_nodes <= 51);
        assert!((30.0..=43.0).contains(&s.mean_nodes));
        assert_eq!(s.count, suite.len());
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let d = kernels::cholesky();
        let s = d.stats();
        let total: usize = s.op_histogram.values().sum();
        assert_eq!(total, s.nodes);
    }

    #[test]
    fn memory_fraction_is_sane() {
        for (name, d) in kernels::all() {
            let f = d.memory_fraction();
            assert!((0.05..=0.5).contains(&f), "{name}: {f}");
        }
    }

    #[test]
    fn display_renders() {
        let s = kernels::fir().stats();
        let text = format!("{s}");
        assert!(text.contains("RecMII"));
        assert!(text.contains("ld×"));
    }

    #[test]
    fn empty_suite() {
        let s = suite_stats(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_nodes, 0.0);
    }
}
