//! Seeded random DFG generation for fuzzing, stress tests and property
//! tests.

use crate::Dfg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rewire_arch::OpKind;

/// Parameters for [`random_dfg`].
///
/// Defaults produce kernels in the paper's size band (26–51 nodes) with a
/// realistic mix of memory ops, fan-out and one loop-carried recurrence.
#[derive(Clone, Debug)]
pub struct RandomDfgParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Probability that a node receives a second operand edge.
    pub second_operand_prob: f64,
    /// Fraction of nodes that are memory operations (loads/stores).
    pub memory_fraction: f64,
    /// Number of loop-carried accumulator recurrences to weave in.
    pub recurrences: usize,
    /// Maximum iteration distance for recurrence back-edges.
    pub max_distance: u32,
}

impl Default for RandomDfgParams {
    fn default() -> Self {
        Self {
            nodes: 38,
            second_operand_prob: 0.6,
            memory_fraction: 0.2,
            recurrences: 1,
            max_distance: 1,
        }
    }
}

/// Generates a random, weakly connected, intra-iteration-acyclic DFG.
///
/// Determinism: the same `params` and `seed` always produce the same graph.
///
/// The construction assigns each node a topological position and only adds
/// forward intra-iteration edges, so the distance-0 subgraph is acyclic by
/// construction; recurrences are added as distance ≥ 1 back-edges through a
/// `Phi` node, the way real loop-carried accumulators lower.
///
/// # Examples
///
/// ```
/// use rewire_dfg::generate::{random_dfg, RandomDfgParams};
/// let g = random_dfg(&RandomDfgParams::default(), 42);
/// assert!(g.validate().is_ok());
/// assert!(g.is_connected());
/// let same = random_dfg(&RandomDfgParams::default(), 42);
/// assert_eq!(g.to_text(), same.to_text());
/// ```
///
/// # Panics
///
/// Panics if `params.nodes == 0`.
pub fn random_dfg(params: &RandomDfgParams, seed: u64) -> Dfg {
    assert!(params.nodes > 0, "a DFG needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dfg::new(format!("random-{seed}"));

    let compute_ops = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Shl,
        OpKind::And,
        OpKind::Xor,
        OpKind::Cmp,
        OpKind::Select,
    ];

    let n_mem = ((params.nodes as f64 * params.memory_fraction).round() as usize).min(params.nodes);

    let mut ids = Vec::with_capacity(params.nodes);
    for i in 0..params.nodes {
        let op = if i < n_mem {
            // Loads early in topological order, stores late.
            if i < n_mem.div_ceil(2) {
                OpKind::Load
            } else {
                OpKind::Store
            }
        } else {
            compute_ops[rng.random_range(0..compute_ops.len())]
        };
        ids.push(g.add_node(format!("v{i}"), op));
    }
    // Shuffle the memory nodes into plausible positions: keep loads at the
    // front third, stores at the back third by sorting positions. We achieve
    // this by the index-based op assignment above plus the forward-edge rule
    // below (stores end up as sinks of whatever feeds them).

    // Connect every node (except the first) to at least one earlier node so
    // the graph is weakly connected and intra-acyclic.
    for i in 1..params.nodes {
        let p = rng.random_range(0..i);
        g.add_edge(ids[p], ids[i], 0).expect("forward edge");
        if rng.random_bool(params.second_operand_prob) && i > 1 {
            let q = rng.random_range(0..i);
            if q != p {
                g.add_edge(ids[q], ids[i], 0).expect("forward edge");
            }
        }
    }

    // Weave in accumulator recurrences: phi -> ... existing node ... with a
    // back edge of random distance.
    for r in 0..params.recurrences {
        let phi = g.add_node(format!("phi{r}"), OpKind::Phi);
        let body = ids[rng.random_range(0..ids.len())];
        let distance = rng.random_range(1..=params.max_distance.max(1));
        g.add_edge(phi, body, 0).expect("phi feed");
        g.add_edge(body, phi, distance).expect("back edge");
    }

    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = RandomDfgParams::default();
        let a = random_dfg(&p, 7);
        let b = random_dfg(&p, 7);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn different_seeds_differ() {
        let p = RandomDfgParams::default();
        let a = random_dfg(&p, 1);
        let b = random_dfg(&p, 2);
        assert_ne!(a.to_text(), b.to_text());
    }

    #[test]
    fn always_valid_and_connected() {
        for seed in 0..20 {
            let g = random_dfg(&RandomDfgParams::default(), seed);
            assert!(g.validate().is_ok(), "seed {seed}");
            assert!(g.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn memory_fraction_respected() {
        let p = RandomDfgParams {
            nodes: 40,
            memory_fraction: 0.25,
            ..Default::default()
        };
        let g = random_dfg(&p, 3);
        assert_eq!(g.num_memory_ops(), 10);
    }

    #[test]
    fn recurrences_bump_rec_mii() {
        let p = RandomDfgParams {
            recurrences: 1,
            ..Default::default()
        };
        let g = random_dfg(&p, 5);
        assert!(g.rec_mii() >= 2, "phi/back-edge cycle has latency ≥ 2");
    }

    #[test]
    fn node_count_includes_phis() {
        let p = RandomDfgParams {
            nodes: 30,
            recurrences: 2,
            ..Default::default()
        };
        let g = random_dfg(&p, 11);
        assert_eq!(g.num_nodes(), 32);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        random_dfg(
            &RandomDfgParams {
                nodes: 0,
                ..Default::default()
            },
            0,
        );
    }
}
